//! Price intelligence — the paper's running example (Examples 1, 2, 4, 5).
//!
//! An e-commerce company wants competitor prices for its catalog. Competitor
//! sites exhibit all 4 V's: dozens of sources (Volume), price drift and
//! staleness (Velocity), per-site schemas (Variety), and injected errors
//! (Veracity). The example shows:
//!
//! 1. fully automated wrangling against a synthetic competitor fleet;
//! 2. the same data under two user contexts (Example 2) producing different
//!    trade-offs;
//! 3. a pay-as-you-go feedback round improving the result (Example 5).
//!
//! Run with: `cargo run --release --example price_intelligence`

use data_wrangler::core::eval::score_against_truth;
use data_wrangler::prelude::*;
use data_wrangler::sources::synthetic::generate_fleet;
use wrangler_context::DataContext as Ctx;

fn main() {
    // --- The world: 150 products, 25 competitor shops, messy. -------------
    let cfg = FleetConfig {
        num_products: 150,
        num_sources: 25,
        now: 20,
        coverage: (0.3, 0.8),
        error_rate: (0.02, 0.3),
        null_rate: (0.0, 0.1),
        staleness: (0, 12),
        ..FleetConfig::default()
    };
    let fleet = generate_fleet(&cfg, 2026);
    println!(
        "Fleet: {} shops over {} products (schema variants, noise, staleness)\n",
        fleet.registry.len(),
        fleet.truth.products.len()
    );

    for (label, user) in [
        (
            "routine price comparison (accuracy-first)",
            UserContext::accuracy_first(),
        ),
        (
            "issue investigation (completeness-first)",
            UserContext::completeness_first(),
        ),
    ] {
        let mut session = build_session(&fleet, user);
        let out = session.wrangle().expect("wrangle");
        let scores = score_against_truth(&out.table, &fleet.truth, 0.01).expect("scorable");
        println!("== {label} ==");
        println!(
            "  sources used: {:>2}/{}   entities: {:>3}   utility: {:.3}",
            out.selected_sources.len(),
            fleet.registry.len(),
            out.entities,
            out.utility
        );
        println!(
            "  vs ground truth: coverage {:.2}  price-accuracy {:.2}  correct-price yield {:.2}",
            scores.coverage, scores.price_accuracy, scores.correct_price_yield
        );

        // --- Pay-as-you-go: the analyst reviews the report and flags a few
        // wrong prices (we let the oracle play analyst here).
        let mut flagged = 0;
        for row in 0..out.table.num_rows() {
            if flagged >= 15 {
                break;
            }
            let (sku, price) = (
                out.table.get_named(row, "sku").unwrap().clone(),
                out.table.get_named(row, "price").unwrap().clone(),
            );
            if let (Some(sku), Some(p)) = (sku.as_str(), price.as_f64()) {
                if !fleet.truth.price_is_correct(sku, p, 0.01) {
                    let price_attr = session.target().index_of("price").unwrap();
                    session.give_feedback(FeedbackItem::expert(
                        FeedbackTarget::Value {
                            entity: row,
                            attr: price_attr,
                            value: Some(price),
                        },
                        Verdict::Negative,
                        1.0,
                    ));
                    flagged += 1;
                }
            }
        }
        let improved = session.rewrangle().expect("rewrangle");
        let scores2 = score_against_truth(&improved.table, &fleet.truth, 0.01).expect("scorable");
        println!(
            "  after {flagged} feedback items: price-accuracy {:.2} -> {:.2}  (yield {:.2} -> {:.2})\n",
            scores.price_accuracy,
            scores2.price_accuracy,
            scores.correct_price_yield,
            scores2.correct_price_yield
        );
    }
}

fn build_session(fleet: &data_wrangler::sources::SyntheticFleet, user: UserContext) -> Wrangler {
    let mut ctx = Ctx::with_ontology(Ontology::ecommerce());
    ctx.add_master("product", fleet.truth.master_catalog(), "sku")
        .unwrap();
    // Target = catalog + the price we want to learn (typed via ontology).
    let catalog = fleet.truth.master_catalog();
    let mut fields = catalog.schema().fields().to_vec();
    fields.push(wrangler_table::Field::new("price", DataType::Float));
    let schema = Schema::new(fields).unwrap();
    let mut columns: Vec<Vec<Value>> = (0..catalog.num_columns())
        .map(|i| catalog.column(i).unwrap().to_vec())
        .collect();
    columns.push(vec![Value::Null; catalog.num_rows()]);
    let sample = Table::from_columns(schema, columns).unwrap();

    let mut w = Wrangler::new(user, ctx, sample);
    w.set_now(fleet.truth.now);
    for s in fleet.registry.iter() {
        w.add_source(s.meta.clone(), s.table.clone());
    }
    w
}
