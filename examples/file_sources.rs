//! Variety: wrangling file-shaped sources — CSV, key-value blocks and
//! JSON-lines — through the same pipeline as web extractions (§1's Variety:
//! "sensors, databases, files and the deep web").
//!
//! Run with: `cargo run --release --example file_sources`

use data_wrangler::extract::formats::{parse_jsonl, parse_kv_blocks};
use data_wrangler::prelude::*;
use data_wrangler::table::csv::read_csv;

fn main() {
    // The same three products, exported three ways by three systems.
    let csv_feed = "\
sku,product name,unit price,stock
p1,Turbo Widget,\"1,299.00\",4
p2,Mini Gadget,24.50,0
p3,Mega Flange,105.00,12
";
    let kv_feed = "\
code: p1
title: Turbo Widget
cost: $1299
availability: 4

code: p3
title: Mega Flange
cost: $99.50
availability: 11
";
    let jsonl_feed = r#"{"id": "p2", "label": "Mini Gadget", "amount": 23.75, "in stock": 2}
{"id": "p1", "label": "Turbo Widget", "amount": 1310.0, "in stock": 4}"#;

    let csv_table = read_csv(csv_feed).expect("csv parses");
    let kv_table = parse_kv_blocks(kv_feed).expect("kv parses");
    let jsonl_table = parse_jsonl(jsonl_feed).expect("jsonl parses");
    println!("CSV source   schema: {}", csv_table.schema());
    println!("KV source    schema: {}", kv_table.schema());
    println!("JSONL source schema: {}\n", jsonl_table.schema());

    let catalog = Table::literal(
        &["sku", "name", "price", "stock"],
        vec![
            vec!["p1".into(), "Turbo Widget".into(), Value::Null, Value::Null],
            vec!["p2".into(), "Mini Gadget".into(), Value::Null, Value::Null],
            vec!["p3".into(), "Mega Flange".into(), Value::Null, Value::Null],
        ],
    )
    .unwrap();
    let mut ctx = DataContext::with_ontology(Ontology::ecommerce());
    ctx.add_master("product", catalog.clone(), "sku").unwrap();

    let mut w = Wrangler::new(
        UserContext::balanced("file sources").with_required_columns(&["sku", "price"]),
        ctx,
        catalog,
    );
    w.add_source(SourceMeta::new(SourceId(0), "export.csv"), csv_table);
    w.add_source(SourceMeta::new(SourceId(0), "feed.kv"), kv_table);
    w.add_source(SourceMeta::new(SourceId(0), "dump.jsonl"), jsonl_table);

    let out = w.wrangle().expect("wrangle");
    println!("{}", out.table.show(10));
    println!("quality: {}", out.quality);

    // The three formats fused: every product has a price, units normalized
    // ($1299 and "1,299.00" agree).
    assert_eq!(out.entities, 3);
    for r in 0..out.table.num_rows() {
        assert!(
            !out.table.get_named(r, "price").unwrap().is_null(),
            "row {r} missing price"
        );
    }
}
