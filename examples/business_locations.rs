//! Business locations — the paper's Example 3.
//!
//! A social network's check-in feed carries "wrong geo-locations, misspelled
//! or fantasy places". Instead of buying a curated database, the wrangling
//! process collects authoritative data "right on the website of the business
//! of interest" — and when those sites redesign, the wrapper is repaired
//! *from already-integrated data* with zero new annotations (WADaR, [29]).
//!
//! Run with: `cargo run --release --example business_locations`

use data_wrangler::extract::induce::Annotation;
use data_wrangler::extract::repair::{drift_detected, repair_wrapper, RepairConfig};
use data_wrangler::extract::{induce_wrapper, Template};
use data_wrangler::sources::locations::{generate_locations, CheckinConfig};
use data_wrangler::table::Value;

fn main() {
    let cfg = CheckinConfig {
        num_businesses: 80,
        num_checkins: 400,
        wrong_geo_rate: 0.12,
        misspell_rate: 0.15,
        fantasy_rate: 0.06,
    };
    let world = generate_locations(&cfg, 7);
    let websites = world.website_table();

    // --- 1. The business-directory site, and a wrapper induced from just two
    // annotated records. -----------------------------------------------------
    let template = Template::listing(&["url", "name", "address", "city", "lat", "lon"]);
    let page = template.render(&websites);
    let annotate = |i: usize| {
        let row = websites.row(i);
        Annotation::of(&[
            ("url", &row[0].render()),
            ("name", &row[1].render()),
            ("address", &row[2].render()),
            ("city", &row[3].render()),
            ("lat", &row[4].render()),
            ("lon", &row[5].render()),
        ])
    };
    let wrapper = induce_wrapper(&page, &[annotate(3), annotate(17)]).expect("induction");
    let extraction = wrapper.extract(&page).expect("extraction");
    println!(
        "Induced wrapper from 2 annotations: {} records, fill rate {:.2}",
        extraction.records_found, extraction.fill_rate
    );

    // --- 2. The site redesigns; the wrapper breaks; informed repair restores
    // it using the data we already integrated. -------------------------------
    let redesigned = template.drift(99);
    let new_page = redesigned.render(&websites);
    let broken = wrapper.extract(&new_page).expect("extract");
    assert!(drift_detected(&broken, 0.5));
    println!(
        "After redesign: old wrapper finds {} records (drift detected)",
        broken.records_found
    );
    let repair_cfg = RepairConfig {
        stable_columns: vec!["url".into(), "name".into(), "address".into(), "city".into()],
        ..RepairConfig::default()
    };
    let outcome = repair_wrapper(&wrapper, &new_page, &extraction.table, &repair_cfg)
        .expect("informed repair");
    let restored = outcome.wrapper.extract(&new_page).expect("extract");
    println!(
        "Informed repair ({} auto-annotations, 0 human): {} records, fill rate {:.2}\n",
        outcome.annotations_used, restored.records_found, restored.fill_rate
    );

    // --- 3. Clean the check-in feed against the extracted site data. --------
    let site = &restored.table;
    let url_col = site.column_named("url").expect("url");
    let mut fixed_geo = 0;
    let mut fixed_name = 0;
    let mut flagged_fantasy = 0;
    for i in 0..world.checkins.num_rows() {
        let url = world.checkins.get_named(i, "url").unwrap();
        let Some(url) = url.as_str() else {
            flagged_fantasy += 1; // no site to verify against: fantasy place
            continue;
        };
        let Some(site_row) = url_col.iter().position(|v| v.as_str() == Some(url)) else {
            flagged_fantasy += 1;
            continue;
        };
        let true_name = site.get_named(site_row, "name").unwrap().render();
        let true_lat = site
            .get_named(site_row, "lat")
            .unwrap()
            .as_f64()
            .unwrap_or(0.0);
        let claimed_name = world.checkins.get_named(i, "place").unwrap().render();
        let claimed_lat = world
            .checkins
            .get_named(i, "lat")
            .unwrap()
            .as_f64()
            .unwrap_or(f64::NAN);
        if claimed_name != true_name {
            fixed_name += 1;
        }
        if (claimed_lat - true_lat).abs() > 0.1 {
            fixed_geo += 1;
        }
    }
    let truth_geo = world.defects.iter().filter(|d| d.0).count();
    let truth_misspelled = world.defects.iter().filter(|d| d.1).count();
    let truth_fantasy = world.defects.iter().filter(|d| d.2).count();
    println!("Check-in feed repair against extracted site data:");
    println!("  corrected geo-locations: {fixed_geo:>3} (ground truth defects: {truth_geo})");
    println!(
        "  corrected names:         {fixed_name:>3} (ground truth defects: {truth_misspelled})"
    );
    println!(
        "  flagged fantasy places:  {flagged_fantasy:>3} (ground truth defects: {truth_fantasy})"
    );

    // Sanity for the example itself.
    assert!(restored.records_found == websites.num_rows());
    assert!((fixed_geo as i64 - truth_geo as i64).abs() <= 2);
    assert_eq!(flagged_fantasy, truth_fantasy);
    let _ = Value::Null; // keep the prelude import honest
}
