//! A pay-as-you-go wrangling session (paper §2.4, Example 5).
//!
//! Shows the feedback economy end to end: the first wrangle is fully
//! automated; then "payment" arrives in different forms — expert judgements,
//! simulated crowd labels on duplicates — each routed to every component
//! that can learn from it, with incremental (not full) recomputation.
//!
//! Run with: `cargo run --release --example payg_session`

use data_wrangler::core::eval::score_against_truth;
use data_wrangler::feedback::crowd::{aggregate_em, Crowd};
use data_wrangler::prelude::*;
use data_wrangler::sources::synthetic::generate_fleet;

fn main() {
    let cfg = FleetConfig {
        num_products: 100,
        num_sources: 15,
        now: 15,
        error_rate: (0.05, 0.35),
        ..FleetConfig::default()
    };
    let fleet = generate_fleet(&cfg, 11);

    let mut ctx = DataContext::with_ontology(Ontology::ecommerce());
    ctx.add_master("product", fleet.truth.master_catalog(), "sku")
        .unwrap();
    let catalog = fleet.truth.master_catalog();
    let mut fields = catalog.schema().fields().to_vec();
    fields.push(wrangler_table::Field::new("price", DataType::Float));
    let mut cols: Vec<Vec<Value>> = (0..catalog.num_columns())
        .map(|i| catalog.column(i).unwrap().to_vec())
        .collect();
    cols.push(vec![Value::Null; catalog.num_rows()]);
    let sample = Table::from_columns(Schema::new(fields).unwrap(), cols).unwrap();

    let mut w = Wrangler::new(UserContext::balanced("payg"), ctx, sample);
    w.set_now(fleet.truth.now);
    for s in fleet.registry.iter() {
        w.add_source(s.meta.clone(), s.table.clone());
    }

    // Round 0: automation only.
    let out0 = w.wrangle().unwrap();
    let s0 = score_against_truth(&out0.table, &fleet.truth, 0.005).unwrap();
    println!(
        "round 0 (automation only): yield {:.2}, cost {:.1}",
        s0.correct_price_yield, out0.cost_spent
    );

    // Round 1: the analyst reviews 10 rows, flagging wrong prices. Each item
    // updates fusion, source trust AND mapping beliefs (shared routing).
    let price_attr = w.target().index_of("price").unwrap();
    let mut flagged = 0;
    for row in 0..out0.table.num_rows() {
        if flagged == 10 {
            break;
        }
        if let (Some(sku), Some(p)) = (
            out0.table.get_named(row, "sku").unwrap().as_str(),
            out0.table.get_named(row, "price").unwrap().as_f64(),
        ) {
            let correct = fleet.truth.price_is_correct(sku, p, 0.005);
            w.give_feedback(FeedbackItem::expert(
                FeedbackTarget::Value {
                    entity: row,
                    attr: price_attr,
                    value: Some(Value::Float(p)),
                },
                if correct {
                    Verdict::Positive
                } else {
                    Verdict::Negative
                },
                0.5, // each judgement costs half an effort unit
            ));
            flagged += 1;
        }
    }
    let work_before = w.working.work;
    let out1 = w.rewrangle().unwrap();
    let inc = w.working.work - work_before;
    let s1 = score_against_truth(&out1.table, &fleet.truth, 0.005).unwrap();
    println!(
        "round 1 (+10 expert judgements): yield {:.2}, cost {:.1}  [incremental: {} slots re-fused, 0 remaps]",
        s1.correct_price_yield, out1.cost_spent, inc.slots_fused
    );
    assert_eq!(inc.mappings_generated, 0);
    assert_eq!(inc.er_pairs, 0);

    // Round 2: crowdsourced duplicate labels (Example 5: "crowdsourcing, with
    // direct financial payment of crowd workers ... to identify duplicates").
    // The crowd judges candidate union-row pairs; EM aggregation estimates
    // worker quality; aggregated labels refine the ER rule.
    let mut crowd = Crowd::new(12, (0.6, 0.95), 0.05, 3);
    // Candidate pairs worth asking about: some rows the system merged
    // (verify them) and some adjacent unmerged rows (catch missed dupes).
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for r in 0..w.union_len().saturating_sub(1) {
        if pairs.len() >= 20 {
            break;
        }
        pairs.push((r, r + 1));
        // Also a same-entity partner if one exists further on.
        if let Some(e) = w.entity_of_union_row(r) {
            if let Some(partner) =
                (r + 2..w.union_len()).find(|&q| w.entity_of_union_row(q) == Some(e))
            {
                pairs.push((r, partner));
            }
        }
    }
    pairs.truncate(20);
    // The crowd knows the *world*, not the system's clustering: ground-truth
    // identity comes from the wrangled rows' identity in the fleet.
    let row_product = |r: usize| -> Option<usize> {
        let e = w.entity_of_union_row(r)?;
        let sku = out1.table.get_named(e, "sku").ok()?.as_str()?.to_string();
        fleet.truth.index_of(&sku)
    };
    let truths: Vec<bool> = pairs
        .iter()
        .map(|&(a, b)| match (row_product(a), row_product(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        })
        .collect();
    let votes = crowd.ask(&truths, 5);
    let agg = aggregate_em(&votes, truths.len(), crowd.len(), crowd.fee, 15);
    for (k, (&ans, &conf)) in agg.answers.iter().zip(&agg.confidence).enumerate() {
        let (row_a, row_b) = pairs[k];
        w.give_feedback(FeedbackItem::crowd(
            FeedbackTarget::DuplicatePair { row_a, row_b },
            if ans {
                Verdict::Positive
            } else {
                Verdict::Negative
            },
            conf,
            agg.cost / truths.len() as f64,
        ));
    }
    let er_f1 = w.refine_er();
    println!(
        "round 2 (+{} crowd-labeled pairs, {} votes, ${:.2}): ER rule refined to F1 {:.2} on labels",
        truths.len(),
        votes.len(),
        agg.cost,
        er_f1.unwrap_or(0.0)
    );

    let out2 = w.rewrangle().unwrap();
    let s2 = score_against_truth(&out2.table, &fleet.truth, 0.005).unwrap();
    println!(
        "round 2 result: yield {:.2}, total cost {:.1} (access + feedback ledger)",
        s2.correct_price_yield, out2.cost_spent
    );
    println!(
        "\npayment ledger: {} items, {:.2} units",
        w.feedback.len(),
        w.feedback.total_cost()
    );
    assert!(s1.correct_price_yield >= s0.correct_price_yield - 0.05);

    // Finally: analysis *with* the uncertainty, not despite it (§4.3).
    // "How many of our products are listed above $250?" — answered over
    // possible worlds, with an error bar from the delivered confidences.
    let view = UncertainView::new(out2.table.clone()).unwrap();
    let est = view
        .estimate_count(&Expr::col("price").gt(Expr::lit(250.0)), 7, 5_000)
        .unwrap();
    let certain = view
        .estimate_exists(&Expr::col("price").gt(Expr::lit(450.0)), 7, 1)
        .unwrap();
    println!(
        "\nuncertain analytics: #products over $250 = {:.1} ± {:.1}; P(any over $450) = {:.2}",
        est.mean, est.std_dev, certain
    );
}
