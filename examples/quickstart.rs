//! Quickstart: wrangle two messy sources against a tiny catalog.
//!
//! Run with: `cargo run --example quickstart`

use data_wrangler::prelude::*;

fn main() {
    // Sources, as extraction delivered them: different schemas, messy values.
    let shop_a = Table::literal(
        &["code", "title", "cost"],
        vec![
            vec!["p1".into(), "Turbo Widget".into(), "$9.99".into()],
            vec!["p2".into(), "Mini Gadget".into(), "$24.00".into()],
            vec!["p3".into(), "Mega Flange".into(), "$105.00".into()],
        ],
    )
    .unwrap();
    let shop_b = Table::literal(
        &["sku", "name", "price"],
        vec![
            vec!["p2".into(), "Mini Gadget".into(), Value::Float(23.5)],
            vec!["p3".into(), "Mega Flange".into(), Value::Float(99.0)],
        ],
    )
    .unwrap();

    // Master data: the products we care about (prices unknown — that is the
    // point of wrangling them in).
    let catalog = Table::literal(
        &["sku", "name", "price"],
        vec![
            vec!["p1".into(), "Turbo Widget".into(), Value::Null],
            vec!["p2".into(), "Mini Gadget".into(), Value::Null],
            vec!["p3".into(), "Mega Flange".into(), Value::Null],
        ],
    )
    .unwrap();

    let mut data_ctx = DataContext::with_ontology(Ontology::ecommerce());
    data_ctx
        .add_master("product", catalog.clone(), "sku")
        .unwrap();

    let user = UserContext::balanced("quickstart").with_required_columns(&["sku", "price"]);
    let mut wrangler = Wrangler::new(user, data_ctx, catalog);
    wrangler.add_source(SourceMeta::new(SourceId(0), "shop-a.example"), shop_a);
    wrangler.add_source(SourceMeta::new(SourceId(0), "shop-b.example"), shop_b);

    let out = wrangler.wrangle().expect("wrangling succeeds");
    println!(
        "Wrangled {} entities from {} sources:\n",
        out.entities,
        out.selected_sources.len()
    );
    println!("{}", out.table.show(10));
    println!("quality: {}", out.quality);
    println!("utility under context: {:.3}", out.utility);
}
