//! Offline stand-in for the subset of the `proptest` API this workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and string-pattern strategies, `Just`, `any`,
//! `prop_oneof!`, collection strategies (`prop::collection::vec`,
//! `prop::collection::hash_set`, `prop::option::of`), the `proptest!` test
//! macro, `prop_assert!` / `prop_assert_eq!`, and `ProptestConfig`.
//!
//! Differences from real proptest, deliberate for an offline shim:
//!
//! * **No shrinking** — a failing case reports its inputs via the assert
//!   message but is not minimized.
//! * **Deterministic seeding** — each test's case stream is a pure function
//!   of the test name and case index, so failures reproduce exactly.
//! * **String strategies** support the character-class pattern subset used
//!   here (`[a-z0-9 ]{m,n}` sequences), not full regex.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 96 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies by the `proptest!` macro.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for one (test, case) pair.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values of one type (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats across a wide magnitude range.
        let m: f64 = rng.gen_range(-1.0..1.0);
        let e: i32 = rng.gen_range(-60..60);
        m * (2.0f64).powi(e)
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "empty range strategy");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: rand::SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.start() <= self.end(), "empty range strategy");
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

// String patterns: sequences of `[class]{m,n}`, `[class]{n}`, `[class]`,
// or literal characters. This covers every pattern in the workspace's
// property tests.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal char.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"));
            let body = &chars[i + 1..close];
            i = close + 1;
            expand_class(body, pattern)
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().expect("quantifier min"),
                    hi.trim().parse::<usize>().expect("quantifier max"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let n = if min == max {
            min
        } else {
            rng.gen_range(min..=max)
        };
        for _ in 0..n {
            out.push(class[rng.gen_range(0..class.len())]);
        }
    }
    out
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
            assert!(lo <= hi, "inverted class range in `{pattern}`");
            for c in lo..=hi {
                if let Some(c) = char::from_u32(c) {
                    set.push(c);
                }
            }
            j += 3;
        } else {
            set.push(body[j]);
            j += 1;
        }
    }
    assert!(!set.is_empty(), "empty character class in `{pattern}`");
    set
}

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident/$idx:tt),+);)+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_for_tuple! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
}

/// Weighted choice between type-erased alternatives; built by
/// [`prop_oneof!`].
pub struct WeightedUnion<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum mismatch")
    }
}

/// Build a [`WeightedUnion`] (used by the `prop_oneof!` expansion).
pub fn weighted_union<T>(arms: Vec<(u32, BoxedStrategy<T>)>) -> WeightedUnion<T> {
    let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "prop_oneof! needs at least one positive weight");
    WeightedUnion { arms, total }
}

/// Weighted (or uniform) choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::weighted_union(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::weighted_union(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Collection and option strategies (subset of `proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Size specifications accepted by the collection strategies.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            min: usize,
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        impl SizeRange {
            fn pick(&self, rng: &mut TestRng) -> usize {
                if self.min == self.max {
                    self.min
                } else {
                    rng.gen_range(self.min..=self.max)
                }
            }
        }

        /// `Vec` of values from `element`, sized within `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `HashSet` of values from `element`, sized within `size` when the
        /// element space allows (duplicates are re-drawn a bounded number of
        /// times, like real proptest's rejection budget).
        pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            HashSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`hash_set`].
        pub struct HashSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            type Value = HashSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
                let n = self.size.pick(rng);
                let mut out = HashSet::with_capacity(n);
                let mut attempts = 0;
                while out.len() < n && attempts < n * 20 + 50 {
                    out.insert(self.element.generate(rng));
                    attempts += 1;
                }
                out
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::*;

        /// `Some` from `inner` three times out of four, else `None`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen_range(0..4u32) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

/// What a property body evaluates to, as in `proptest::test_runner`:
/// bodies may `return Ok(())` early and the assert macros return `Err`.
pub type TestCaseResult = ::std::result::Result<(), String>;

/// Assert inside a property; fails the case via `Err` (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "prop_assert failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a property; fails the case via `Err`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq failed: {l:?} != {r:?}"
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Assert inequality inside a property; fails the case via `Err`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(format!(
                "prop_assert_ne failed: both sides are {l:?}"
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Skip a case whose inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strategy:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut prop_rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $pat = $crate::Strategy::generate(&$strategy, &mut prop_rng);)*
                    // The closure keeps `return` (from prop_assume! and early
                    // `return Ok(())`) local to the case, not the whole test.
                    #[allow(clippy::redundant_closure_call)]
                    let case_result: $crate::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let Err(msg) = case_result {
                        panic!("property {} failed at case {case}: {msg}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::for_case("string_patterns", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            let t = Strategy::generate(&"[ -~]{0,12}", &mut rng);
            assert!(t.len() <= 12);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)), "{t:?}");
            let u = Strategy::generate(&"[a-zA-Z0-9 ]{0,10}", &mut rng);
            assert!(u.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::for_case("collections", 1);
        for _ in 0..100 {
            let v = Strategy::generate(&prop::collection::vec(0i64..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = Strategy::generate(&prop::collection::vec(0i64..10, 3), &mut rng);
            assert_eq!(exact.len(), 3);
            let hs = Strategy::generate(&prop::collection::hash_set("[a-f]{3,7}", 2..5), &mut rng);
            assert!((2..5).contains(&hs.len()), "{hs:?}");
        }
    }

    #[test]
    fn oneof_weights_and_map_compose() {
        let strat = prop_oneof![
            3 => Just(0u32),
            1 => (10u32..20).prop_map(|x| x),
        ];
        let mut rng = TestRng::for_case("oneof", 2);
        let mut zeros = 0;
        for _ in 0..1000 {
            let v = Strategy::generate(&strat, &mut rng);
            if v == 0 {
                zeros += 1;
            } else {
                assert!((10..20).contains(&v));
            }
        }
        let frac = zeros as f64 / 1000.0;
        assert!((frac - 0.75).abs() < 0.06, "zero fraction {frac}");
    }

    proptest! {
        #[test]
        fn macro_generates_and_asserts(a in 0i64..100, b in any::<bool>(), s in "[a-c]{0,8}") {
            prop_assert!((0..100).contains(&a));
            let _ = b;
            prop_assert!(s.len() <= 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_form_compiles(x in 0.0f64..=1.0) {
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }
}
