//! Offline stand-in for the subset of the `criterion` benchmarking API this
//! workspace uses: `Criterion::bench_function`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is intentionally simple — a warm-up pass followed by a
//! fixed number of timed samples, reporting the per-iteration median and
//! min on stdout. It has none of criterion's statistics, baselines or
//! HTML reports, but it keeps every bench target compiling and runnable
//! offline, and the relative numbers are still useful for spotting
//! order-of-magnitude regressions.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (subset of `criterion::BatchSize`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Re-export of `std::hint::black_box` for parity with criterion.
pub use std::hint::black_box;

/// The benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Soft cap on total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            target_samples: self.sample_size,
        };
        f(&mut b);
        let mut per_iter: Vec<f64> = b.samples;
        if per_iter.is_empty() {
            println!("{name:<40} (no samples)");
            return self;
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        println!(
            "{name:<40} median {:>12}  min {:>12}  ({} samples)",
            fmt_ns(median),
            fmt_ns(min),
            per_iter.len()
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Timer handed to each benchmark body (subset of `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<f64>,
    budget: Duration,
    target_samples: usize,
}

impl Bencher {
    /// Time `routine`, amortizing over enough iterations per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: how many iterations fit ~1ms?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().as_nanos().max(1) as f64;
        let iters = ((1_000_000.0 / once).ceil() as u64).clamp(1, 10_000);
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.target_samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Time `routine` over inputs built by `setup` (setup time excluded).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.target_samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos() as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// Define a benchmark group: either `criterion_group!(name, fn...)` or the
/// struct form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        c.bench_function("demo/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("demo/batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group! {
        name = unit_group;
        config = Criterion::default().sample_size(3).measurement_time(std::time::Duration::from_millis(20));
        targets = bench_demo
    }

    #[test]
    fn group_runs() {
        unit_group();
    }

    #[test]
    fn formatting() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(1.2e4).ends_with("µs"));
        assert!(fmt_ns(3.4e6).ends_with("ms"));
        assert!(fmt_ns(5.6e9).ends_with("s"));
    }
}
