//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `gen`, `gen_bool` and `gen_range` over integer and float
//! ranges.
//!
//! The build environment has no access to crates.io, so the real `rand`
//! cannot be vendored; everything in the workspace that needs randomness
//! is seeded and only asserts statistical or structural properties, which
//! any decent generator satisfies. The generator here is xoshiro256++
//! seeded via SplitMix64 — deterministic per seed, with 64-bit output.
//!
//! Not implemented (because unused here): distributions, `thread_rng`,
//! `SliceRandom`, fill/bytes APIs, and seeding from byte arrays.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed (subset of
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values drawable "from the standard distribution" via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// Types uniformly sampleable from a range (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)` or `[low, high]`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span_minus_one = (high as i128 - low as i128
                    - if inclusive { 0 } else { 1 }) as u128;
                if span_minus_one >= u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                let span = span_minus_one as u64 + 1;
                // Multiply-shift keeps bias below 2^-64 without rejection.
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <$t as Standard>::draw(rng);
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges acceptable to [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_uniform(rng, low, high, true)
    }
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform draw from a range; panics on an empty range like `rand`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Same trait surface; a different (but high-quality)
    /// stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, the reference seeding scheme.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let f: f64 = rng.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&f));
            let inc: u64 = rng.gen_range(2..=4);
            assert!((2..=4).contains(&inc));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: i64 = rng.gen_range(5..5);
    }
}
