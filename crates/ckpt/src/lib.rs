//! `wrangler-ckpt` — the durable substrate for crash-resilient wrangling.
//!
//! The paper frames wrangling as a long-running, pay-as-you-go process over
//! unreliable fleets. PRs 1 and 5 made the *pipeline* survive bad sources
//! and mid-stage panics; this crate makes the *process* survivable: an OOM
//! kill, node restart or deploy mid-wrangle no longer throws away the pass.
//!
//! Three pieces:
//!
//! * [`CheckpointStore`] — a directory of content-keyed records. Every write
//!   is **atomic** (temp file + rename, so a reader never observes a partial
//!   record under POSIX rename semantics) and **checksummed** (FNV-1a-64
//!   over the payload, plus magic/version/length framing), so a torn or
//!   bit-flipped record is *detected and recomputed, never trusted* — a
//!   corrupt checkpoint is strictly a cache miss.
//! * [`ContentKey`] — key derivation for stage records: mix the stage id,
//!   the compiled plan fingerprint and the payload hashes feeding the stage
//!   into one 64-bit key. Equal inputs ⇒ equal key ⇒ replay; any changed
//!   input ⇒ different key ⇒ recompute. This is the foundation the
//!   ROADMAP's incremental dataflow engine builds on.
//! * [`CrashPolicy`] — the seeded crash-injection harness. Library-level
//!   tests arm it in `Panic` mode and catch the unwind; the E17 bench
//!   re-execs itself and arms the child in `Exit` mode so the process
//!   actually dies at a stage boundary (or mid-ER), then resumes in a fresh
//!   process and must reproduce the uninterrupted output byte-for-byte.
//!
//! The store deliberately knows nothing about pipeline stages — it moves
//! opaque byte payloads. Stage serialization lives next to the stages
//! (`wrangler_table::wire` for tables/values, `wrangler-core`'s `ckpt_io`
//! for session state), keeping this crate the single sanctioned home of
//! durable file writes (`scripts/lint.sh` rule 6).

use std::cell::Cell;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use wrangler_table::wire::{hash64, Hasher64};

/// File magic for checkpoint records ("WCKP").
const MAGIC: [u8; 4] = *b"WCKP";
/// Format version; bump on any layout change.
const VERSION: u16 = 1;
/// Fixed header size: magic(4) + version(2) + pad(2) + len(8) + checksum(8).
const HEADER: usize = 24;

/// Write `bytes` to `path` atomically: write to a sibling temp file, flush,
/// then rename over the destination. A crash at any point leaves either the
/// old file or the new one — never a prefix. The temp name is derived from
/// the destination plus the process id, so concurrent writers in different
/// processes cannot collide on it.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    fs::create_dir_all(dir)?;
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "ckpt".to_string());
    let tmp = dir.join(format!(".{file_name}.tmp.{}", std::process::id()));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        // Flush file contents before the rename makes them visible. (No
        // fsync: the threat model here is process death, not power loss —
        // the OS survives an OOM kill with its page cache intact.)
        f.flush()?;
    }
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Leave no droppings on failure.
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Counters the store keeps about itself; the session mirrors them into
/// `ckpt.<stage>.*` telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CkptStats {
    /// Records served from disk with a valid checksum.
    pub hits: u64,
    /// Lookups that found no record.
    pub misses: u64,
    /// Payload bytes written (excluding headers).
    pub bytes_written: u64,
    /// Records found torn/corrupt (bad magic, short file, length or
    /// checksum mismatch) and treated as misses.
    pub torn_detected: u64,
}

/// A directory-backed, content-keyed checkpoint store.
///
/// Records are opaque byte payloads under 64-bit keys; a record file is
/// `<key as hex>.ckpt` containing a checksummed header plus the payload.
/// `get` never returns a payload whose checksum does not verify.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    hits: Cell<u64>,
    misses: Cell<u64>,
    bytes_written: Cell<u64>,
    torn: Cell<u64>,
}

impl CheckpointStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<CheckpointStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            hits: Cell::new(0),
            misses: Cell::new(0),
            bytes_written: Cell::new(0),
            torn: Cell::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counters so far (this handle's view; counters are per-handle, the
    /// records themselves are shared through the filesystem).
    pub fn stats(&self) -> CkptStats {
        CkptStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            bytes_written: self.bytes_written.get(),
            torn_detected: self.torn.get(),
        }
    }

    /// On-disk path of the record for `key` (whether or not one exists).
    /// Exposed for diagnostics and corruption-injection tests.
    pub fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.ckpt"))
    }

    /// Persist `payload` under `key`, atomically. An existing record for the
    /// key is replaced (content-keyed records are immutable in practice —
    /// same key means same content — but named records like the session head
    /// rely on replacement).
    pub fn put(&self, key: u64, payload: &[u8]) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(HEADER + payload.len());
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&[0u8; 2]);
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(&hash64(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        write_atomic(&self.path_for(key), &buf)?;
        self.bytes_written
            .set(self.bytes_written.get() + payload.len() as u64);
        Ok(())
    }

    /// Load the payload stored under `key`, verifying the framing and
    /// checksum. Returns `None` — counting a miss, or `torn_detected` when a
    /// record exists but fails verification — rather than ever surfacing
    /// corrupt bytes. A torn record is additionally unlinked so the slot
    /// heals on the next `put`.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        let path = self.path_for(key);
        let raw = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.set(self.misses.get() + 1);
                return None;
            }
        };
        match Self::verify(&raw) {
            Some(payload) => {
                self.hits.set(self.hits.get() + 1);
                Some(payload.to_vec())
            }
            None => {
                self.torn.set(self.torn.get() + 1);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Whether a *valid* record exists under `key` (counts like `get`).
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Verify framing + checksum; `Some(payload)` only when everything
    /// checks out.
    fn verify(raw: &[u8]) -> Option<&[u8]> {
        if raw.len() < HEADER || raw[..4] != MAGIC {
            return None;
        }
        let version = u16::from_le_bytes([raw[4], raw[5]]);
        if version != VERSION || raw[6..8] != [0, 0] {
            return None;
        }
        let len = u64::from_le_bytes(raw[8..16].try_into().ok()?) as usize;
        let checksum = u64::from_le_bytes(raw[16..24].try_into().ok()?);
        let payload = &raw[HEADER..];
        if payload.len() != len || hash64(payload) != checksum {
            return None;
        }
        Some(payload)
    }

    /// Number of record files currently in the store (diagnostics only;
    /// order-independent).
    pub fn num_records(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Corrupt every record in the store for torn-write testing: truncate
    /// records at `truncate_at` fraction of their length, or bit-flip one
    /// payload byte when `truncate_at` is `None`. Returns how many records
    /// were damaged. Test/bench harness API — the pipeline never calls this.
    pub fn corrupt_all_records(&self, truncate_at: Option<f64>) -> usize {
        let mut n = 0;
        let Ok(rd) = fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut paths: Vec<PathBuf> = rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
            .collect();
        paths.sort();
        for p in paths {
            let Ok(mut bytes) = fs::read(&p) else {
                continue;
            };
            match truncate_at {
                Some(frac) => {
                    let keep = ((bytes.len() as f64) * frac) as usize;
                    bytes.truncate(keep);
                }
                None => {
                    if bytes.len() > HEADER {
                        let mid = HEADER + (bytes.len() - HEADER) / 2;
                        bytes[mid] ^= 0x20;
                    } else {
                        bytes.clear();
                    }
                }
            }
            // Direct (non-atomic) write on purpose: we are *simulating* the
            // torn state the atomic path prevents.
            if fs::write(&p, &bytes).is_ok() {
                n += 1;
            }
        }
        n
    }
}

/// Builder for stage content keys: stage id + plan fingerprint + input
/// payload hashes, mixed through the canonical hasher. Key equality is the
/// replay condition, so every ingredient that can change a stage's output
/// must be absorbed.
#[derive(Debug, Clone)]
pub struct ContentKey {
    h: Hasher64,
}

impl ContentKey {
    /// Start a key for `stage` under `plan_fingerprint`.
    pub fn stage(stage: &str, plan_fingerprint: u64) -> ContentKey {
        let mut h = Hasher64::new();
        h.write_str(stage).write_u64(plan_fingerprint);
        ContentKey { h }
    }

    /// Absorb one upstream payload/content hash.
    pub fn input(mut self, hash: u64) -> ContentKey {
        self.h.write_u64(hash);
        self
    }

    /// Absorb a labelled hash (label disambiguates ingredient kinds).
    pub fn labelled(mut self, label: &str, hash: u64) -> ContentKey {
        self.h.write_str(label).write_u64(hash);
        self
    }

    /// Absorb an ordered list of `(index, hash)` pairs (e.g. per-source
    /// payload hashes of the stage's survivors).
    pub fn inputs<I: IntoIterator<Item = (usize, u64)>>(mut self, it: I) -> ContentKey {
        for (i, hash) in it {
            self.h.write_u64(i as u64).write_u64(hash);
        }
        self
    }

    /// The finished 64-bit key.
    pub fn finish(&self) -> u64 {
        self.h.finish()
    }
}

/// Where an injected crash fires, named after the seam it follows. The
/// sites mirror the checkpoint seams in `Wrangler::wrangle` plus one
/// mid-stage site inside ER (after candidate generation, before scoring) —
/// the "process died with a checkpoint prefix on disk but the current stage
/// incomplete" case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// After source selection is checkpointed.
    AfterSelect,
    /// After acquisition is checkpointed.
    AfterAcquire,
    /// After mapping generation is checkpointed.
    AfterMapGenerate,
    /// After mapping execution is checkpointed.
    AfterMapApply,
    /// After the union is checkpointed.
    AfterUnion,
    /// Inside the ER stage, mid-computation.
    MidEr,
    /// After ER is checkpointed.
    AfterEr,
    /// After fusion is checkpointed.
    AfterFuse,
}

impl CrashSite {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CrashSite::AfterSelect => "after-select",
            CrashSite::AfterAcquire => "after-acquire",
            CrashSite::AfterMapGenerate => "after-map-generate",
            CrashSite::AfterMapApply => "after-map-apply",
            CrashSite::AfterUnion => "after-union",
            CrashSite::MidEr => "mid-er",
            CrashSite::AfterEr => "after-er",
            CrashSite::AfterFuse => "after-fuse",
        }
    }

    /// Every site, in pipeline order (the E17 sweep axis).
    pub fn all() -> [CrashSite; 8] {
        [
            CrashSite::AfterSelect,
            CrashSite::AfterAcquire,
            CrashSite::AfterMapGenerate,
            CrashSite::AfterMapApply,
            CrashSite::AfterUnion,
            CrashSite::MidEr,
            CrashSite::AfterEr,
            CrashSite::AfterFuse,
        ]
    }

    /// Parse a site from its `name()` (the E17 parent→child env protocol).
    pub fn parse(s: &str) -> Option<CrashSite> {
        CrashSite::all().into_iter().find(|c| c.name() == s)
    }
}

/// How the injected crash manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Panic with a recognizable payload — library-level tests catch the
    /// unwind and then resume in a fresh session, simulating process death
    /// without needing a child process.
    Panic,
    /// `std::process::exit` with this code — the E17 bench's child really
    /// dies at the seam; the parent observes the exit code.
    Exit(i32),
}

/// A one-shot injected crash at a pipeline seam. Deterministic: fires at
/// exactly the armed site, every time, so crash/resume experiments are
/// seeded by *which* site is armed rather than by a probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPolicy {
    /// Where to crash.
    pub site: CrashSite,
    /// How to crash.
    pub mode: CrashMode,
}

/// Panic message prefix of `CrashMode::Panic` firings; tests match on it to
/// distinguish an injected crash from a real defect.
pub const CRASH_PANIC_PREFIX: &str = "injected crash:";

impl CrashPolicy {
    /// Crash at `site` by panicking (for in-process tests).
    pub fn panic_at(site: CrashSite) -> CrashPolicy {
        CrashPolicy {
            site,
            mode: CrashMode::Panic,
        }
    }

    /// Crash at `site` by exiting with `code` (for the process-level E17
    /// harness).
    pub fn exit_at(site: CrashSite, code: i32) -> CrashPolicy {
        CrashPolicy {
            site,
            mode: CrashMode::Exit(code),
        }
    }

    /// Fire if `site` is the armed site. `Exit` does not return; `Panic`
    /// unwinds with [`CRASH_PANIC_PREFIX`] in the message.
    pub fn fire(&self, site: CrashSite) {
        if site != self.site {
            return;
        }
        match self.mode {
            CrashMode::Panic => {
                // The whole point of the crash harness is to die here.
                panic!("{CRASH_PANIC_PREFIX} {}", site.name()); // lint-allow: injected crash
            }
            CrashMode::Exit(code) => std::process::exit(code),
        }
    }
}

/// A scratch directory for checkpoint tests/benches, inside the workspace
/// `target/` tree (never outside the repo). Unique per label + process so
/// parallel tests do not collide; callers remove it when done.
pub fn scratch_dir(label: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("target")
        .join("ckpt-scratch");
    root.join(format!("{label}-{}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(label: &str) -> CheckpointStore {
        let dir = scratch_dir(label);
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).unwrap()
    }

    #[test]
    fn put_get_roundtrip_and_stats() {
        let s = store("roundtrip");
        assert_eq!(s.get(1), None);
        s.put(1, b"hello checkpoint").unwrap();
        assert_eq!(s.get(1).as_deref(), Some(&b"hello checkpoint"[..]));
        let st = s.stats();
        assert_eq!((st.hits, st.misses, st.torn_detected), (1, 1, 0));
        assert_eq!(st.bytes_written, 16);
        let _ = fs::remove_dir_all(s.dir());
    }

    #[test]
    fn overwrite_replaces_payload() {
        let s = store("overwrite");
        s.put(9, b"v1").unwrap();
        s.put(9, b"v2-longer").unwrap();
        assert_eq!(s.get(9).as_deref(), Some(&b"v2-longer"[..]));
        let _ = fs::remove_dir_all(s.dir());
    }

    #[test]
    fn truncated_record_is_detected_never_loaded() {
        let s = store("torn");
        s.put(7, b"payload-that-will-be-torn").unwrap();
        assert_eq!(s.corrupt_all_records(Some(0.5)), 1);
        assert_eq!(s.get(7), None, "torn record must read as absent");
        assert_eq!(s.stats().torn_detected, 1);
        // The torn file was unlinked; the next read is a plain miss.
        assert_eq!(s.get(7), None);
        assert_eq!(s.stats().torn_detected, 1);
        assert_eq!(s.stats().misses, 1);
        let _ = fs::remove_dir_all(s.dir());
    }

    #[test]
    fn bitflipped_record_is_detected_never_loaded() {
        let s = store("flip");
        s.put(3, b"some payload bytes with room to flip").unwrap();
        assert_eq!(s.corrupt_all_records(None), 1);
        assert_eq!(s.get(3), None);
        assert_eq!(s.stats().torn_detected, 1);
        let _ = fs::remove_dir_all(s.dir());
    }

    #[test]
    fn empty_and_garbage_files_are_torn() {
        let s = store("garbage");
        fs::write(s.dir().join(format!("{:016x}.ckpt", 5u64)), b"").unwrap();
        assert_eq!(s.get(5), None);
        fs::write(s.dir().join(format!("{:016x}.ckpt", 6u64)), b"not a checkpoint").unwrap();
        assert_eq!(s.get(6), None);
        assert_eq!(s.stats().torn_detected, 2);
        let _ = fs::remove_dir_all(s.dir());
    }

    #[test]
    fn version_mismatch_is_torn() {
        let s = store("version");
        s.put(4, b"versioned").unwrap();
        let p = s.dir().join(format!("{:016x}.ckpt", 4u64));
        let mut raw = fs::read(&p).unwrap();
        raw[4] = raw[4].wrapping_add(1);
        fs::write(&p, &raw).unwrap();
        assert_eq!(s.get(4), None);
        assert_eq!(s.stats().torn_detected, 1);
        let _ = fs::remove_dir_all(s.dir());
    }

    #[test]
    fn content_keys_are_input_sensitive() {
        let base = ContentKey::stage("union", 42).inputs([(0, 10), (1, 20)]).finish();
        let same = ContentKey::stage("union", 42).inputs([(0, 10), (1, 20)]).finish();
        assert_eq!(base, same);
        assert_ne!(
            base,
            ContentKey::stage("union", 42).inputs([(0, 10), (1, 21)]).finish(),
            "payload change must change the key"
        );
        assert_ne!(
            base,
            ContentKey::stage("union", 43).inputs([(0, 10), (1, 20)]).finish(),
            "plan change must change the key"
        );
        assert_ne!(
            base,
            ContentKey::stage("er", 42).inputs([(0, 10), (1, 20)]).finish(),
            "stage id must change the key"
        );
        assert_ne!(
            base,
            ContentKey::stage("union", 42).inputs([(1, 10), (0, 20)]).finish(),
            "input order/index must change the key"
        );
    }

    #[test]
    fn crash_sites_parse_back() {
        for site in CrashSite::all() {
            assert_eq!(CrashSite::parse(site.name()), Some(site));
        }
        assert_eq!(CrashSite::parse("nope"), None);
    }

    #[test]
    fn crash_policy_panics_only_at_armed_site() {
        let p = CrashPolicy::panic_at(CrashSite::AfterUnion);
        p.fire(CrashSite::AfterSelect); // no-op
        let caught = std::panic::catch_unwind(|| p.fire(CrashSite::AfterUnion));
        let msg = match caught {
            Err(e) => e
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default(),
            Ok(()) => String::new(),
        };
        assert!(msg.starts_with(CRASH_PANIC_PREFIX), "got: {msg}");
    }
}
