//! Property tests for the checkpoint store: arbitrary payloads round-trip
//! exactly, and *any* single corruption — truncation at any point, or a
//! bit flip at any offset — is detected at read time. A corrupt record is
//! never served; it is counted as torn and removed.

use proptest::prelude::*;
use wrangler_ckpt::{scratch_dir, CheckpointStore};

fn fresh(label: &str) -> CheckpointStore {
    let dir = scratch_dir(label);
    let _ = std::fs::remove_dir_all(&dir);
    CheckpointStore::open(&dir).expect("scratch store")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_payloads_roundtrip_exactly(
        key in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let store = fresh("prop-roundtrip");
        store.put(key, &payload).expect("put");
        let loaded = store.get(key);
        prop_assert_eq!(loaded.as_deref(), Some(payload.as_slice()));
        prop_assert_eq!(store.stats().torn_detected, 0);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn truncation_at_any_point_is_detected_never_loaded(
        key in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 1..512),
        cut in 0.0f64..1.0,
    ) {
        let store = fresh("prop-truncate");
        store.put(key, &payload).expect("put");
        let path = store.path_for(key);
        let bytes = std::fs::read(&path).expect("record exists");
        // Cut strictly inside the file so *some* prefix remains on disk —
        // the classic torn write.
        let keep = ((bytes.len() as f64 * cut) as usize).min(bytes.len() - 1);
        std::fs::write(&path, &bytes[..keep]).expect("tear"); // lint-allow: test corrupts its own record
        prop_assert!(store.get(key).is_none(), "served a torn record");
        prop_assert_eq!(store.stats().torn_detected, 1);
        prop_assert_eq!(store.stats().hits, 0);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn bit_flip_at_any_offset_is_detected_never_loaded(
        key in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 1..512),
        offset_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let store = fresh("prop-bitflip");
        store.put(key, &payload).expect("put");
        let path = store.path_for(key);
        let mut bytes = std::fs::read(&path).expect("record exists");
        let off = ((bytes.len() as f64 * offset_frac) as usize).min(bytes.len() - 1);
        bytes[off] ^= 1 << bit;
        std::fs::write(&path, &bytes).expect("flip"); // lint-allow: test corrupts its own record
        prop_assert!(store.get(key).is_none(), "served a bit-flipped record");
        prop_assert_eq!(store.stats().torn_detected, 1);
        prop_assert_eq!(store.stats().hits, 0);
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
