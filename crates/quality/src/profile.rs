//! Table and column profiling, and synthesis into quality vectors.

use wrangler_context::{Criterion, DataContext, QualityVector, UserContext};
use wrangler_table::stats::{column_stats, ColumnStats};
use wrangler_table::{DataType, Table};

/// Profile of one column.
#[derive(Debug, Clone)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Raw statistics.
    pub stats: ColumnStats,
    /// Majority non-null dtype of the cells.
    pub majority_dtype: DataType,
    /// Fraction of non-null cells whose dtype equals the majority dtype —
    /// a syntactic-consistency signal (mixed columns smell of extraction or
    /// integration errors).
    pub type_consistency: f64,
}

/// Profile of a whole table.
#[derive(Debug, Clone)]
pub struct TableProfile {
    /// Per-column profiles in schema order.
    pub columns: Vec<ColumnProfile>,
    /// Row count.
    pub rows: usize,
}

impl TableProfile {
    /// Profile every column of `table`.
    pub fn of(table: &Table) -> wrangler_table::Result<TableProfile> {
        let mut columns = Vec::with_capacity(table.num_columns());
        for i in 0..table.num_columns() {
            let name = table.schema().field(i)?.name.clone();
            let col = table.column(i)?;
            let stats = column_stats(col);
            // Count cell dtypes among non-nulls.
            let mut counts: Vec<(DataType, usize)> = Vec::new();
            for v in col.iter().filter(|v| !v.is_null()) {
                let dt = v.dtype();
                match counts.iter_mut().find(|(d, _)| *d == dt) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((dt, 1)),
                }
            }
            let non_null = stats.count - stats.null_count;
            let (majority_dtype, majority_n) = counts
                .iter()
                .max_by_key(|(_, n)| *n)
                .map(|(d, n)| (*d, *n))
                .unwrap_or((DataType::Null, 0));
            let type_consistency = if non_null == 0 {
                1.0
            } else {
                majority_n as f64 / non_null as f64
            };
            columns.push(ColumnProfile {
                name,
                stats,
                majority_dtype,
                type_consistency,
            });
        }
        Ok(TableProfile {
            columns,
            rows: table.num_rows(),
        })
    }

    /// Mean completeness over all columns (or the named subset, if any of the
    /// names exist).
    pub fn completeness(&self, required: &[String]) -> f64 {
        let selected: Vec<&ColumnProfile> = if required.is_empty() {
            self.columns.iter().collect()
        } else {
            let found: Vec<&ColumnProfile> = self
                .columns
                .iter()
                .filter(|c| required.contains(&c.name))
                .collect();
            if found.is_empty() {
                // None of the required columns even exist: completeness 0.
                return 0.0;
            }
            // Missing required columns count as zero-completeness columns.
            let missing = required.len() - found.len();
            let sum: f64 = found.iter().map(|c| c.stats.completeness()).sum();
            return sum / (found.len() + missing) as f64;
        };
        if selected.is_empty() {
            return 1.0;
        }
        selected.iter().map(|c| c.stats.completeness()).sum::<f64>() / selected.len() as f64
    }

    /// Mean type consistency over all columns.
    pub fn type_consistency(&self) -> f64 {
        if self.columns.is_empty() {
            return 1.0;
        }
        self.columns.iter().map(|c| c.type_consistency).sum::<f64>() / self.columns.len() as f64
    }

    /// Names of columns that look like key candidates.
    pub fn key_candidates(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.stats.is_key_candidate())
            .map(|c| c.name.as_str())
            .collect()
    }
}

/// Inputs for scoring a table against a user context that the profile alone
/// cannot know.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExternalSignals {
    /// Age of the data in ticks (for timeliness).
    pub age: u64,
    /// Fraction of consistency-rule violations among checked cells (from
    /// [`crate::fd`]); 0 if no rules were checked.
    pub violation_rate: f64,
    /// Accuracy estimate in \[0, 1\] if one exists (ground truth, master data or
    /// fused trust); `None` falls back to type consistency as a weak proxy.
    pub accuracy: Option<f64>,
    /// Relevance in \[0, 1\] (e.g. master-data coverage); `None` = 1.0.
    pub relevance: Option<f64>,
    /// Spent cost fraction of budget in \[0, 1\]; 0 = free.
    pub cost_fraction: f64,
}

/// Synthesize the context-comparable quality vector of a table.
///
/// This is the bridge between profiling and multi-criteria decision making:
/// every candidate artifact is reduced to the same six numbers the user
/// context weighs (§2.1).
pub fn quality_vector(
    profile: &TableProfile,
    user: &UserContext,
    signals: &ExternalSignals,
) -> QualityVector {
    let accuracy = signals
        .accuracy
        .unwrap_or_else(|| profile.type_consistency());
    QualityVector::neutral()
        .with(
            Criterion::Completeness,
            profile.completeness(&user.required_columns),
        )
        .with(Criterion::Accuracy, accuracy)
        .with(Criterion::Timeliness, user.timeliness_of_age(signals.age))
        .with(Criterion::Consistency, 1.0 - signals.violation_rate)
        .with(Criterion::Relevance, signals.relevance.unwrap_or(1.0))
        .with(Criterion::Cost, 1.0 - signals.cost_fraction.clamp(0.0, 1.0))
}

/// Relevance of a table to the data context: master-data coverage of its best
/// overlapping column, if master data of `kind` exists.
pub fn master_relevance(table: &Table, ctx: &DataContext, kind: &str) -> Option<f64> {
    let mut best: Option<f64> = None;
    for i in 0..table.num_columns() {
        let col = table.column(i).ok()?;
        if let Some(cov) = ctx.master_coverage(kind, col) {
            best = Some(best.map_or(cov, |b: f64| b.max(cov)));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_table::Value;

    fn messy() -> Table {
        Table::literal(
            &["sku", "price"],
            vec![
                vec!["a1".into(), Value::Float(9.5)],
                vec!["a2".into(), Value::Str("n/a?".into())],
                vec!["a3".into(), Value::Null],
                vec!["a4".into(), Value::Float(12.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn profile_measures_completeness_and_type_consistency() {
        let p = TableProfile::of(&messy()).unwrap();
        assert_eq!(p.rows, 4);
        assert!((p.columns[1].stats.completeness() - 0.75).abs() < 1e-12);
        // price: 2 floats + 1 str among 3 non-null.
        assert_eq!(p.columns[1].majority_dtype, DataType::Float);
        assert!((p.columns[1].type_consistency - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.columns[0].type_consistency, 1.0);
        assert_eq!(p.key_candidates(), vec!["sku"]);
    }

    #[test]
    fn completeness_respects_required_columns() {
        let p = TableProfile::of(&messy()).unwrap();
        let all = p.completeness(&[]);
        assert!((all - (1.0 + 0.75) / 2.0).abs() < 1e-12);
        assert!((p.completeness(&["price".to_string()]) - 0.75).abs() < 1e-12);
        // Required column that does not exist counts as 0.
        let half = p.completeness(&["sku".to_string(), "ghost".to_string()]);
        assert!((half - 0.5).abs() < 1e-12);
        assert_eq!(p.completeness(&["ghost".to_string()]), 0.0);
    }

    #[test]
    fn quality_vector_synthesis() {
        let p = TableProfile::of(&messy()).unwrap();
        let user = UserContext::balanced("t").with_freshness_horizon(10);
        let q = quality_vector(
            &p,
            &user,
            &ExternalSignals {
                age: 5,
                violation_rate: 0.2,
                accuracy: Some(0.9),
                relevance: Some(0.6),
                cost_fraction: 0.25,
            },
        );
        assert!((q.get(Criterion::Timeliness) - 0.5).abs() < 1e-12);
        assert!((q.get(Criterion::Consistency) - 0.8).abs() < 1e-12);
        assert!((q.get(Criterion::Accuracy) - 0.9).abs() < 1e-12);
        assert!((q.get(Criterion::Relevance) - 0.6).abs() < 1e-12);
        assert!((q.get(Criterion::Cost) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn accuracy_falls_back_to_type_consistency() {
        let p = TableProfile::of(&messy()).unwrap();
        let user = UserContext::balanced("t");
        let q = quality_vector(&p, &user, &ExternalSignals::default());
        assert!((q.get(Criterion::Accuracy) - p.type_consistency()).abs() < 1e-12);
    }

    #[test]
    fn master_relevance_picks_best_column() {
        let mut ctx = DataContext::new();
        let master = Table::literal(
            &["sku"],
            vec![
                vec!["a1".into()],
                vec!["a2".into()],
                vec!["a3".into()],
                vec!["a4".into()],
            ],
        )
        .unwrap();
        ctx.add_master("product", master, "sku").unwrap();
        let rel = master_relevance(&messy(), &ctx, "product").unwrap();
        assert!((rel - 1.0).abs() < 1e-12); // sku column fully covered
        assert_eq!(master_relevance(&messy(), &ctx, "nothing"), None);
    }
}
