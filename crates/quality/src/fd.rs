//! Functional dependencies and conditional functional dependencies.
//!
//! An FD `X → A` says rows agreeing on the columns `X` must agree on `A`.
//! A CFD additionally restricts the rule to rows matching a constant pattern
//! and may force a constant on the right-hand side — the workhorse constraint
//! class of data cleaning. Violation counting supplies the *consistency*
//! criterion score; [`crate::repair`] consumes the violations.
//!
//! Mining exact FDs is exponential in the schema and repairing violations is
//! NP-hard (§4.3: "many quality analyses are intractable \[7\]"); we implement
//! the standard practical compromises: single/double-column LHS mining with
//! support & confidence thresholds, and greedy repair.

use std::collections::BTreeMap;

use wrangler_table::{Table, Value};

/// A functional dependency `lhs → rhs` over column indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fd {
    /// Determinant column indices (non-empty, sorted).
    pub lhs: Vec<usize>,
    /// Dependent column index.
    pub rhs: usize,
}

impl Fd {
    /// Construct, normalizing the LHS order.
    pub fn new(mut lhs: Vec<usize>, rhs: usize) -> Fd {
        lhs.sort_unstable();
        lhs.dedup();
        assert!(!lhs.is_empty(), "FD needs a determinant");
        assert!(!lhs.contains(&rhs), "trivial FD");
        Fd { lhs, rhs }
    }
}

/// A pattern cell: a required constant or a wildcard.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// Any value matches.
    Any,
    /// Exactly this value matches.
    Const(Value),
}

impl Pattern {
    fn matches(&self, v: &Value) -> bool {
        match self {
            Pattern::Any => true,
            Pattern::Const(c) => v == c,
        }
    }
}

/// A conditional functional dependency: an embedded FD plus one tableau row.
#[derive(Debug, Clone, PartialEq)]
pub struct Cfd {
    /// The embedded FD.
    pub fd: Fd,
    /// One pattern per LHS column (aligned with `fd.lhs`).
    pub lhs_patterns: Vec<Pattern>,
    /// Pattern for the RHS: `Any` means "must agree within the group",
    /// `Const(c)` means "must equal c".
    pub rhs_pattern: Pattern,
}

impl Cfd {
    /// A plain (unconditional) FD as a CFD.
    pub fn plain(fd: Fd) -> Cfd {
        let n = fd.lhs.len();
        Cfd {
            fd,
            lhs_patterns: vec![Pattern::Any; n],
            rhs_pattern: Pattern::Any,
        }
    }

    /// True if row `i` of `table` matches the LHS patterns (and has no null
    /// LHS cells — nulls neither match nor violate, per the usual semantics).
    fn row_in_scope(&self, table: &Table, i: usize) -> bool {
        for (&c, p) in self.fd.lhs.iter().zip(&self.lhs_patterns) {
            // A rule referencing a column the table lacks is simply out of
            // scope for every row — CFDs may outlive schema changes.
            let Ok(v) = table.get(i, c) else { return false };
            if v.is_null() || !p.matches(v) {
                return false;
            }
        }
        true
    }
}

/// One detected violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Row indices of the violating cluster (rows agreeing on the LHS whose
    /// RHS values conflict, or rows whose RHS differs from a required
    /// constant).
    pub rows: Vec<usize>,
    /// The RHS column.
    pub column: usize,
    /// The conflicting RHS values present.
    pub values: Vec<Value>,
}

/// Detect all violations of `cfd` in `table`.
///
/// For a variable CFD (RHS = `Any`), each LHS-group with ≥ 2 distinct
/// non-null RHS values yields one [`Violation`]. For a constant CFD, each
/// in-scope row whose RHS is non-null and ≠ the constant yields a singleton
/// violation.
pub fn violations(table: &Table, cfd: &Cfd) -> Vec<Violation> {
    let mut out = Vec::new();
    match &cfd.rhs_pattern {
        Pattern::Const(c) => {
            for i in 0..table.num_rows() {
                if !cfd.row_in_scope(table, i) {
                    continue;
                }
                let Ok(v) = table.get(i, cfd.fd.rhs) else {
                    continue;
                };
                if !v.is_null() && v != c {
                    out.push(Violation {
                        rows: vec![i],
                        column: cfd.fd.rhs,
                        values: vec![v.clone()],
                    });
                }
            }
        }
        Pattern::Any => {
            // BTreeMap keeps groups in key order, so iteration below is
            // deterministic without an explicit sort.
            let mut groups: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
            for i in 0..table.num_rows() {
                if !cfd.row_in_scope(table, i) {
                    continue;
                }
                let key: Option<Vec<Value>> = cfd
                    .fd
                    .lhs
                    .iter()
                    .map(|&c| table.get(i, c).ok().cloned())
                    .collect();
                let Some(key) = key else { continue };
                groups.entry(key).or_default().push(i);
            }
            for (_, rows) in groups {
                let mut distinct: Vec<Value> = Vec::new();
                for &i in &rows {
                    let Ok(v) = table.get(i, cfd.fd.rhs) else {
                        continue;
                    };
                    if !v.is_null() && !distinct.contains(v) {
                        distinct.push(v.clone());
                    }
                }
                if distinct.len() > 1 {
                    out.push(Violation {
                        rows,
                        column: cfd.fd.rhs,
                        values: distinct,
                    });
                }
            }
        }
    }
    out
}

/// Fraction of rows involved in at least one violation of any given CFD
/// (0 when there are no rules or no rows).
pub fn violation_rate(table: &Table, cfds: &[Cfd]) -> f64 {
    if table.num_rows() == 0 || cfds.is_empty() {
        return 0.0;
    }
    let mut bad = vec![false; table.num_rows()];
    for cfd in cfds {
        for v in violations(table, cfd) {
            for &r in &v.rows {
                bad[r] = true;
            }
        }
    }
    bad.iter().filter(|&&b| b).count() as f64 / table.num_rows() as f64
}

/// Configuration for approximate FD/CFD mining.
#[derive(Debug, Clone, Copy)]
pub struct MineConfig {
    /// Minimum rows an LHS group (or pattern) must cover.
    pub min_support: usize,
    /// Minimum fraction of rows per group whose RHS equals the group's
    /// majority RHS (1.0 mines exact FDs).
    pub min_confidence: f64,
    /// Maximum LHS size (1 or 2).
    pub max_lhs: usize,
}

impl Default for MineConfig {
    fn default() -> Self {
        MineConfig {
            min_support: 3,
            min_confidence: 0.95,
            max_lhs: 2,
        }
    }
}

/// Mine approximate FDs with LHS size ≤ `max_lhs`.
///
/// A candidate `X → A` qualifies if, over the groups of rows agreeing on
/// non-null `X`, the weighted mean of (majority RHS frequency within group)
/// is ≥ `min_confidence`, the candidate covers ≥ `min_support` rows, and the
/// LHS is not a key (key-like LHS make every FD vacuously true).
pub fn mine_fds(table: &Table, cfg: &MineConfig) -> Vec<Fd> {
    let n = table.num_columns();
    let mut out = Vec::new();
    let mut lhs_sets: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    if cfg.max_lhs >= 2 {
        for i in 0..n {
            for j in (i + 1)..n {
                lhs_sets.push(vec![i, j]);
            }
        }
    }
    for lhs in lhs_sets {
        for rhs in 0..n {
            if lhs.contains(&rhs) {
                continue;
            }
            if let Some((support, confidence, groups)) = evaluate_fd(table, &lhs, rhs) {
                // Skip key-like LHS: every group a singleton proves nothing.
                if groups > 0 && support / groups == 1 {
                    continue;
                }
                if support >= cfg.min_support && confidence >= cfg.min_confidence {
                    out.push(Fd::new(lhs.clone(), rhs));
                }
            }
        }
    }
    // Prefer smaller LHS: drop 2-column FDs whose projection to either single
    // column already holds.
    let singles: Vec<Fd> = out.iter().filter(|f| f.lhs.len() == 1).cloned().collect();
    out.retain(|f| {
        f.lhs.len() == 1
            || !singles
                .iter()
                .any(|s| s.rhs == f.rhs && f.lhs.contains(&s.lhs[0]))
    });
    out
}

/// Returns (rows covered, confidence, group count) for candidate `lhs → rhs`.
fn evaluate_fd(table: &Table, lhs: &[usize], rhs: usize) -> Option<(usize, f64, usize)> {
    let mut groups: BTreeMap<Vec<&Value>, BTreeMap<&Value, usize>> = BTreeMap::new();
    for i in 0..table.num_rows() {
        let mut key = Vec::with_capacity(lhs.len());
        let mut null = false;
        for &c in lhs {
            let Ok(v) = table.get(i, c) else { return None };
            if v.is_null() {
                null = true;
                break;
            }
            key.push(v);
        }
        if null {
            continue;
        }
        let Ok(v) = table.get(i, rhs) else { return None };
        if v.is_null() {
            continue;
        }
        *groups.entry(key).or_default().entry(v).or_insert(0) += 1;
    }
    if groups.is_empty() {
        return None;
    }
    let mut covered = 0usize;
    let mut majority = 0usize;
    for counts in groups.values() {
        let total: usize = counts.values().sum();
        let max = counts.values().copied().max().unwrap_or(0);
        covered += total;
        majority += max;
    }
    Some((covered, majority as f64 / covered as f64, groups.len()))
}

/// Mine constant CFDs `(X = x) → (A = a)`: frequent single-column constants
/// that (almost) determine a constant RHS.
pub fn mine_constant_cfds(table: &Table, cfg: &MineConfig) -> Vec<Cfd> {
    let n = table.num_columns();
    let mut out = Vec::new();
    for lhs in 0..n {
        for rhs in 0..n {
            if lhs == rhs {
                continue;
            }
            // Group rows by LHS value; look for dominant RHS constants.
            // Key-ordered map iteration keeps the emitted rule order (and
            // max-tie resolution below) deterministic.
            let mut groups: BTreeMap<&Value, BTreeMap<&Value, usize>> = BTreeMap::new();
            for i in 0..table.num_rows() {
                let (Ok(l), Ok(r)) = (table.get(i, lhs), table.get(i, rhs)) else {
                    continue;
                };
                if l.is_null() || r.is_null() {
                    continue;
                }
                *groups.entry(l).or_default().entry(r).or_insert(0) += 1;
            }
            for (&lval, counts) in &groups {
                let total: usize = counts.values().sum();
                if total < cfg.min_support {
                    continue;
                }
                if let Some((rval, cnt)) = counts.iter().max_by_key(|(_, c)| **c) {
                    if *cnt as f64 / total as f64 >= cfg.min_confidence {
                        // Only emit if the rule is non-trivial: RHS not constant
                        // over the whole column anyway is checked by caller use.
                        out.push(Cfd {
                            fd: Fd::new(vec![lhs], rhs),
                            lhs_patterns: vec![Pattern::Const((*lval).clone())],
                            rhs_pattern: Pattern::Const((**rval).clone()),
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// zip → city with one violation: row 3 says 90210 → "SF".
    fn addresses() -> Table {
        Table::literal(
            &["name", "zip", "city"],
            vec![
                vec!["a".into(), "90210".into(), "LA".into()],
                vec!["b".into(), "90210".into(), "LA".into()],
                vec!["c".into(), "94103".into(), "SF".into()],
                vec!["d".into(), "90210".into(), "SF".into()],
                vec!["e".into(), "94103".into(), "SF".into()],
                vec!["f".into(), Value::Null, "NY".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn variable_cfd_violations() {
        let t = addresses();
        let cfd = Cfd::plain(Fd::new(vec![1], 2)); // zip → city
        let vs = violations(&t, &cfd);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rows, vec![0, 1, 3]);
        assert_eq!(vs[0].values.len(), 2);
        // Null LHS rows are out of scope.
        assert!(!vs.iter().any(|v| v.rows.contains(&5)));
    }

    #[test]
    fn constant_cfd_violations() {
        let t = addresses();
        let cfd = Cfd {
            fd: Fd::new(vec![1], 2),
            lhs_patterns: vec![Pattern::Const("90210".into())],
            rhs_pattern: Pattern::Const("LA".into()),
        };
        let vs = violations(&t, &cfd);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rows, vec![3]);
        assert_eq!(vs[0].values, vec![Value::Str("SF".into())]);
    }

    #[test]
    fn violation_rate_counts_involved_rows() {
        let t = addresses();
        let cfd = Cfd::plain(Fd::new(vec![1], 2));
        let rate = violation_rate(&t, &[cfd]);
        assert!((rate - 3.0 / 6.0).abs() < 1e-12);
        assert_eq!(violation_rate(&t, &[]), 0.0);
    }

    #[test]
    fn mine_recovers_fd_with_noise_tolerance() {
        let t = addresses();
        // With 95% confidence the noisy zip→city does NOT qualify (4/5 clean).
        let strict = mine_fds(
            &t,
            &MineConfig {
                min_support: 3,
                min_confidence: 0.95,
                max_lhs: 1,
            },
        );
        assert!(!strict.contains(&Fd::new(vec![1], 2)));
        // With 75% it does.
        let loose = mine_fds(
            &t,
            &MineConfig {
                min_support: 3,
                min_confidence: 0.75,
                max_lhs: 1,
            },
        );
        assert!(loose.contains(&Fd::new(vec![1], 2)));
    }

    #[test]
    fn mine_skips_key_like_lhs() {
        let t = addresses();
        let fds = mine_fds(
            &t,
            &MineConfig {
                min_support: 1,
                min_confidence: 1.0,
                max_lhs: 1,
            },
        );
        // name is a key; name→zip etc. must not be reported.
        assert!(!fds.iter().any(|f| f.lhs == vec![0]));
    }

    #[test]
    fn mine_prefers_minimal_lhs() {
        let t = addresses();
        let fds = mine_fds(
            &t,
            &MineConfig {
                min_support: 2,
                min_confidence: 0.75,
                max_lhs: 2,
            },
        );
        // zip→city holds at 75%; {zip,name}→city must be suppressed (name,zip is key-like anyway).
        assert!(fds
            .iter()
            .all(|f| !(f.lhs.len() == 2 && f.lhs.contains(&1) && f.rhs == 2)));
    }

    #[test]
    fn mine_constant_cfds_finds_dominant_pattern() {
        let t = addresses();
        let cfds = mine_constant_cfds(
            &t,
            &MineConfig {
                min_support: 2,
                min_confidence: 1.0,
                max_lhs: 1,
            },
        );
        // 94103 → SF holds exactly with support 2.
        assert!(cfds.iter().any(|c| {
            c.lhs_patterns == vec![Pattern::Const("94103".into())]
                && c.rhs_pattern == Pattern::Const("SF".into())
        }));
        // 90210 → LA only at 2/3 confidence: excluded at 1.0.
        assert!(!cfds
            .iter()
            .any(|c| c.lhs_patterns == vec![Pattern::Const("90210".into())] && c.fd.rhs == 2));
    }

    #[test]
    fn fd_constructor_normalizes() {
        let fd = Fd::new(vec![3, 1, 3], 0);
        assert_eq!(fd.lhs, vec![1, 3]);
    }

    #[test]
    #[should_panic]
    fn trivial_fd_panics() {
        Fd::new(vec![1], 1);
    }
}
