//! `wrangler-quality` — quality analyses for the Working Data store.
//!
//! Figure 1's Working Data contains "the results of all Quality analyses that
//! have been carried out, which may apply to individual data sources, the
//! results of different extractions and components of relevance to
//! integration". This crate provides those analyses:
//!
//! * [`profile`] — per-column and per-table profiling (completeness,
//!   distinctness, type consistency) and synthesis into the
//!   context-comparable [`wrangler_context::QualityVector`];
//! * [`fd`] — functional dependencies and conditional functional
//!   dependencies: representation, violation detection, and approximate
//!   mining (the consistency evidence; quality analyses like these are the
//!   intractable-in-general cleaning machinery §4.3 points at via \[7\]);
//! * [`repair`] — the cost-based heuristic repair of FD violations by value
//!   modification, after Bohannon et al. \[7\];
//! * [`outlier`] — robust (MAD-based) numeric outlier and rare-category
//!   detection, an accuracy proxy when no ground truth is available.

pub mod fd;
pub mod outlier;
pub mod profile;
pub mod repair;

pub use fd::{Cfd, Fd, Violation};
pub use profile::{ColumnProfile, TableProfile};
