//! Robust outlier detection.
//!
//! Veracity (§1) shows up as wrong geo-locations, fantasy prices and
//! misspelled categories. Without ground truth, robust statistics are the
//! available accuracy proxy: numeric outliers via the median absolute
//! deviation (MAD), categorical anomalies via rare-value frequency.

use wrangler_table::Value;

/// A flagged cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Outlier {
    /// Row index in the inspected column.
    pub row: usize,
    /// The offending value.
    pub value: Value,
    /// Robust z-score (numeric) or inverse frequency score (categorical).
    pub score: f64,
}

/// Median of a slice (mean of middle two for even length). Empty → None.
fn median(xs: &mut [f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    Some(if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    })
}

/// MAD-based numeric outliers: values whose robust z-score
/// `0.6745·|x − median| / MAD` exceeds `threshold` (3.5 is the standard
/// Iglewicz–Hoaglin cut). Non-numeric and null cells are ignored. When MAD is
/// zero (over half the values identical) any differing value is flagged with
/// an infinite score.
pub fn numeric_outliers(values: &[Value], threshold: f64) -> Vec<Outlier> {
    let numeric: Vec<(usize, f64)> = values
        .iter()
        .enumerate()
        .filter_map(|(i, v)| v.as_f64().map(|x| (i, x)))
        .filter(|(_, x)| x.is_finite())
        .collect();
    if numeric.len() < 3 {
        return Vec::new();
    }
    let mut xs: Vec<f64> = numeric.iter().map(|(_, x)| *x).collect();
    let Some(med) = median(&mut xs) else {
        return Vec::new();
    };
    let mut devs: Vec<f64> = numeric.iter().map(|(_, x)| (x - med).abs()).collect();
    let Some(mad) = median(&mut devs) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (i, x) in &numeric {
        let score = if mad > 0.0 {
            0.6745 * (x - med).abs() / mad
        } else if (x - med).abs() > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        if score > threshold {
            out.push(Outlier {
                row: *i,
                value: values[*i].clone(),
                score,
            });
        }
    }
    out
}

/// Rare-category detection: non-null values occurring in at most
/// `max_fraction` of non-null cells, provided the column is dominated by a
/// few frequent categories (distinctness below `max_distinctness`, otherwise
/// the column is id-like and rarity is meaningless).
pub fn rare_categories(values: &[Value], max_fraction: f64, max_distinctness: f64) -> Vec<Outlier> {
    let non_null: Vec<(usize, &Value)> = values
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_null())
        .collect();
    if non_null.is_empty() {
        return Vec::new();
    }
    let mut counts: Vec<(&Value, usize)> = Vec::new();
    for (_, v) in &non_null {
        match counts.iter_mut().find(|(u, _)| u == v) {
            Some((_, n)) => *n += 1,
            None => counts.push((v, 1)),
        }
    }
    let distinctness = counts.len() as f64 / non_null.len() as f64;
    if distinctness > max_distinctness {
        return Vec::new();
    }
    let total = non_null.len() as f64;
    let mut out = Vec::new();
    for (i, v) in &non_null {
        let freq = counts
            .iter()
            .find(|(u, _)| u == v)
            .map(|(_, n)| *n)
            .unwrap_or(0) as f64
            / total;
        if freq <= max_fraction {
            out.push(Outlier {
                row: *i,
                value: (*v).clone(),
                score: 1.0 / freq,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(xs: &[f64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Float(x)).collect()
    }

    #[test]
    fn flags_gross_numeric_outlier() {
        let v = vals(&[10.0, 11.0, 9.5, 10.5, 10.2, 500.0]);
        let out = numeric_outliers(&v, 3.5);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].row, 5);
        assert!(out[0].score > 3.5);
    }

    #[test]
    fn clean_data_unflagged() {
        let v = vals(&[10.0, 10.5, 9.8, 10.1, 10.3]);
        assert!(numeric_outliers(&v, 3.5).is_empty());
    }

    #[test]
    fn zero_mad_flags_any_deviation() {
        let v = vals(&[5.0, 5.0, 5.0, 5.0, 7.0]);
        let out = numeric_outliers(&v, 3.5);
        assert_eq!(out.len(), 1);
        assert!(out[0].score.is_infinite());
    }

    #[test]
    fn too_few_points_is_silent() {
        assert!(numeric_outliers(&vals(&[1.0, 100.0]), 3.5).is_empty());
    }

    #[test]
    fn ignores_non_numeric_and_null() {
        let mut v = vals(&[10.0, 10.0, 10.0, 10.0]);
        v.push(Value::Str("oops".into()));
        v.push(Value::Null);
        v.push(Value::Float(99.0));
        let out = numeric_outliers(&v, 3.5);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].row, 6);
    }

    #[test]
    fn rare_category_detection() {
        let mut v: Vec<Value> = Vec::new();
        for _ in 0..20 {
            v.push("electronics".into());
        }
        for _ in 0..15 {
            v.push("books".into());
        }
        v.push("elektronics".into()); // the misspelling
        let out = rare_categories(&v, 0.05, 0.5);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, Value::Str("elektronics".into()));
    }

    #[test]
    fn id_like_columns_not_flagged() {
        let v: Vec<Value> = (0..30).map(|i| Value::Str(format!("id{i}"))).collect();
        assert!(rare_categories(&v, 0.05, 0.5).is_empty());
    }

    #[test]
    fn empty_input() {
        assert!(rare_categories(&[], 0.1, 0.5).is_empty());
        assert!(numeric_outliers(&[], 3.5).is_empty());
    }
}
