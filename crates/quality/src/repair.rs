//! Cost-based repair of CFD violations by value modification.
//!
//! After Bohannon et al. \[7\] ("A cost-based model and effective heuristic for
//! repairing constraints by value modification"): finding a minimum-cost
//! repair is NP-hard, so we use their greedy strategy — resolve each
//! violating cluster by moving the minority to the *least-cost* consensus,
//! where each cell carries a modification cost (default 1.0; callers lower
//! the cost of cells they distrust, e.g. from low-trust sources, and raise it
//! for user-confirmed cells, wiring feedback into cleaning).

use std::collections::BTreeMap;

use wrangler_table::{Table, Value};

use crate::fd::{violations, Cfd, Pattern};

/// Per-cell modification costs; cells not present cost `default_cost`.
#[derive(Debug, Clone)]
pub struct CostModel {
    default_cost: f64,
    overrides: BTreeMap<(usize, usize), f64>,
}

impl CostModel {
    /// Uniform costs.
    pub fn uniform(default_cost: f64) -> CostModel {
        CostModel {
            default_cost,
            overrides: BTreeMap::new(),
        }
    }

    /// Set the cost of modifying cell (`row`, `col`). `f64::INFINITY` pins a
    /// cell (e.g. confirmed correct by user feedback).
    pub fn set(&mut self, row: usize, col: usize, cost: f64) {
        self.overrides.insert((row, col), cost);
    }

    /// Cost of modifying cell (`row`, `col`).
    pub fn cost(&self, row: usize, col: usize) -> f64 {
        self.overrides
            .get(&(row, col))
            .copied()
            .unwrap_or(self.default_cost)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::uniform(1.0)
    }
}

/// One applied cell repair.
#[derive(Debug, Clone, PartialEq)]
pub struct Repair {
    /// Row of the modified cell.
    pub row: usize,
    /// Column of the modified cell.
    pub column: usize,
    /// Value before repair.
    pub old: Value,
    /// Value after repair.
    pub new: Value,
    /// Cost charged.
    pub cost: f64,
}

/// Result of a repair run.
#[derive(Debug, Clone, Default)]
pub struct RepairReport {
    /// Applied repairs, in application order.
    pub repairs: Vec<Repair>,
    /// Total cost.
    pub total_cost: f64,
    /// Number of fixpoint iterations used.
    pub iterations: usize,
    /// Whether a violation-free fixpoint was reached.
    pub clean: bool,
}

/// Greedily repair `table` against `cfds`, iterating to a fixpoint (or
/// `max_iterations`). Returns the repaired table and a report.
///
/// For a variable CFD cluster, the target value is the one minimizing the
/// total cost of changing the disagreeing cells (i.e. the cost-weighted
/// majority). For a constant CFD, violating cells are set to the constant.
/// Cells with infinite cost are never modified; a cluster whose resolution
/// would require modifying only infinite-cost cells is left violating.
pub fn repair(
    table: &Table,
    cfds: &[Cfd],
    costs: &CostModel,
    max_iterations: usize,
) -> (Table, RepairReport) {
    let mut t = table.clone();
    let mut report = RepairReport::default();
    for iter in 0..max_iterations {
        report.iterations = iter + 1;
        let mut changed = false;
        for cfd in cfds {
            for v in violations(&t, cfd) {
                match &cfd.rhs_pattern {
                    Pattern::Const(c) => {
                        for &row in &v.rows {
                            let cost = costs.cost(row, v.column);
                            if !cost.is_finite() {
                                continue;
                            }
                            // Violations come from this very table, so the
                            // cell exists; a failed get/set just skips it.
                            let Ok(old) = t.get(row, v.column).cloned() else {
                                continue;
                            };
                            if t.set(row, v.column, c.clone()).is_err() {
                                continue;
                            }
                            report.repairs.push(Repair {
                                row,
                                column: v.column,
                                old,
                                new: c.clone(),
                                cost,
                            });
                            report.total_cost += cost;
                            changed = true;
                        }
                    }
                    Pattern::Any => {
                        // Pick the consensus value minimizing repair cost.
                        let mut best: Option<(Value, f64)> = None;
                        for cand in &v.values {
                            let mut cost = 0.0;
                            let mut feasible = true;
                            for &row in &v.rows {
                                let Ok(cur) = t.get(row, v.column) else {
                                    continue;
                                };
                                if cur.is_null() || cur == cand {
                                    continue;
                                }
                                let c = costs.cost(row, v.column);
                                if c.is_infinite() {
                                    feasible = false;
                                    break;
                                }
                                cost += c;
                            }
                            if feasible && best.as_ref().is_none_or(|(_, bc)| cost < *bc) {
                                best = Some((cand.clone(), cost));
                            }
                        }
                        if let Some((target, _)) = best {
                            for &row in &v.rows {
                                let Ok(cur) = t.get(row, v.column).cloned() else {
                                    continue;
                                };
                                if cur.is_null() || cur == target {
                                    continue;
                                }
                                let cost = costs.cost(row, v.column);
                                if t.set(row, v.column, target.clone()).is_err() {
                                    continue;
                                }
                                report.repairs.push(Repair {
                                    row,
                                    column: v.column,
                                    old: cur,
                                    new: target.clone(),
                                    cost,
                                });
                                report.total_cost += cost;
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    report.clean = cfds.iter().all(|c| violations(&t, c).is_empty());
    (t, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::Fd;

    fn addresses() -> Table {
        Table::literal(
            &["zip", "city"],
            vec![
                vec!["90210".into(), "LA".into()],
                vec!["90210".into(), "LA".into()],
                vec!["90210".into(), "SF".into()],
                vec!["94103".into(), "SF".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn majority_repair_fixes_minority() {
        let cfd = Cfd::plain(Fd::new(vec![0], 1));
        let (fixed, report) = repair(&addresses(), &[cfd.clone()], &CostModel::default(), 5);
        assert!(report.clean);
        assert_eq!(fixed.get_named(2, "city").unwrap().as_str(), Some("LA"));
        assert_eq!(report.repairs.len(), 1);
        assert_eq!(report.total_cost, 1.0);
        assert!(violations(&fixed, &cfd).is_empty());
    }

    #[test]
    fn cost_model_flips_consensus() {
        // Make the two LA cells cheap to change and the SF cell pinned:
        // consensus flips to SF.
        let cfd = Cfd::plain(Fd::new(vec![0], 1));
        let mut costs = CostModel::uniform(1.0);
        costs.set(2, 1, f64::INFINITY); // SF confirmed by user
        let (fixed, report) = repair(&addresses(), &[cfd], &costs, 5);
        assert!(report.clean);
        assert_eq!(fixed.get_named(0, "city").unwrap().as_str(), Some("SF"));
        assert_eq!(fixed.get_named(1, "city").unwrap().as_str(), Some("SF"));
        assert_eq!(report.repairs.len(), 2);
    }

    #[test]
    fn all_pinned_cluster_left_violating() {
        let cfd = Cfd::plain(Fd::new(vec![0], 1));
        let mut costs = CostModel::uniform(f64::INFINITY);
        costs.set(3, 1, 1.0); // only the non-conflicting row is modifiable
        let (fixed, report) = repair(&addresses(), &[cfd.clone()], &costs, 5);
        assert!(!report.clean);
        assert_eq!(report.repairs.len(), 0);
        assert_eq!(violations(&fixed, &cfd).len(), 1);
    }

    #[test]
    fn constant_cfd_repair_sets_constant() {
        let cfd = Cfd {
            fd: Fd::new(vec![0], 1),
            lhs_patterns: vec![Pattern::Const("94103".into())],
            rhs_pattern: Pattern::Const("San Francisco".into()),
        };
        let (fixed, report) = repair(&addresses(), &[cfd], &CostModel::default(), 5);
        assert!(report.clean);
        assert_eq!(
            fixed.get_named(3, "city").unwrap().as_str(),
            Some("San Francisco")
        );
    }

    #[test]
    fn clean_table_untouched() {
        let t = Table::literal(
            &["zip", "city"],
            vec![vec!["1".into(), "A".into()], vec!["2".into(), "B".into()]],
        )
        .unwrap();
        let cfd = Cfd::plain(Fd::new(vec![0], 1));
        let (fixed, report) = repair(&t, &[cfd], &CostModel::default(), 5);
        assert!(report.clean);
        assert!(report.repairs.is_empty());
        assert_eq!(fixed, t);
    }

    #[test]
    fn interacting_rules_reach_fixpoint() {
        // zip → city and city → state: repairing city can create state work.
        let t = Table::literal(
            &["zip", "city", "state"],
            vec![
                vec!["1".into(), "LA".into(), "CA".into()],
                vec!["1".into(), "SD".into(), "CA".into()],
                vec!["2".into(), "LA".into(), "NV".into()],
            ],
        )
        .unwrap();
        let rules = vec![
            Cfd::plain(Fd::new(vec![0], 1)),
            Cfd::plain(Fd::new(vec![1], 2)),
        ];
        let (fixed, report) = repair(&t, &rules, &CostModel::default(), 10);
        assert!(report.clean, "repairs: {:?}", report.repairs);
        // All zip=1 rows agree on city; all LA rows agree on state.
        assert_eq!(
            fixed.get_named(0, "city").unwrap(),
            fixed.get_named(1, "city").unwrap()
        );
    }
}
