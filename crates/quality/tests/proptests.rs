//! Property tests for quality analyses: repair convergence, violation-rate
//! bounds, outlier soundness.

use proptest::prelude::*;
use wrangler_quality::fd::{violation_rate, violations, Cfd, Fd};
use wrangler_quality::outlier::numeric_outliers;
use wrangler_quality::repair::{repair, CostModel};
use wrangler_table::{Table, Value};

fn arb_fd_table(rows: usize) -> impl Strategy<Value = Table> {
    // Two columns drawn from tiny domains so FDs and violations both occur.
    prop::collection::vec((0u8..4, 0u8..4), 1..=rows).prop_map(|rs| {
        let rows = rs
            .into_iter()
            .map(|(a, b)| vec![Value::from(format!("k{a}")), Value::from(format!("v{b}"))])
            .collect();
        Table::literal(&["lhs", "rhs"], rows).expect("aligned")
    })
}

proptest! {
    #[test]
    fn violation_rate_in_unit_interval(t in arb_fd_table(30)) {
        let cfd = Cfd::plain(Fd::new(vec![0], 1));
        let r = violation_rate(&t, std::slice::from_ref(&cfd));
        prop_assert!((0.0..=1.0).contains(&r));
        // Rate is zero iff there are no violations.
        prop_assert_eq!(r == 0.0, violations(&t, &cfd).is_empty());
    }

    #[test]
    fn repair_reaches_clean_fixpoint_on_single_fd(t in arb_fd_table(30)) {
        let cfd = Cfd::plain(Fd::new(vec![0], 1));
        let (fixed, report) = repair(&t, std::slice::from_ref(&cfd), &CostModel::default(), 10);
        prop_assert!(report.clean, "repairs: {:?}", report.repairs);
        prop_assert!(violations(&fixed, &cfd).is_empty());
        // Repair only ever touches the RHS column of the rule.
        for rep in &report.repairs {
            prop_assert_eq!(rep.column, 1);
        }
        // Shape is preserved.
        prop_assert_eq!(fixed.num_rows(), t.num_rows());
        prop_assert_eq!(fixed.schema().names(), t.schema().names());
        // LHS column untouched.
        prop_assert_eq!(fixed.column(0).unwrap(), t.column(0).unwrap());
    }

    #[test]
    fn repair_cost_counts_changes(t in arb_fd_table(25)) {
        let cfd = Cfd::plain(Fd::new(vec![0], 1));
        let (fixed, report) = repair(&t, std::slice::from_ref(&cfd), &CostModel::uniform(2.0), 10);
        let changed = (0..t.num_rows())
            .filter(|&r| t.get(r, 1).unwrap() != fixed.get(r, 1).unwrap())
            .count();
        prop_assert!((report.total_cost - 2.0 * changed as f64).abs() < 1e-9);
        prop_assert_eq!(report.repairs.len(), changed);
    }

    #[test]
    fn outliers_reference_real_rows(xs in prop::collection::vec(-1e6f64..1e6, 0..60)) {
        let values: Vec<Value> = xs.iter().map(|&x| Value::Float(x)).collect();
        for o in numeric_outliers(&values, 3.5) {
            prop_assert!(o.row < values.len());
            prop_assert_eq!(&o.value, &values[o.row]);
            prop_assert!(o.score > 3.5);
        }
    }

    #[test]
    fn no_outliers_in_constant_data(x in -100.0f64..100.0, n in 3usize..30) {
        let values: Vec<Value> = vec![Value::Float(x); n];
        prop_assert!(numeric_outliers(&values, 3.5).is_empty());
    }
}
