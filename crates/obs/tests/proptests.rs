//! Property tests for the telemetry layer: the deterministic half of a
//! [`MetricsReport`] (counts + gauges) is a pure function of the recorded
//! operation sequence — byte-identical across runs, independent of wall
//! clock, spans, and recording order interleave — and `Off` mode records
//! nothing.

use proptest::prelude::*;
use wrangler_obs::{CounterSet, MetricsReport, ObsMode, Telemetry};

/// One abstract record operation, drivable against any collector.
#[derive(Debug, Clone)]
enum Op {
    Count(u8, u64),
    Gauge(u8, i32),
    Begin(u8),
    End,
    Absorb(u8, u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12, 0u64..1000).prop_map(|(k, n)| Op::Count(k, n)),
        (0u8..6, -500i32..500).prop_map(|(k, v)| Op::Gauge(k, v)),
        (0u8..5).prop_map(Op::Begin),
        Just(Op::End),
        (0u8..4, 1u64..50).prop_map(|(k, n)| Op::Absorb(k, n)),
    ]
}

fn drive(t: &mut Telemetry, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Count(k, n) => t.count(&format!("c{k}"), n),
            Op::Gauge(k, v) => t.gauge(&format!("g{k}"), f64::from(v) / 7.0),
            Op::Begin(k) => t.begin(&format!("s{k}")),
            Op::End => t.end(),
            Op::Absorb(k, n) => {
                let mut set = CounterSet::new();
                set.add(&format!("e{k}"), n);
                t.absorb("sub", &set);
            }
        }
    }
}

proptest! {
    /// Two collectors fed the same op sequence render byte-identical counts
    /// and gauges, and identical JSON count/gauge sections — regardless of
    /// how much wall-clock the interleaved spans actually consumed.
    #[test]
    fn counts_are_byte_identical_across_runs(
        ops in prop::collection::vec(arb_op(), 0..60),
    ) {
        let mut a = Telemetry::new(ObsMode::On);
        let mut b = Telemetry::new(ObsMode::On);
        drive(&mut a, &ops);
        drive(&mut b, &ops);
        let (ra, rb) = (a.report(), b.report());
        prop_assert_eq!(ra.render_counts(), rb.render_counts());
        prop_assert!(ra.counts_identical(&rb));
        // The timing-free projection of the JSON agrees too.
        let cut = |r: &MetricsReport| {
            let j = r.to_json();
            j[..j.find("\"timings\"").unwrap()].to_string()
        };
        prop_assert_eq!(cut(&ra), cut(&rb));
    }

    /// Off mode is observationally silent for every op sequence.
    #[test]
    fn off_mode_records_nothing(ops in prop::collection::vec(arb_op(), 0..60)) {
        let mut t = Telemetry::new(ObsMode::Off);
        drive(&mut t, &ops);
        let r = t.report();
        prop_assert!(r.counts.is_empty());
        prop_assert!(r.gauges.is_empty());
        prop_assert!(r.timings.is_empty());
        prop_assert_eq!(r.render_counts(), "counts:\ngauges:\n");
    }

    /// Counter totals are order-independent: shuffling the count ops (keeping
    /// non-count ops out) changes nothing in the deterministic half.
    #[test]
    fn counter_totals_are_order_independent(
        pairs in prop::collection::vec((0u8..8, 1u64..100), 1..40),
        rot in 0usize..40,
    ) {
        let mut a = Telemetry::new(ObsMode::On);
        for &(k, n) in &pairs {
            a.count(&format!("c{k}"), n);
        }
        let mut rotated = pairs.clone();
        rotated.rotate_left(rot % pairs.len());
        let mut b = Telemetry::new(ObsMode::On);
        for &(k, n) in &rotated {
            b.count(&format!("c{k}"), n);
        }
        prop_assert_eq!(a.report().render_counts(), b.report().render_counts());
    }

    /// Stage shares are fractions of the root and never exceed full coverage
    /// when children are genuinely nested (each child timed within the root).
    #[test]
    fn stage_coverage_bounded_for_nested_spans(names in prop::collection::vec(0u8..6, 1..10)) {
        let mut t = Telemetry::new(ObsMode::On);
        t.begin("root");
        for k in &names {
            t.time(&format!("s{k}"), || std::hint::black_box(0));
        }
        t.end();
        let r = t.report();
        let cov = r.stage_coverage("root");
        prop_assert!((0.0..=1.0 + 1e-9).contains(&cov), "coverage {cov}");
        for (path, share) in r.stage_shares("root") {
            prop_assert!(path.starts_with("root/"));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&share));
        }
    }
}
