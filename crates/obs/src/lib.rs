//! `wrangler-obs` — structured pipeline telemetry.
//!
//! The paper's pay-as-you-go thesis (§2.4) presupposes that the system can
//! say *where* effort and wall-clock go: "limit the processing to the
//! strictly necessary data" (Example 5, §4.3) is only actionable with
//! per-stage visibility. This crate is that measurement substrate:
//!
//! * [`Telemetry`] — a lightweight collector of **hierarchical spans**
//!   (stage → sub-stage, timed with the monotonic clock), **typed counters**
//!   (rows in/out, mappings generated, retries, breaker trips, …) and
//!   **gauges** (data-derived ratios);
//! * [`MetricsReport`] — the canonical frozen snapshot. Count and gauge
//!   fields are *segregated* from timing fields: counts are pure functions
//!   of the (seeded) data flow, so their rendering is byte-identical across
//!   runs, while timings are honest wall-clock and vary. Determinism checks
//!   diff [`MetricsReport::render_counts`]; humans read
//!   [`MetricsReport::render`]; machines read [`MetricsReport::to_json`];
//! * [`CounterSet`] — a detached bag of counters for components that cannot
//!   hold the session collector (e.g. the acquisition engine records retry
//!   and breaker events into one, and the session absorbs it per pass);
//! * [`ObsMode`] — `Off` turns every record operation into a cheap branch,
//!   the baseline against which experiment E13 measures instrumentation
//!   overhead (<5% wall on the standard workload).
//!
//! Span paths are `/`-joined (`wrangle/map/generate`); the nesting is
//! whatever the instrumented code's `begin`/`end` pairs make it. A pass that
//! aborts mid-span leaves the open spans unrecorded; [`Telemetry::start_pass`]
//! resets the stack so the next pass starts clean.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Whether the session records telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsMode {
    /// Record spans, counters and gauges (the default: E13 shows the
    /// overhead is well under 5% of wall).
    #[default]
    On,
    /// Every record operation is a no-op branch; the E13 baseline.
    Off,
}

/// Aggregated wall-clock of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timing {
    /// Total nanoseconds across all calls.
    pub nanos: u128,
    /// Number of `begin`/`end` pairs recorded at this path.
    pub calls: u64,
}

/// A detached, ordered bag of counters. Components that cannot borrow the
/// session's [`Telemetry`] (the acquisition engine runs behind `&mut self`
/// of another struct) record events here; the session absorbs the bag under
/// a prefix once the pass completes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    counts: BTreeMap<String, u64>,
}

impl CounterSet {
    /// An empty set.
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    /// Add `n` to `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        if n > 0 {
            *self.counts.entry(name.to_string()).or_insert(0) += n;
        }
    }

    /// Increment `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (0 if never recorded).
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Iterate `(name, value)` in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Drop all counters.
    pub fn clear(&mut self) {
        self.counts.clear();
    }
}

/// The canonical metrics snapshot of a session (or a single pass).
///
/// Counts and gauges are pure functions of the seeded data flow and render
/// byte-identically across runs ([`Self::render_counts`]); timings are
/// wall-clock and segregated so they can never leak into a determinism diff.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Monotone event counters, by name.
    pub counts: BTreeMap<String, u64>,
    /// Last-write-wins data-derived ratios, by name.
    pub gauges: BTreeMap<String, f64>,
    /// Aggregated span timings, by `/`-joined path.
    pub timings: BTreeMap<String, Timing>,
}

impl MetricsReport {
    /// The deterministic half: counters and gauges only, one per line, in
    /// lexicographic order. Two seeded runs must produce byte-identical
    /// output here (checked in CI via `e13_observability --counts`).
    pub fn render_counts(&self) -> String {
        let mut out = String::from("counts:\n");
        for (k, v) in &self.counts {
            let _ = writeln!(out, "  {k} = {v}");
        }
        out.push_str("gauges:\n");
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "  {k} = {v:.6}");
        }
        out
    }

    /// The human-facing full report: counts, gauges, then the span tree with
    /// wall-clock (indented by path depth, children under parents).
    pub fn render(&self) -> String {
        let mut out = self.render_counts();
        out.push_str("timings:\n");
        for (path, t) in &self.timings {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let _ = writeln!(
                out,
                "  {:indent$}{name}: {:.3} ms ({} calls)",
                "",
                t.nanos as f64 / 1e6,
                t.calls,
                indent = depth * 2
            );
        }
        out
    }

    /// Machine-readable JSON (`{"counts":{…},"gauges":{…},"timings":{…}}`),
    /// keys sorted. No external serializer: names are internal identifiers
    /// and get minimal string escaping.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => vec!['\\', '"'],
                    '\\' => vec!['\\', '\\'],
                    c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        let mut out = String::from("{\"counts\":{");
        for (i, (k, v)) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", esc(k));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v:.6}", esc(k));
        }
        out.push_str("},\"timings\":{");
        for (i, (k, t)) in self.timings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"nanos\":{},\"calls\":{}}}",
                esc(k),
                t.nanos,
                t.calls
            );
        }
        out.push_str("}}");
        out
    }

    /// True when the deterministic halves (counts + gauges) agree exactly.
    pub fn counts_identical(&self, other: &MetricsReport) -> bool {
        self.counts == other.counts && self.render_gauges_eq(other)
    }

    fn render_gauges_eq(&self, other: &MetricsReport) -> bool {
        // Compare at render precision: the determinism contract is on the
        // rendered bytes, not on bit-level f64 identity.
        self.gauges.len() == other.gauges.len()
            && self
                .gauges
                .iter()
                .zip(&other.gauges)
                .all(|((ka, va), (kb, vb))| ka == kb && format!("{va:.6}") == format!("{vb:.6}"))
    }

    /// Wall-clock share of each *direct* child span of `root`, as
    /// `(child path, fraction of root nanos)`, largest first (ties broken by
    /// path). The per-stage attribution table of E13 is this for
    /// `root = "wrangle"`.
    pub fn stage_shares(&self, root: &str) -> Vec<(String, f64)> {
        let total = match self.timings.get(root) {
            Some(t) if t.nanos > 0 => t.nanos as f64,
            _ => return Vec::new(),
        };
        let prefix = format!("{root}/");
        let mut shares: Vec<(String, f64)> = self
            .timings
            .iter()
            .filter(|(p, _)| {
                p.starts_with(&prefix) && !p[prefix.len()..].contains('/')
            })
            .map(|(p, t)| (p.clone(), t.nanos as f64 / total))
            .collect();
        shares.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        shares
    }

    /// Sum of [`Self::stage_shares`] fractions — the coverage of the
    /// attribution (E13 requires ≥ 0.95: the stage map accounts for the
    /// measured wall, it is not a sampling artifact).
    pub fn stage_coverage(&self, root: &str) -> f64 {
        self.stage_shares(root).iter().map(|(_, f)| f).sum()
    }
}

/// The session-side collector: a span stack over the monotonic clock plus
/// counter/gauge maps. All record operations are no-ops under
/// [`ObsMode::Off`].
#[derive(Debug, Clone)]
pub struct Telemetry {
    mode: ObsMode,
    counts: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    timings: BTreeMap<String, Timing>,
    stack: Vec<(String, Instant)>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(ObsMode::default())
    }
}

impl Telemetry {
    /// A collector in the given mode.
    pub fn new(mode: ObsMode) -> Telemetry {
        Telemetry {
            mode,
            counts: BTreeMap::new(),
            gauges: BTreeMap::new(),
            timings: BTreeMap::new(),
            stack: Vec::new(),
        }
    }

    /// The collector's mode.
    pub fn mode(&self) -> ObsMode {
        self.mode
    }

    /// Switch mode (takes effect for subsequent record operations).
    pub fn set_mode(&mut self, mode: ObsMode) {
        self.mode = mode;
    }

    /// True when recording.
    pub fn is_on(&self) -> bool {
        self.mode == ObsMode::On
    }

    /// Open a span named `name` under the currently open span (or at the
    /// root). Must be balanced by [`Self::end`].
    pub fn begin(&mut self, name: &str) {
        if !self.is_on() {
            return;
        }
        let path = match self.stack.last() {
            Some((parent, _)) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        self.stack.push((path, Instant::now()));
    }

    /// Close the innermost open span, folding its elapsed wall-clock into
    /// the aggregate for its path. A stray `end` with no open span is a
    /// no-op (an aborted pass may have cleared the stack).
    pub fn end(&mut self) {
        if !self.is_on() {
            return;
        }
        if let Some((path, started)) = self.stack.pop() {
            let t = self.timings.entry(path).or_default();
            t.nanos += started.elapsed().as_nanos();
            t.calls += 1;
        }
    }

    /// Time a closure as a child span.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        self.begin(name);
        let r = f();
        self.end();
        r
    }

    /// Add `n` to counter `name`.
    pub fn count(&mut self, name: &str, n: u64) {
        if self.is_on() && n > 0 {
            *self.counts.entry(name.to_string()).or_insert(0) += n;
        }
    }

    /// Increment counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.count(name, 1);
    }

    /// Set gauge `name` (last write wins). Non-finite values are recorded as
    /// 0 so the deterministic rendering never prints `NaN`.
    pub fn gauge(&mut self, name: &str, v: f64) {
        if self.is_on() {
            self.gauges
                .insert(name.to_string(), if v.is_finite() { v } else { 0.0 });
        }
    }

    /// Fold a detached [`CounterSet`] in under `prefix` (joined with `.`).
    pub fn absorb(&mut self, prefix: &str, set: &CounterSet) {
        if !self.is_on() {
            return;
        }
        for (name, v) in set.iter() {
            *self
                .counts
                .entry(format!("{prefix}.{name}"))
                .or_insert(0) += v;
        }
    }

    /// Record externally measured wall-clock (e.g. a worker thread's busy
    /// time) at `path` under the currently open span.
    pub fn record_nanos(&mut self, name: &str, nanos: u128, calls: u64) {
        if !self.is_on() {
            return;
        }
        let path = match self.stack.last() {
            Some((parent, _)) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        let t = self.timings.entry(path).or_default();
        t.nanos += nanos;
        t.calls += calls;
    }

    /// Begin a fresh pass: clear any spans left open by an aborted pass so
    /// nesting cannot corrupt across passes. Counters/gauges/timings persist
    /// (they aggregate over the session).
    pub fn start_pass(&mut self) {
        self.stack.clear();
    }

    /// Snapshot the current metrics.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            counts: self.counts.clone(),
            gauges: self.gauges.clone(),
            timings: self.timings.clone(),
        }
    }

    /// Drop all recorded data (mode is kept).
    pub fn reset(&mut self) {
        self.counts.clear();
        self.gauges.clear();
        self.timings.clear();
        self.stack.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_by_stack() {
        let mut t = Telemetry::default();
        t.begin("wrangle");
        t.begin("select");
        t.end();
        t.begin("map");
        t.begin("generate");
        t.end();
        t.end();
        t.end();
        let r = t.report();
        let paths: Vec<&String> = r.timings.keys().collect();
        assert_eq!(
            paths,
            vec!["wrangle", "wrangle/map", "wrangle/map/generate", "wrangle/select"]
        );
        assert_eq!(r.timings["wrangle"].calls, 1);
    }

    #[test]
    fn off_mode_records_nothing() {
        let mut t = Telemetry::new(ObsMode::Off);
        t.begin("wrangle");
        t.inc("rows");
        t.gauge("ratio", 0.5);
        t.record_nanos("busy", 100, 1);
        t.end();
        let r = t.report();
        assert!(r.counts.is_empty());
        assert!(r.gauges.is_empty());
        assert!(r.timings.is_empty());
    }

    #[test]
    fn counters_and_gauges_render_deterministically() {
        let mut a = Telemetry::default();
        let mut b = Telemetry::default();
        for t in [&mut a, &mut b] {
            t.count("z.rows", 7);
            t.count("a.rows", 3);
            t.count("a.rows", 2);
            t.gauge("share", 1.0 / 3.0);
        }
        assert_eq!(a.report().render_counts(), b.report().render_counts());
        assert!(a.report().counts_identical(&b.report()));
        assert!(a.report().render_counts().starts_with("counts:\n  a.rows = 5\n"));
    }

    #[test]
    fn nan_gauge_is_sanitized() {
        let mut t = Telemetry::default();
        t.gauge("bad", f64::NAN);
        assert_eq!(t.report().gauges["bad"], 0.0);
    }

    #[test]
    fn absorb_prefixes_counter_sets() {
        let mut set = CounterSet::new();
        set.inc("retries");
        set.add("breaker_trips", 2);
        set.add("zeros", 0);
        assert_eq!(set.get("zeros"), 0);
        let mut t = Telemetry::default();
        t.absorb("acquire", &set);
        let r = t.report();
        assert_eq!(r.counts["acquire.retries"], 1);
        assert_eq!(r.counts["acquire.breaker_trips"], 2);
        assert!(!r.counts.contains_key("acquire.zeros"));
    }

    #[test]
    fn stage_shares_cover_direct_children_only() {
        let mut r = MetricsReport::default();
        r.timings.insert("wrangle".into(), Timing { nanos: 100, calls: 1 });
        r.timings
            .insert("wrangle/er".into(), Timing { nanos: 60, calls: 1 });
        r.timings
            .insert("wrangle/map".into(), Timing { nanos: 30, calls: 1 });
        r.timings.insert(
            "wrangle/map/generate".into(),
            Timing { nanos: 25, calls: 1 },
        );
        let shares = r.stage_shares("wrangle");
        assert_eq!(shares.len(), 2);
        assert_eq!(shares[0].0, "wrangle/er");
        assert!((shares[0].1 - 0.6).abs() < 1e-12);
        assert!((r.stage_coverage("wrangle") - 0.9).abs() < 1e-12);
        assert!(r.stage_shares("nosuch").is_empty());
    }

    #[test]
    fn json_is_sorted_and_escaped() {
        let mut t = Telemetry::default();
        t.count("b", 2);
        t.count("a\"x", 1);
        t.gauge("g", 0.25);
        t.begin("s");
        t.end();
        let j = t.report().to_json();
        assert!(j.starts_with("{\"counts\":{\"a\\\"x\":1,\"b\":2}"));
        assert!(j.contains("\"gauges\":{\"g\":0.250000}"));
        assert!(j.contains("\"timings\":{\"s\":{\"nanos\":"));
        assert!(j.ends_with("}}"));
    }

    #[test]
    fn aborted_pass_spans_do_not_leak_into_next_pass() {
        let mut t = Telemetry::default();
        t.begin("wrangle");
        t.begin("acquire");
        // ...pass aborts with `?`; both spans stay open.
        t.start_pass();
        t.begin("wrangle");
        t.end();
        let r = t.report();
        assert_eq!(r.timings.len(), 1, "{:?}", r.timings.keys());
        assert!(r.timings.contains_key("wrangle"));
        // A stray end after the stack drained is harmless.
        t.end();
    }

    #[test]
    fn time_closure_returns_value() {
        let mut t = Telemetry::default();
        let v = t.time("work", || 42);
        assert_eq!(v, 42);
        assert_eq!(t.report().timings["work"].calls, 1);
    }
}
