//! Property tests for entity resolution: union-find laws, blocking
//! soundness, similarity bounds.

use proptest::prelude::*;
use wrangler_resolve::{
    candidates_blocked, candidates_naive, candidates_sorted_neighborhood, cluster_pairs,
    match_pairs, record_similarity, ErConfig, ErKernel, FieldSim, SimKind, UnionFind,
};
use wrangler_table::{Table, Value};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-d]{1,6}( [a-d]{1,6}){0,2}"
}

fn arb_table(rows: usize) -> impl Strategy<Value = Table> {
    prop::collection::vec((arb_name(), prop::option::of(-100i64..100)), 1..=rows).prop_map(|rs| {
        let rows = rs
            .into_iter()
            .map(|(n, v)| vec![Value::from(n), v.map(Value::Int).unwrap_or(Value::Null)])
            .collect();
        Table::literal(&["name", "x"], rows).expect("aligned")
    })
}

/// A "messy" second column: nulls, ordinary numbers, non-finite floats and
/// plain text — everything real sources throw at a numeric comparator.
fn arb_messy_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-100i64..100).prop_map(Value::Int),
        (0usize..5).prop_map(|k| Value::Float(
            [1.5, -2.25, f64::NAN, f64::INFINITY, f64::NEG_INFINITY][k]
        )),
        arb_name().prop_map(Value::from),
    ]
}

/// Tables with nullable names and messy numerics — the adversarial input
/// for the kernel/serial equivalence and non-finite-safety properties.
fn arb_messy_table(rows: usize) -> impl Strategy<Value = Table> {
    prop::collection::vec((prop::option::of(arb_name()), arb_messy_value()), 1..=rows).prop_map(
        |rs| {
            let rows = rs
                .into_iter()
                .map(|(n, v)| vec![n.map(Value::from).unwrap_or(Value::Null), v])
                .collect();
            Table::literal(&["name", "x"], rows).expect("aligned")
        },
    )
}

fn messy_cfg() -> ErConfig {
    ErConfig {
        fields: vec![
            FieldSim {
                column: "name".into(),
                weight: 2.0,
                kind: SimKind::Text,
            },
            FieldSim {
                column: "x".into(),
                weight: 1.0,
                kind: SimKind::Numeric { scale: 0.5 },
            },
        ],
        threshold: 0.7,
    }
}

/// Canonical form of a clustering: rows sorted within clusters, clusters
/// sorted by content.
fn normalize(mut clusters: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    for c in &mut clusters {
        c.sort_unstable();
    }
    clusters.sort_unstable();
    clusters
}

proptest! {
    #[test]
    fn union_find_partitions(n in 1usize..60, pairs in prop::collection::vec((0usize..60, 0usize..60), 0..80)) {
        let pairs: Vec<(usize, usize)> =
            pairs.into_iter().filter(|&(a, b)| a < n && b < n).collect();
        let clusters = cluster_pairs(n, pairs.iter().copied());
        // Every element appears exactly once.
        let mut seen = vec![false; n];
        for c in &clusters {
            for &x in c {
                prop_assert!(!seen[x], "element {x} in two clusters");
                seen[x] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
        // All unioned pairs are co-clustered.
        let mut uf = UnionFind::new(n);
        for &(a, b) in &pairs {
            uf.union(a, b);
        }
        for &(a, b) in &pairs {
            prop_assert!(uf.same(a, b));
        }
    }

    #[test]
    fn same_is_equivalence_relation(n in 1usize..30, pairs in prop::collection::vec((0usize..30, 0usize..30), 0..40)) {
        let pairs: Vec<(usize, usize)> =
            pairs.into_iter().filter(|&(a, b)| a < n && b < n).collect();
        let mut uf = UnionFind::new(n);
        for &(a, b) in &pairs {
            uf.union(a, b);
        }
        for x in 0..n {
            prop_assert!(uf.same(x, x)); // reflexive
        }
        for &(a, b) in &pairs {
            prop_assert_eq!(uf.same(a, b), uf.same(b, a)); // symmetric
        }
    }

    #[test]
    fn blocked_candidates_are_subset_of_naive(t in arb_table(25)) {
        let naive: std::collections::HashSet<(usize, usize)> =
            candidates_naive(t.num_rows()).into_iter().collect();
        for p in candidates_blocked(&t, "name").unwrap() {
            prop_assert!(naive.contains(&p), "{p:?} not a valid pair");
        }
    }

    #[test]
    fn record_similarity_is_symmetric_and_bounded(t in arb_table(12)) {
        let cfg = ErConfig {
            fields: vec![
                FieldSim { column: "name".into(), weight: 2.0, kind: SimKind::Text },
                FieldSim { column: "x".into(), weight: 1.0, kind: SimKind::Numeric { scale: 0.5 } },
            ],
            threshold: 0.8,
        };
        let n = t.num_rows();
        for i in 0..n.min(6) {
            for j in 0..n.min(6) {
                let s_ij = record_similarity(&t, i, j, &cfg).unwrap();
                let s_ji = record_similarity(&t, j, i, &cfg).unwrap();
                prop_assert!((s_ij - s_ji).abs() < 1e-12);
                prop_assert!((0.0..=1.0).contains(&s_ij));
                if i == j {
                    // Self-similarity is 1 when any field is comparable.
                    let name_null = t.get(i, 0).unwrap().is_null();
                    let x_null = t.get(i, 1).unwrap().is_null();
                    if !(name_null && x_null) {
                        prop_assert!((s_ij - 1.0).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_kernel_equals_serial_match_pairs(t in arb_messy_table(18), workers in 1usize..9) {
        let cfg = messy_cfg();
        let candidates = candidates_naive(t.num_rows());
        let serial = match_pairs(&t, &candidates, &cfg).unwrap();
        let kernel = ErKernel::compile(&t, &cfg).unwrap();
        // `_exact` bypasses the pool-sizing policy so the property exercises
        // real multi-thread blocked reassembly even on a small machine.
        let (par, stats) = kernel.match_pairs_parallel_exact(&candidates, workers).unwrap();
        prop_assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(&par) {
            prop_assert_eq!((a.i, a.j), (b.i, b.j));
            // Bit-identical, not approximately equal: the parallel kernel
            // must be indistinguishable from the serial reference.
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        prop_assert_eq!(
            stats.iter().map(|s| s.items).sum::<u64>(),
            candidates.len() as u64
        );
        // The policy entry point sizes the pool differently but must score
        // identically.
        let (policy, _) = kernel.match_pairs_parallel(&candidates, workers).unwrap();
        prop_assert_eq!(&policy, &par);
    }

    #[test]
    fn parallel_kernel_handles_more_workers_than_pairs(t in arb_messy_table(4), extra in 1usize..9) {
        // Worker counts exceeding the pair count must cap, not idle or panic.
        let cfg = messy_cfg();
        let candidates = candidates_naive(t.num_rows());
        let workers = candidates.len() + extra;
        let serial = match_pairs(&t, &candidates, &cfg).unwrap();
        let kernel = ErKernel::compile(&t, &cfg).unwrap();
        let (par, stats) = kernel.match_pairs_parallel_exact(&candidates, workers).unwrap();
        prop_assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(&par) {
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        prop_assert_eq!(stats.len(), candidates.len().min(workers));
        prop_assert!(stats.iter().all(|s| s.items > 0), "idle worker spawned");
    }

    #[test]
    fn non_finite_inputs_never_produce_non_finite_scores(t in arb_messy_table(12)) {
        let cfg = messy_cfg();
        let kernel = ErKernel::compile(&t, &cfg).unwrap();
        for (i, j) in candidates_naive(t.num_rows()) {
            let s = kernel.score(i, j).unwrap();
            let r = record_similarity(&t, i, j, &cfg).unwrap();
            prop_assert!(s.is_finite(), "kernel score not finite: {s}");
            prop_assert!((0.0..=1.0).contains(&s), "out of range: {s}");
            prop_assert_eq!(s.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn sorted_neighborhood_is_subset_of_naive_with_null_free_endpoints(
        t in arb_messy_table(20),
        window in 2usize..6,
    ) {
        let naive: std::collections::HashSet<(usize, usize)> =
            candidates_naive(t.num_rows()).into_iter().collect();
        for (i, j) in candidates_sorted_neighborhood(&t, "name", window).unwrap() {
            prop_assert!(naive.contains(&(i, j)), "{i},{j} not a valid pair");
            prop_assert!(!t.get(i, 0).unwrap().is_null(), "null row {i} compared");
            prop_assert!(!t.get(j, 0).unwrap().is_null(), "null row {j} compared");
        }
    }

    #[test]
    fn clustering_is_invariant_under_candidate_order(t in arb_messy_table(16), seed in any::<u64>()) {
        let cfg = messy_cfg();
        let kernel = ErKernel::compile(&t, &cfg).unwrap();
        let candidates = candidates_naive(t.num_rows());
        let pairs = kernel.match_pairs(&candidates).unwrap();
        let base = normalize(cluster_pairs(t.num_rows(), pairs.iter().map(|p| (p.i, p.j))));
        // Deterministic Fisher–Yates driven by a splitmix64 stream.
        let mut shuffled = candidates;
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for k in (1..shuffled.len()).rev() {
            let r = (next() % (k as u64 + 1)) as usize;
            shuffled.swap(k, r);
        }
        let pairs2 = kernel.match_pairs(&shuffled).unwrap();
        let alt = normalize(cluster_pairs(t.num_rows(), pairs2.iter().map(|p| (p.i, p.j))));
        prop_assert_eq!(base, alt);
    }

    #[test]
    fn identical_rows_always_cluster(name in arb_name(), copies in 2usize..6) {
        let rows: Vec<Vec<Value>> =
            (0..copies).map(|_| vec![Value::from(name.clone()), Value::Int(1)]).collect();
        let t = Table::literal(&["name", "x"], rows).unwrap();
        let cfg = ErConfig::text_over(&["name"], 0.95);
        let clusters = wrangler_resolve::resolve(&t, "name", &cfg).unwrap();
        prop_assert_eq!(clusters.len(), 1);
    }
}
