//! Property tests for entity resolution: union-find laws, blocking
//! soundness, similarity bounds.

use proptest::prelude::*;
use wrangler_resolve::{
    candidates_blocked, candidates_naive, cluster_pairs, record_similarity, ErConfig, FieldSim,
    SimKind, UnionFind,
};
use wrangler_table::{Table, Value};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-d]{1,6}( [a-d]{1,6}){0,2}"
}

fn arb_table(rows: usize) -> impl Strategy<Value = Table> {
    prop::collection::vec((arb_name(), prop::option::of(-100i64..100)), 1..=rows).prop_map(|rs| {
        let rows = rs
            .into_iter()
            .map(|(n, v)| vec![Value::from(n), v.map(Value::Int).unwrap_or(Value::Null)])
            .collect();
        Table::literal(&["name", "x"], rows).expect("aligned")
    })
}

proptest! {
    #[test]
    fn union_find_partitions(n in 1usize..60, pairs in prop::collection::vec((0usize..60, 0usize..60), 0..80)) {
        let pairs: Vec<(usize, usize)> =
            pairs.into_iter().filter(|&(a, b)| a < n && b < n).collect();
        let clusters = cluster_pairs(n, pairs.iter().copied());
        // Every element appears exactly once.
        let mut seen = vec![false; n];
        for c in &clusters {
            for &x in c {
                prop_assert!(!seen[x], "element {x} in two clusters");
                seen[x] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
        // All unioned pairs are co-clustered.
        let mut uf = UnionFind::new(n);
        for &(a, b) in &pairs {
            uf.union(a, b);
        }
        for &(a, b) in &pairs {
            prop_assert!(uf.same(a, b));
        }
    }

    #[test]
    fn same_is_equivalence_relation(n in 1usize..30, pairs in prop::collection::vec((0usize..30, 0usize..30), 0..40)) {
        let pairs: Vec<(usize, usize)> =
            pairs.into_iter().filter(|&(a, b)| a < n && b < n).collect();
        let mut uf = UnionFind::new(n);
        for &(a, b) in &pairs {
            uf.union(a, b);
        }
        for x in 0..n {
            prop_assert!(uf.same(x, x)); // reflexive
        }
        for &(a, b) in &pairs {
            prop_assert_eq!(uf.same(a, b), uf.same(b, a)); // symmetric
        }
    }

    #[test]
    fn blocked_candidates_are_subset_of_naive(t in arb_table(25)) {
        let naive: std::collections::HashSet<(usize, usize)> =
            candidates_naive(t.num_rows()).into_iter().collect();
        for p in candidates_blocked(&t, "name").unwrap() {
            prop_assert!(naive.contains(&p), "{p:?} not a valid pair");
        }
    }

    #[test]
    fn record_similarity_is_symmetric_and_bounded(t in arb_table(12)) {
        let cfg = ErConfig {
            fields: vec![
                FieldSim { column: "name".into(), weight: 2.0, kind: SimKind::Text },
                FieldSim { column: "x".into(), weight: 1.0, kind: SimKind::Numeric { scale: 0.5 } },
            ],
            threshold: 0.8,
        };
        let n = t.num_rows();
        for i in 0..n.min(6) {
            for j in 0..n.min(6) {
                let s_ij = record_similarity(&t, i, j, &cfg).unwrap();
                let s_ji = record_similarity(&t, j, i, &cfg).unwrap();
                prop_assert!((s_ij - s_ji).abs() < 1e-12);
                prop_assert!((0.0..=1.0).contains(&s_ij));
                if i == j {
                    // Self-similarity is 1 when any field is comparable.
                    let name_null = t.get(i, 0).unwrap().is_null();
                    let x_null = t.get(i, 1).unwrap().is_null();
                    if !(name_null && x_null) {
                        prop_assert!((s_ij - 1.0).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn identical_rows_always_cluster(name in arb_name(), copies in 2usize..6) {
        let rows: Vec<Vec<Value>> =
            (0..copies).map(|_| vec![Value::from(name.clone()), Value::Int(1)]).collect();
        let t = Table::literal(&["name", "x"], rows).unwrap();
        let cfg = ErConfig::text_over(&["name"], 0.95);
        let clusters = wrangler_resolve::resolve(&t, "name", &cfg).unwrap();
        prop_assert_eq!(clusters.len(), 1);
    }
}
