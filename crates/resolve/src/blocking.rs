//! Candidate generation: naive, key blocking, sorted neighbourhood.
//!
//! Naive all-pairs is O(n²) and dies at big-data scale (§4.3); blocking
//! compares only records sharing a cheap key, sorted neighbourhood compares
//! records within a sliding window of a sort order. Completeness vs cost is
//! experiment E7's subject.

use std::collections::BTreeMap;

use wrangler_table::{Table, Value};

/// All pairs (i, j), i < j. The quadratic baseline.
pub fn candidates_naive(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(n.saturating_sub(1) * n / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            out.push((i, j));
        }
    }
    out
}

/// Blocking key of a value: lowercased first token, first 4 characters.
/// Nulls key to an empty block of their own (never compared).
pub fn block_key(v: &Value) -> Option<String> {
    if v.is_null() {
        return None;
    }
    let r = v.render().to_lowercase();
    let tok = r.split_whitespace().next()?;
    Some(tok.chars().take(4).collect())
}

/// Key-based blocking on a column: pairs within the same block only.
pub fn candidates_blocked(
    table: &Table,
    column: &str,
) -> wrangler_table::Result<Vec<(usize, usize)>> {
    let col = table.column_named(column)?;
    // BTreeMap iterates in key order, so the emitted pair order is
    // deterministic without an explicit sort.
    let mut blocks: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, v) in col.iter().enumerate() {
        if let Some(k) = block_key(v) {
            blocks.entry(k).or_default().push(i);
        }
    }
    let mut out = Vec::new();
    for rows in blocks.values() {
        for a in 0..rows.len() {
            for b in (a + 1)..rows.len() {
                out.push((rows[a], rows[b]));
            }
        }
    }
    Ok(out)
}

/// Exact-value blocking: pairs sharing the column's full (lowercased,
/// trimmed) rendering. The right choice for key-like columns, where prefix
/// blocks would degenerate (all `SKU-…` keys share a prefix).
pub fn candidates_blocked_exact(
    table: &Table,
    column: &str,
) -> wrangler_table::Result<Vec<(usize, usize)>> {
    let col = table.column_named(column)?;
    let mut blocks: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, v) in col.iter().enumerate() {
        if !v.is_null() {
            blocks
                .entry(v.render().trim().to_lowercase())
                .or_default()
                .push(i);
        }
    }
    let mut out = Vec::new();
    for rows in blocks.values() {
        for a in 0..rows.len() {
            for b in (a + 1)..rows.len() {
                out.push((rows[a], rows[b]));
            }
        }
    }
    Ok(out)
}

/// Sorted neighbourhood: sort rows by the column's rendering, compare each
/// row with the next `window − 1` rows in that order. Robust to key-prefix
/// typos that break key blocking.
pub fn candidates_sorted_neighborhood(
    table: &Table,
    column: &str,
    window: usize,
) -> wrangler_table::Result<Vec<(usize, usize)>> {
    assert!(window >= 2, "window must cover at least a pair");
    let col = table.column_named(column)?;
    let mut order: Vec<usize> = (0..col.len()).collect();
    order.sort_by(|&a, &b| {
        col[a]
            .render()
            .to_lowercase()
            .cmp(&col[b].render().to_lowercase())
    });
    let mut out = Vec::new();
    for (pos, &i) in order.iter().enumerate() {
        for &j in order.iter().skip(pos + 1).take(window - 1) {
            out.push((i.min(j), i.max(j)));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(xs: &[&str]) -> Table {
        Table::literal(
            &["name"],
            xs.iter().map(|x| vec![Value::from(*x)]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn naive_counts() {
        assert_eq!(candidates_naive(0).len(), 0);
        assert_eq!(candidates_naive(1).len(), 0);
        assert_eq!(candidates_naive(5).len(), 10);
    }

    #[test]
    fn blocking_prunes_cross_block_pairs() {
        let t = names(&[
            "Acme Widget",
            "Acme Gadget",
            "Bolt Thing",
            "acme widget pro",
        ]);
        let pairs = candidates_blocked(&t, "name").unwrap();
        // acme-block rows {0,1,3} → 3 pairs; bolt row alone.
        assert_eq!(pairs.len(), 3);
        assert!(pairs.contains(&(0, 3)));
        assert!(!pairs.iter().any(|&(i, j)| i == 2 || j == 2));
    }

    #[test]
    fn nulls_never_compared() {
        let t = Table::literal(
            &["name"],
            vec![vec![Value::Null], vec![Value::Null], vec!["x".into()]],
        )
        .unwrap();
        assert!(candidates_blocked(&t, "name").unwrap().is_empty());
    }

    #[test]
    fn blocked_is_subset_of_naive() {
        let t = names(&["aa", "ab", "ba", "aa x"]);
        let naive: std::collections::HashSet<_> = candidates_naive(4).into_iter().collect();
        for p in candidates_blocked(&t, "name").unwrap() {
            assert!(naive.contains(&p));
        }
    }

    #[test]
    fn sorted_neighborhood_window() {
        let t = names(&["delta", "alpha", "beta", "gamma"]);
        let pairs = candidates_sorted_neighborhood(&t, "name", 2).unwrap();
        // Sorted: alpha(1) beta(2) delta(0) gamma(3); adjacent pairs only.
        assert_eq!(pairs.len(), 3);
        assert!(pairs.contains(&(1, 2)));
        assert!(pairs.contains(&(0, 2)));
        assert!(pairs.contains(&(0, 3)));
        // Window 4 on 4 rows = all pairs.
        let all = candidates_sorted_neighborhood(&t, "name", 4).unwrap();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn sorted_neighborhood_catches_prefix_typo_that_blocking_misses() {
        // "acme widget" vs "acmd widget": different 4-prefix blocks.
        let t = names(&["acme widget", "acmd widget"]);
        assert!(candidates_blocked(&t, "name").unwrap().is_empty());
        let sn = candidates_sorted_neighborhood(&t, "name", 2).unwrap();
        assert_eq!(sn, vec![(0, 1)]);
    }
}
