//! Candidate generation: naive, key blocking, sorted neighbourhood.
//!
//! Naive all-pairs is O(n²) and dies at big-data scale (§4.3); blocking
//! compares only records sharing a cheap key, sorted neighbourhood compares
//! records within a sliding window of a sort order. Completeness vs cost is
//! experiment E7's subject.

use std::collections::BTreeMap;

use wrangler_table::{Table, Value};

/// All pairs (i, j), i < j. The quadratic baseline.
pub fn candidates_naive(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(n.saturating_sub(1) * n / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            out.push((i, j));
        }
    }
    out
}

/// Blocking key of a value: lowercased first token, first 4 characters.
/// Nulls key to an empty block of their own (never compared).
pub fn block_key(v: &Value) -> Option<String> {
    if v.is_null() {
        return None;
    }
    let r = v.render().to_lowercase();
    let tok = r.split_whitespace().next()?;
    Some(tok.chars().take(4).collect())
}

/// Key-based blocking on a column: pairs within the same block only.
pub fn candidates_blocked(
    table: &Table,
    column: &str,
) -> wrangler_table::Result<Vec<(usize, usize)>> {
    let col = table.column_named(column)?;
    // BTreeMap iterates in key order, so the emitted pair order is
    // deterministic without an explicit sort.
    let mut blocks: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, v) in col.iter().enumerate() {
        if let Some(k) = block_key(v) {
            blocks.entry(k).or_default().push(i);
        }
    }
    let mut out = Vec::new();
    for rows in blocks.values() {
        for a in 0..rows.len() {
            for b in (a + 1)..rows.len() {
                out.push((rows[a], rows[b]));
            }
        }
    }
    Ok(out)
}

/// Exact-value blocking: pairs sharing the column's full (lowercased,
/// trimmed) rendering. The right choice for key-like columns, where prefix
/// blocks would degenerate (all `SKU-…` keys share a prefix).
pub fn candidates_blocked_exact(
    table: &Table,
    column: &str,
) -> wrangler_table::Result<Vec<(usize, usize)>> {
    let col = table.column_named(column)?;
    let mut blocks: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, v) in col.iter().enumerate() {
        if !v.is_null() {
            blocks
                .entry(v.render().trim().to_lowercase())
                .or_default()
                .push(i);
        }
    }
    let mut out = Vec::new();
    for rows in blocks.values() {
        for a in 0..rows.len() {
            for b in (a + 1)..rows.len() {
                out.push((rows[a], rows[b]));
            }
        }
    }
    Ok(out)
}

/// Translate a candidate pair of the current pass into the row indices of a
/// previous pass, given a row-level remap (`None` = the row has no prior
/// counterpart). This is the ER half of the incremental engine's fast path:
/// a pair whose rows both remap can replay its memoized score instead of
/// rescoring. Out-of-range indices translate to `None` rather than
/// panicking, so a stale or truncated map can never fabricate a reuse.
pub fn remap_candidate(
    pair: (usize, usize),
    rowmap: &[Option<usize>],
) -> Option<(usize, usize)> {
    let old_i = rowmap.get(pair.0).copied().flatten()?;
    let old_j = rowmap.get(pair.1).copied().flatten()?;
    Some((old_i, old_j))
}

/// Sorted neighbourhood: sort rows by the column's rendering, compare each
/// row with the next `window − 1` rows in that order. Robust to key-prefix
/// typos that break key blocking. Null rows are excluded before sorting —
/// the "nulls never compared" contract both blocking variants uphold — and
/// a window below 2 is a structured error, not a panic.
pub fn candidates_sorted_neighborhood(
    table: &Table,
    column: &str,
    window: usize,
) -> wrangler_table::Result<Vec<(usize, usize)>> {
    if window < 2 {
        return Err(wrangler_table::TableError::Invalid(format!(
            "sorted-neighbourhood window must cover at least a pair (got {window})"
        )));
    }
    let col = table.column_named(column)?;
    // Keys rendered once per row (not once per comparison); ties keep the
    // original row order, as the previous stable sort did.
    let mut keyed: Vec<(String, usize)> = col
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_null())
        .map(|(i, v)| (v.render().to_lowercase(), i))
        .collect();
    keyed.sort_unstable();
    let mut out = Vec::new();
    for (pos, (_, i)) in keyed.iter().enumerate() {
        for (_, j) in keyed.iter().skip(pos + 1).take(window - 1) {
            out.push((*i.min(j), *i.max(j)));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(xs: &[&str]) -> Table {
        Table::literal(
            &["name"],
            xs.iter().map(|x| vec![Value::from(*x)]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn naive_counts() {
        assert_eq!(candidates_naive(0).len(), 0);
        assert_eq!(candidates_naive(1).len(), 0);
        assert_eq!(candidates_naive(5).len(), 10);
    }

    #[test]
    fn blocking_prunes_cross_block_pairs() {
        let t = names(&[
            "Acme Widget",
            "Acme Gadget",
            "Bolt Thing",
            "acme widget pro",
        ]);
        let pairs = candidates_blocked(&t, "name").unwrap();
        // acme-block rows {0,1,3} → 3 pairs; bolt row alone.
        assert_eq!(pairs.len(), 3);
        assert!(pairs.contains(&(0, 3)));
        assert!(!pairs.iter().any(|&(i, j)| i == 2 || j == 2));
    }

    #[test]
    fn nulls_never_compared() {
        let t = Table::literal(
            &["name"],
            vec![vec![Value::Null], vec![Value::Null], vec!["x".into()]],
        )
        .unwrap();
        assert!(candidates_blocked(&t, "name").unwrap().is_empty());
    }

    #[test]
    fn blocked_is_subset_of_naive() {
        let t = names(&["aa", "ab", "ba", "aa x"]);
        let naive: std::collections::HashSet<_> = candidates_naive(4).into_iter().collect();
        for p in candidates_blocked(&t, "name").unwrap() {
            assert!(naive.contains(&p));
        }
    }

    #[test]
    fn sorted_neighborhood_window() {
        let t = names(&["delta", "alpha", "beta", "gamma"]);
        let pairs = candidates_sorted_neighborhood(&t, "name", 2).unwrap();
        // Sorted: alpha(1) beta(2) delta(0) gamma(3); adjacent pairs only.
        assert_eq!(pairs.len(), 3);
        assert!(pairs.contains(&(1, 2)));
        assert!(pairs.contains(&(0, 2)));
        assert!(pairs.contains(&(0, 3)));
        // Window 4 on 4 rows = all pairs.
        let all = candidates_sorted_neighborhood(&t, "name", 4).unwrap();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn sorted_neighborhood_nulls_never_compared() {
        // Mirrors `nulls_never_compared` for the sorted-neighbourhood path:
        // null rows must enter neither the sort order nor the window.
        let t = Table::literal(
            &["name"],
            vec![
                vec![Value::Null],
                vec!["beta".into()],
                vec![Value::Null],
                vec!["alpha".into()],
            ],
        )
        .unwrap();
        let pairs = candidates_sorted_neighborhood(&t, "name", 2).unwrap();
        assert_eq!(pairs, vec![(1, 3)]);
        // Even a window spanning everything only pairs the non-null rows.
        let wide = candidates_sorted_neighborhood(&t, "name", 4).unwrap();
        assert_eq!(wide, vec![(1, 3)]);
        let all_null =
            Table::literal(&["name"], vec![vec![Value::Null], vec![Value::Null]]).unwrap();
        assert!(candidates_sorted_neighborhood(&all_null, "name", 3)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn sorted_neighborhood_small_window_is_error_not_panic() {
        let t = names(&["a", "b"]);
        for window in [0, 1] {
            let err = candidates_sorted_neighborhood(&t, "name", window).unwrap_err();
            assert!(
                matches!(err, wrangler_table::TableError::Invalid(_)),
                "{err:?}"
            );
        }
    }

    #[test]
    fn remap_candidate_requires_both_rows_mapped_and_in_range() {
        let map = [Some(5), None, Some(7)];
        assert_eq!(remap_candidate((0, 2), &map), Some((5, 7)));
        assert_eq!(remap_candidate((0, 1), &map), None);
        // Indices past the map's end are "no counterpart", not a panic.
        assert_eq!(remap_candidate((0, 9), &map), None);
        assert_eq!(remap_candidate((9, 9), &[]), None);
    }

    #[test]
    fn sorted_neighborhood_catches_prefix_typo_that_blocking_misses() {
        // "acme widget" vs "acmd widget": different 4-prefix blocks.
        let t = names(&["acme widget", "acmd widget"]);
        assert!(candidates_blocked(&t, "name").unwrap().is_empty());
        let sn = candidates_sorted_neighborhood(&t, "name", 2).unwrap();
        assert_eq!(sn, vec![(0, 1)]);
    }
}
