//! Record-level similarity from typed field comparators.

use wrangler_match::strsim::{jaro_winkler, levenshtein_sim, token_jaccard};
use wrangler_table::{Table, Value};

/// How to compare one field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimKind {
    /// Free text: max of Jaro–Winkler, token Jaccard and Levenshtein sims of
    /// lowercased renderings.
    Text,
    /// Identifier: exact (case-insensitive) match or nothing.
    Exact,
    /// Numeric proximity: `1 − min(1, |a−b| / (scale·max(|a|,|b|,1)))`.
    Numeric {
        /// Relative difference treated as "completely different".
        scale: f64,
    },
}

/// One field's contribution to record similarity.
#[derive(Debug, Clone)]
pub struct FieldSim {
    /// Column name.
    pub column: String,
    /// Relative weight (≥ 0).
    pub weight: f64,
    /// Comparator.
    pub kind: SimKind,
}

/// Entity-resolution configuration: weighted field comparators + decision
/// threshold.
#[derive(Debug, Clone)]
pub struct ErConfig {
    /// Field comparators.
    pub fields: Vec<FieldSim>,
    /// Pairs scoring at or above this are matches.
    pub threshold: f64,
}

impl ErConfig {
    /// Uniform text comparison over the given columns at the given threshold.
    pub fn text_over(columns: &[&str], threshold: f64) -> ErConfig {
        ErConfig {
            fields: columns
                .iter()
                .map(|c| FieldSim {
                    column: c.to_string(),
                    weight: 1.0,
                    kind: SimKind::Text,
                })
                .collect(),
            threshold,
        }
    }
}

/// Similarity of one value pair under a comparator. Null pairs are neutral
/// (contribute nothing); a null/non-null pair scores a mild 0.5 penalty... no:
/// missingness is not evidence of difference, so it is skipped entirely.
fn value_similarity(a: &Value, b: &Value, kind: SimKind) -> Option<f64> {
    if a.is_null() || b.is_null() {
        return None;
    }
    Some(match kind {
        SimKind::Exact => {
            if a.render().eq_ignore_ascii_case(&b.render()) {
                1.0
            } else {
                0.0
            }
        }
        SimKind::Text => {
            let sa = a.render().to_lowercase();
            let sb = b.render().to_lowercase();
            if sa == sb {
                1.0
            } else {
                jaro_winkler(&sa, &sb)
                    .max(token_jaccard(&sa, &sb))
                    .max(levenshtein_sim(&sa, &sb))
            }
        }
        SimKind::Numeric { scale } => {
            let (fa, fb) = (a.as_f64(), b.as_f64());
            // NaN/±∞ carry no usable magnitude: the proximity formula would
            // yield NaN and poison the weighted average, so a non-finite
            // operand makes the field incomparable, like null.
            if fa.is_some_and(|x| !x.is_finite()) || fb.is_some_and(|y| !y.is_finite()) {
                return None;
            }
            match (fa, fb) {
                (Some(x), Some(y)) => {
                    let denom = scale.max(1e-9) * x.abs().max(y.abs()).max(1.0);
                    1.0 - ((x - y).abs() / denom).min(1.0)
                }
                _ => 0.0, // numeric comparator on non-numeric data: different
            }
        }
    })
}

/// Resolve every configured column to its schema index, up front. An
/// unknown column errors here, before any scoring work is spent.
pub(crate) fn resolve_columns(
    table: &Table,
    cfg: &ErConfig,
) -> wrangler_table::Result<Vec<usize>> {
    cfg.fields
        .iter()
        .map(|f| table.schema().index_of(&f.column))
        .collect()
}

/// [`record_similarity`] with the column indices already resolved
/// (`cols[k]` is the index of `cfg.fields[k].column`).
pub(crate) fn record_similarity_resolved(
    table: &Table,
    i: usize,
    j: usize,
    cfg: &ErConfig,
    cols: &[usize],
) -> wrangler_table::Result<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for (f, &col) in cfg.fields.iter().zip(cols) {
        let a = table.get(i, col)?;
        let b = table.get(j, col)?;
        if let Some(s) = value_similarity(a, b, f.kind) {
            num += f.weight * s;
            den += f.weight;
        }
    }
    Ok(if den == 0.0 { 0.0 } else { num / den })
}

/// Weighted record similarity; fields where either value is null are skipped
/// (their weight excluded from the denominator). Two records sharing no
/// comparable fields score 0. Column names are resolved once per call — an
/// unknown column errors before any field is compared (batch callers should
/// use [`crate::ErKernel`], which resolves once per table).
pub fn record_similarity(
    table: &Table,
    i: usize,
    j: usize,
    cfg: &ErConfig,
) -> wrangler_table::Result<f64> {
    let cols = resolve_columns(table, cfg)?;
    record_similarity_resolved(table, i, j, cfg, &cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::literal(
            &["name", "price", "sku"],
            vec![
                vec!["Acme Widget".into(), Value::Float(10.0), "a1".into()],
                vec!["Acme Widgget".into(), Value::Float(10.5), "A1".into()],
                vec!["Bolt Gadget".into(), Value::Float(99.0), "b7".into()],
                vec!["Acme Widget".into(), Value::Null, Value::Null],
            ],
        )
        .unwrap()
    }

    fn cfg() -> ErConfig {
        ErConfig {
            fields: vec![
                FieldSim {
                    column: "name".into(),
                    weight: 2.0,
                    kind: SimKind::Text,
                },
                FieldSim {
                    column: "price".into(),
                    weight: 1.0,
                    kind: SimKind::Numeric { scale: 0.25 },
                },
                FieldSim {
                    column: "sku".into(),
                    weight: 1.0,
                    kind: SimKind::Exact,
                },
            ],
            threshold: 0.8,
        }
    }

    #[test]
    fn near_duplicates_score_high() {
        let s = record_similarity(&t(), 0, 1, &cfg()).unwrap();
        assert!(s > 0.85, "{s}");
        let d = record_similarity(&t(), 0, 2, &cfg()).unwrap();
        assert!(d < 0.5, "{d}");
    }

    #[test]
    fn nulls_are_skipped_not_penalized() {
        // Rows 0 and 3 agree perfectly on name; price/sku null on row 3.
        let s = record_similarity(&t(), 0, 3, &cfg()).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_comparator_is_case_insensitive_binary() {
        assert_eq!(
            value_similarity(&"a1".into(), &"A1".into(), SimKind::Exact),
            Some(1.0)
        );
        assert_eq!(
            value_similarity(&"a1".into(), &"a2".into(), SimKind::Exact),
            Some(0.0)
        );
    }

    #[test]
    fn numeric_proximity_scales() {
        let k = SimKind::Numeric { scale: 0.2 };
        assert_eq!(
            value_similarity(&Value::Float(100.0), &Value::Float(100.0), k),
            Some(1.0)
        );
        let near = value_similarity(&Value::Float(100.0), &Value::Float(105.0), k).unwrap();
        assert!(near > 0.7);
        let far = value_similarity(&Value::Float(100.0), &Value::Float(200.0), k).unwrap();
        assert_eq!(far, 0.0);
        // Numeric comparator on strings: different.
        assert_eq!(
            value_similarity(&"x".into(), &Value::Float(1.0), k),
            Some(0.0)
        );
    }

    #[test]
    fn non_finite_numerics_are_incomparable_not_poisonous() {
        let k = SimKind::Numeric { scale: 0.2 };
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                value_similarity(&Value::Float(bad), &Value::Float(1.0), k),
                None
            );
            assert_eq!(
                value_similarity(&Value::Float(1.0), &Value::Float(bad), k),
                None
            );
            // Non-finite vs non-numeric: still incomparable.
            assert_eq!(value_similarity(&Value::Float(bad), &"x".into(), k), None);
        }
        // A record pair agreeing on every other field must not score NaN
        // because one numeric cell is poisoned.
        let t = Table::literal(
            &["name", "price"],
            vec![
                vec!["Acme Widget".into(), Value::Float(f64::NAN)],
                vec!["Acme Widget".into(), Value::Float(10.0)],
            ],
        )
        .unwrap();
        let cfg = ErConfig {
            fields: vec![
                FieldSim {
                    column: "name".into(),
                    weight: 2.0,
                    kind: SimKind::Text,
                },
                FieldSim {
                    column: "price".into(),
                    weight: 1.0,
                    kind: SimKind::Numeric { scale: 0.2 },
                },
            ],
            threshold: 0.8,
        };
        let s = record_similarity(&t, 0, 1, &cfg).unwrap();
        assert!(s.is_finite());
        assert!((s - 1.0).abs() < 1e-12, "{s}");
    }

    #[test]
    fn records_with_no_comparable_fields_score_zero() {
        let t2 = Table::literal(&["name"], vec![vec![Value::Null], vec![Value::Null]]).unwrap();
        let cfg = ErConfig::text_over(&["name"], 0.5);
        assert_eq!(record_similarity(&t2, 0, 1, &cfg).unwrap(), 0.0);
    }

    #[test]
    fn unknown_column_is_error() {
        let cfg = ErConfig::text_over(&["ghost"], 0.5);
        assert!(record_similarity(&t(), 0, 1, &cfg).is_err());
    }
}
