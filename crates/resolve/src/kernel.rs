//! The precompiled, parallel entity-resolution kernel.
//!
//! E13's stage attribution put ~90% of a wrangle's wall-clock inside the ER
//! stage, and almost all of it in pair scoring: [`record_similarity`] looks
//! every column name up in the schema *per pair per field*, renders and
//! lowercases both values *per pair*, and rebuilds token sets *per pair* —
//! work that is a pure function of one row, recomputed O(candidates) times.
//!
//! [`ErKernel`] hoists all of it to compile time. [`ErKernel::compile`]
//! resolves the [`ErConfig`]'s column names to indices once (an unknown
//! column errors *before* any scoring), then materialises per-row cells:
//! lowercased renderings, their `char` vectors, sorted-deduped token sets
//! (text fields), ASCII-folded renderings (exact fields) and classified
//! numeric values (numeric fields). Scoring a pair then touches only these
//! cells — no schema lookups, no allocation for renderings or token sets.
//!
//! The arithmetic mirrors the serial path operation for operation, so kernel
//! scores are **bit-identical** to [`record_similarity`] — the
//! `parallel_kernel_equals_serial_match_pairs` proptest holds for any worker
//! count. Parallel scoring splits the candidate list into *contiguous
//! blocked chunks* (worker `w` scores `candidates[start_w..end_w]`, chunks
//! balanced to within one pair) and reassembles them in chunk order, so the
//! output does not depend on scheduling. Blocked pickup is deliberate: the
//! strided fan-out it replaced (worker `w` takes candidates
//! `w, w+workers, …`) interleaved every worker through the whole candidate
//! range and destroyed the per-row cell locality the kernel was compiled
//! for — BENCH_e14 measured it as *negative* scaling. The pool is also
//! sized by [`wrangler_table::par::effective_workers`]: never wider than
//! the machine's cores, and never so wide that a worker gets fewer than
//! [`MIN_PAIRS_PER_WORKER`] pairs — tiny candidate sets (e.g. the handful
//! of cache misses of an incremental pass) run serially instead of paying
//! thread-spawn latency.
//!
//! [`record_similarity`]: crate::sim::record_similarity

use std::time::Instant;

use wrangler_table::par::{self, effective_workers};
pub use wrangler_table::par::WorkerStat;
use wrangler_table::{Table, TableError, Value};

use crate::sim::{ErConfig, SimKind};
use crate::ScoredPair;

/// Minimum candidate pairs per worker before the pool widens by one thread.
/// A pair costs on the order of a microsecond; a thread spawn costs tens of
/// them — below this floor the spawn never pays for itself.
pub const MIN_PAIRS_PER_WORKER: usize = 512;

/// Per-row precomputation for one text field.
#[derive(Debug, Clone)]
struct TextCell {
    /// Lowercased rendering (the serial path's `render().to_lowercase()`).
    lower: String,
    /// `lower` as a char vector (what `jaro`/`levenshtein` collect per call).
    chars: Vec<char>,
    /// `lower`'s bytes when pure ASCII: `char` equality over ASCII strings
    /// is byte equality at the same indices, so the char-level kernels can
    /// run on `u8` slices — same comparisons, same arithmetic, same bits,
    /// a quarter of the memory traffic.
    ascii: Option<Vec<u8>>,
    /// Sorted, deduplicated tokens of `lower` (what `token_jaccard` builds
    /// per call).
    tokens: Vec<String>,
}

/// A classified numeric value. The classification mirrors the serial
/// comparator: nulls are skipped, non-finite values are incomparable (the
/// NaN-poisoning fix), non-numeric payloads compare as "different".
#[derive(Debug, Clone, Copy)]
enum NumCell {
    /// Null value: the field is skipped for any pair involving this row.
    Null,
    /// A finite numeric value.
    Finite(f64),
    /// NaN or ±∞: incomparable, like null.
    NonFinite,
    /// Non-null, non-numeric payload under a numeric comparator.
    NonNumeric,
}

/// Per-row cells of one compiled field.
#[derive(Debug, Clone)]
enum FieldCells {
    /// Text comparator cells (`None` = null row).
    Text(Vec<Option<TextCell>>),
    /// Exact comparator cells: ASCII-folded renderings (`None` = null row).
    /// `a.eq_ignore_ascii_case(b)` ≡ `fold(a) == fold(b)`.
    Exact(Vec<Option<String>>),
    /// Numeric comparator cells with the comparator's scale.
    Numeric { cells: Vec<NumCell>, scale: f64 },
}

/// One field of the compiled configuration.
#[derive(Debug, Clone)]
struct CompiledField {
    weight: f64,
    cells: FieldCells,
}

/// Reusable per-worker buffers for the char-level similarity kernels. A
/// fresh default is indistinguishable from a reused one — every routine
/// clears and re-initialises what it reads — so scratch reuse cannot change
/// a single bit of output; it only removes the 4–5 heap allocations the
/// uncompiled path pays per pair.
#[derive(Debug, Default)]
struct SimScratch {
    /// `jaro`: which `b` chars are already matched.
    b_used: Vec<bool>,
    /// `jaro`: matched `b` positions in `a` order.
    js: Vec<usize>,
    /// `jaro`: the same positions sorted (transposition counting).
    js_sorted: Vec<usize>,
    /// `levenshtein`: previous DP row.
    prev: Vec<usize>,
    /// `levenshtein`: current DP row.
    cur: Vec<usize>,
    /// Myers bit-parallel `levenshtein`: per-symbol pattern bitmasks (256
    /// entries, zeroed after each use so reuse equals a fresh table).
    peq: Vec<u64>,
}

/// An [`ErConfig`] precompiled against one table: column names resolved,
/// comparators monomorphized, per-row renderings cached. Build once per
/// (table, config), score many pairs.
#[derive(Debug, Clone)]
pub struct ErKernel {
    threshold: f64,
    rows: usize,
    fields: Vec<CompiledField>,
}

impl ErKernel {
    /// Compile `cfg` against `table`'s schema and rows. An unknown column in
    /// the config surfaces here, before any pair is scored.
    pub fn compile(table: &Table, cfg: &ErConfig) -> wrangler_table::Result<ErKernel> {
        // Resolve every column first: the error must precede all cell work.
        let cols: Vec<usize> = cfg
            .fields
            .iter()
            .map(|f| table.schema().index_of(&f.column))
            .collect::<wrangler_table::Result<_>>()?;
        let rows = table.num_rows();
        let mut fields = Vec::with_capacity(cfg.fields.len());
        for (f, &col) in cfg.fields.iter().zip(&cols) {
            let column = table.column(col)?;
            let cells = match f.kind {
                SimKind::Text => FieldCells::Text(column.iter().map(text_cell).collect()),
                SimKind::Exact => FieldCells::Exact(
                    column
                        .iter()
                        .map(|v| (!v.is_null()).then(|| v.render().to_ascii_lowercase()))
                        .collect(),
                ),
                SimKind::Numeric { scale } => FieldCells::Numeric {
                    cells: column.iter().map(num_cell).collect(),
                    scale,
                },
            };
            fields.push(CompiledField {
                weight: f.weight,
                cells,
            });
        }
        Ok(ErKernel {
            threshold: cfg.threshold,
            rows,
            fields,
        })
    }

    /// Number of rows the kernel was compiled over.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// The decision threshold of the compiled configuration.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Record similarity of rows `i` and `j` — bit-identical to the serial
    /// [`record_similarity`](crate::sim::record_similarity) on the compiled
    /// table and config.
    pub fn score(&self, i: usize, j: usize) -> wrangler_table::Result<f64> {
        self.score_scratch(i, j, &mut SimScratch::default())
    }

    /// [`Self::score`] with caller-owned scratch buffers (one set per
    /// worker, reused across its pairs).
    fn score_scratch(
        &self,
        i: usize,
        j: usize,
        scratch: &mut SimScratch,
    ) -> wrangler_table::Result<f64> {
        if i >= self.rows || j >= self.rows {
            return Err(TableError::Invalid(format!(
                "candidate pair ({i}, {j}) out of bounds for {} rows",
                self.rows
            )));
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for f in &self.fields {
            if let Some(s) = field_similarity(&f.cells, i, j, scratch) {
                num += f.weight * s;
                den += f.weight;
            }
        }
        Ok(if den == 0.0 { 0.0 } else { num / den })
    }

    /// Score `pairs` serially, in order. Returns one score per pair.
    pub fn score_pairs(&self, pairs: &[(usize, usize)]) -> wrangler_table::Result<Vec<f64>> {
        let mut scratch = SimScratch::default();
        pairs
            .iter()
            .map(|&(i, j)| self.score_scratch(i, j, &mut scratch))
            .collect()
    }

    /// Score `pairs` across a blocked worker pool sized by
    /// [`effective_workers`] — `workers` is a *request*, clamped to the
    /// machine's cores and to one thread per [`MIN_PAIRS_PER_WORKER`] pairs.
    /// The returned scores are in pair order and bit-identical for any
    /// requested width; per-worker stats report items and busy wall-clock.
    /// A panicking worker becomes a structured error.
    pub fn score_pairs_parallel(
        &self,
        pairs: &[(usize, usize)],
        workers: usize,
    ) -> wrangler_table::Result<(Vec<f64>, Vec<WorkerStat>)> {
        self.score_pairs_parallel_exact(
            pairs,
            effective_workers(workers, pairs.len(), MIN_PAIRS_PER_WORKER),
        )
    }

    /// [`Self::score_pairs_parallel`] with an *exact* pool width: spawns
    /// `min(workers, pairs.len())` threads, bypassing the sizing policy.
    /// Same output contract — this is the seam tests use to drive real
    /// multi-thread reassembly even on machines with fewer cores, and what
    /// the policy entry point delegates to.
    pub fn score_pairs_parallel_exact(
        &self,
        pairs: &[(usize, usize)],
        workers: usize,
    ) -> wrangler_table::Result<(Vec<f64>, Vec<WorkerStat>)> {
        if pairs.is_empty() {
            return Ok((Vec::new(), Vec::new()));
        }
        if workers.max(1).min(pairs.len()) == 1 {
            let started = Instant::now();
            let scores = self.score_pairs(pairs)?;
            let stat = WorkerStat {
                items: scores.len() as u64,
                busy_nanos: started.elapsed().as_nanos(),
            };
            return Ok((scores, vec![stat]));
        }
        // Contiguous blocked chunks, one per worker, reassembled in chunk
        // order: concatenating the chunks *is* pair order, and each worker
        // walks adjacent pairs so the compiled per-row cells stay hot.
        let (chunks, stats) = par::run_blocked(pairs, workers, |_, chunk| {
            let mut scratch = SimScratch::default();
            chunk
                .iter()
                .map(|&(i, j)| self.score_scratch(i, j, &mut scratch))
                .collect::<wrangler_table::Result<Vec<f64>>>()
        })
        .map_err(|msg| {
            TableError::Unavailable(format!("ER scoring worker panicked: {msg}"))
        })?;
        let mut scores = Vec::with_capacity(pairs.len());
        for chunk in chunks {
            scores.extend(chunk?);
        }
        Ok((scores, stats))
    }

    /// Serial equivalent of [`match_pairs`](crate::match_pairs) on the
    /// compiled table: score candidates, keep those at or above the
    /// threshold.
    pub fn match_pairs(
        &self,
        candidates: &[(usize, usize)],
    ) -> wrangler_table::Result<Vec<ScoredPair>> {
        let scores = self.score_pairs(candidates)?;
        Ok(self.filter_matches(candidates, &scores))
    }

    /// Parallel [`Self::match_pairs`]: identical output for any worker count,
    /// plus per-worker stats. Pool width goes through the sizing policy.
    pub fn match_pairs_parallel(
        &self,
        candidates: &[(usize, usize)],
        workers: usize,
    ) -> wrangler_table::Result<(Vec<ScoredPair>, Vec<WorkerStat>)> {
        let (scores, stats) = self.score_pairs_parallel(candidates, workers)?;
        Ok((self.filter_matches(candidates, &scores), stats))
    }

    /// [`Self::match_pairs_parallel`] with an exact pool width (see
    /// [`Self::score_pairs_parallel_exact`]).
    pub fn match_pairs_parallel_exact(
        &self,
        candidates: &[(usize, usize)],
        workers: usize,
    ) -> wrangler_table::Result<(Vec<ScoredPair>, Vec<WorkerStat>)> {
        let (scores, stats) = self.score_pairs_parallel_exact(candidates, workers)?;
        Ok((self.filter_matches(candidates, &scores), stats))
    }

    /// Apply the threshold to aligned `(candidates, scores)`, preserving
    /// candidate order — the exact filter of the serial `match_pairs`.
    pub fn filter_matches(
        &self,
        candidates: &[(usize, usize)],
        scores: &[f64],
    ) -> Vec<ScoredPair> {
        candidates
            .iter()
            .zip(scores)
            .filter(|(_, &s)| s >= self.threshold)
            .map(|(&(i, j), &s)| ScoredPair {
                i: i.min(j),
                j: i.max(j),
                score: s,
            })
            .collect()
    }

    /// A canonical content key per row over exactly the cells scoring reads.
    /// Two rows share a key iff every compiled field sees identical inputs,
    /// so `(key(i), key(j))` identifies a pair's score across runs — the
    /// basis of the Working Data pair-score cache. Every variable-length
    /// segment is length-prefixed, so keys are unambiguous.
    pub fn content_keys(&self) -> Vec<String> {
        use std::fmt::Write as _;
        (0..self.rows)
            .map(|r| {
                let mut key = String::new();
                for f in &self.fields {
                    match &f.cells {
                        FieldCells::Text(cells) => match &cells[r] {
                            Some(c) => {
                                let _ = write!(key, "t{}:{};", c.lower.len(), c.lower);
                            }
                            None => key.push_str("t-;"),
                        },
                        FieldCells::Exact(cells) => match &cells[r] {
                            Some(s) => {
                                let _ = write!(key, "e{}:{};", s.len(), s);
                            }
                            None => key.push_str("e-;"),
                        },
                        FieldCells::Numeric { cells, .. } => match cells[r] {
                            NumCell::Null => key.push_str("n-;"),
                            NumCell::Finite(x) => {
                                let _ = write!(key, "n{:016x};", x.to_bits());
                            }
                            NumCell::NonFinite => key.push_str("nf;"),
                            NumCell::NonNumeric => key.push_str("nn;"),
                        },
                    }
                }
                key
            })
            .collect()
    }
}

/// Build the text cell of one value (`None` for null).
fn text_cell(v: &Value) -> Option<TextCell> {
    if v.is_null() {
        return None;
    }
    let lower = v.render().to_lowercase();
    let chars: Vec<char> = lower.chars().collect();
    let ascii = lower.is_ascii().then(|| lower.as_bytes().to_vec());
    let tokens = tokens_of(&lower);
    Some(TextCell {
        lower,
        chars,
        ascii,
        tokens,
    })
}

/// Classify one value under the numeric comparator.
fn num_cell(v: &Value) -> NumCell {
    if v.is_null() {
        return NumCell::Null;
    }
    match v.as_f64() {
        Some(x) if x.is_finite() => NumCell::Finite(x),
        Some(_) => NumCell::NonFinite,
        None => NumCell::NonNumeric,
    }
}

/// `wrangler_match::strsim::token_jaccard`'s token set, built once per row.
/// The serial path hands `token_jaccard` the lowercased rendering, which it
/// lowercases again — mirrored here so the sets are identical.
fn tokens_of(s: &str) -> Vec<String> {
    let mut out: Vec<String> = s
        .to_lowercase()
        .split(|c: char| c.is_whitespace() || c == '_' || c == '-' || c == '.')
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .collect();
    out.sort();
    out.dedup();
    out
}

/// One field's contribution to a pair — the compiled mirror of the serial
/// `value_similarity`.
fn field_similarity(cells: &FieldCells, i: usize, j: usize, scratch: &mut SimScratch) -> Option<f64> {
    match cells {
        FieldCells::Exact(cells) => match (&cells[i], &cells[j]) {
            (Some(a), Some(b)) => Some(if a == b { 1.0 } else { 0.0 }),
            _ => None,
        },
        FieldCells::Text(cells) => match (&cells[i], &cells[j]) {
            (Some(a), Some(b)) => Some(text_similarity(a, b, scratch)),
            _ => None,
        },
        FieldCells::Numeric { cells, scale } => match (cells[i], cells[j]) {
            (NumCell::Null, _) | (_, NumCell::Null) => None,
            (NumCell::NonFinite, _) | (_, NumCell::NonFinite) => None,
            (NumCell::Finite(x), NumCell::Finite(y)) => {
                let denom = scale.max(1e-9) * x.abs().max(y.abs()).max(1.0);
                Some(1.0 - ((x - y).abs() / denom).min(1.0))
            }
            _ => Some(0.0),
        },
    }
}

/// Max of Jaro–Winkler, token Jaccard and Levenshtein similarity over the
/// precomputed cells — the compiled `SimKind::Text`, arithmetic identical to
/// the `wrangler_match::strsim` originals. Levenshtein is skipped when it
/// provably cannot raise the running max: its distance is at least the
/// length difference, so its similarity is at most
/// `1 − |len(a)−len(b)| / max_len`; both divisions round the same way, so
/// the bound holds in f64 too, and skipping leaves the max bit-unchanged.
fn text_similarity(a: &TextCell, b: &TextCell, scratch: &mut SimScratch) -> f64 {
    if a.lower == b.lower {
        return 1.0;
    }
    // ASCII pairs run the same comparisons over bytes (see `TextCell::
    // ascii`); any non-ASCII side falls back to the char slices.
    let jw = match (&a.ascii, &b.ascii) {
        (Some(ba), Some(bb)) => jaro_winkler_chars(ba, bb, scratch),
        _ => jaro_winkler_chars(&a.chars, &b.chars, scratch),
    };
    let best = jw.max(token_jaccard_sorted(&a.tokens, &b.tokens));
    // The lowers differ, so at least one side is non-empty: max_len ≥ 1.
    let max_len = a.chars.len().max(b.chars.len());
    let lev_upper = 1.0 - a.chars.len().abs_diff(b.chars.len()) as f64 / max_len as f64;
    if lev_upper > best {
        let lev = match (&a.ascii, &b.ascii) {
            (Some(ba), Some(bb)) => levenshtein_sim_bytes(ba, bb, scratch),
            _ => levenshtein_sim_chars(&a.chars, &b.chars, scratch),
        };
        best.max(lev)
    } else {
        best
    }
}

/// `strsim::jaro` over pre-collected char slices, same arithmetic.
fn jaro_chars<T: PartialEq + Copy>(a: &[T], b: &[T], scratch: &mut SimScratch) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let b_used = &mut scratch.b_used;
    b_used.clear();
    b_used.resize(b.len(), false);
    let js = &mut scratch.js;
    js.clear();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for (j, used) in b_used.iter_mut().enumerate().take(hi).skip(lo) {
            if !*used && b[j] == *ca {
                *used = true;
                js.push(j);
                break;
            }
        }
    }
    let m = js.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: matched `b` positions in `a` order vs sorted. The
    // positions are distinct, so an unstable sort is deterministic.
    let by_j = &mut scratch.js_sorted;
    by_j.clear();
    by_j.extend_from_slice(js);
    by_j.sort_unstable();
    let t = js.iter().zip(by_j.iter()).filter(|(x, y)| x != y).count() as f64 / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// `strsim::jaro_winkler` over char slices (0.1 prefix scale, 4-char cap).
fn jaro_winkler_chars<T: PartialEq + Copy>(a: &[T], b: &[T], scratch: &mut SimScratch) -> f64 {
    let j = jaro_chars(a, b, scratch);
    let prefix = a
        .iter()
        .zip(b.iter())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// `strsim::levenshtein_sim` over char slices, same two-row DP.
fn levenshtein_sim_chars<T: PartialEq + Copy>(a: &[T], b: &[T], scratch: &mut SimScratch) -> f64 {
    let max = a.len().max(b.len());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein_chars(a, b, scratch) as f64 / max as f64
}

/// `levenshtein_sim` over ASCII byte slices: the distance comes from Myers'
/// bit-parallel algorithm when the shorter side fits one 64-bit word, the
/// row DP otherwise. Either way the distance is the exact edit distance —
/// the same integer the DP yields — so the similarity is bit-identical.
fn levenshtein_sim_bytes(a: &[u8], b: &[u8], scratch: &mut SimScratch) -> f64 {
    let max = a.len().max(b.len());
    if max == 0 {
        return 1.0;
    }
    let (pattern, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let dist = if pattern.is_empty() || pattern.len() > 64 {
        levenshtein_chars(a, b, scratch)
    } else {
        myers_distance(pattern, text, scratch)
    };
    1.0 - dist as f64 / max as f64
}

/// Exact Levenshtein distance via Myers' bit-parallel algorithm (Hyyrö's
/// formulation); requires `1 ≤ pattern.len() ≤ 64`. Each text symbol costs
/// a dozen word operations instead of a DP row.
fn myers_distance(pattern: &[u8], text: &[u8], scratch: &mut SimScratch) -> usize {
    let m = pattern.len();
    debug_assert!((1..=64).contains(&m));
    let peq = &mut scratch.peq;
    if peq.len() != 256 {
        peq.clear();
        peq.resize(256, 0);
    }
    for (i, &c) in pattern.iter().enumerate() {
        peq[c as usize] |= 1u64 << i;
    }
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m;
    let mask = 1u64 << (m - 1);
    for &c in text {
        let eq = peq[c as usize];
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        if ph & mask != 0 {
            score += 1;
        }
        if mh & mask != 0 {
            score -= 1;
        }
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    // Zero only the touched entries — cheaper than wiping 2 KiB per pair,
    // and leaves the table exactly as a fresh one.
    for &c in pattern {
        peq[c as usize] = 0;
    }
    score
}

fn levenshtein_chars<T: PartialEq + Copy>(a: &[T], b: &[T], scratch: &mut SimScratch) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let prev = &mut scratch.prev;
    prev.clear();
    prev.extend(0..=b.len());
    let cur = &mut scratch.cur;
    cur.clear();
    cur.resize(b.len() + 1, 0);
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(prev, cur);
    }
    prev[b.len()]
}

/// `strsim::token_jaccard` over pre-sorted, deduplicated token sets: the
/// intersection count of two sorted deduped lists equals the original's
/// `contains`-based count.
fn token_jaccard_sorted(ta: &[String], tb: &[String]) -> f64 {
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let mut inter = 0usize;
    let (mut x, mut y) = (0usize, 0usize);
    while x < ta.len() && y < tb.len() {
        match ta[x].cmp(&tb[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                x += 1;
                y += 1;
            }
        }
    }
    let union = ta.len() + tb.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{record_similarity, FieldSim};
    use crate::{candidates_naive, match_pairs};

    fn t() -> Table {
        Table::literal(
            &["name", "price", "sku"],
            vec![
                vec!["Acme Turbo Widget".into(), Value::Float(9.99), "a1".into()],
                vec!["Acme Turbo Widgey".into(), Value::Float(10.05), "A1".into()],
                vec!["Bolt Mini Gadget".into(), Value::Float(45.0), "b7".into()],
                vec!["Acme Turbo Widget".into(), Value::Null, Value::Null],
                vec![Value::Null, Value::Float(9.99), "a1".into()],
            ],
        )
        .unwrap()
    }

    fn cfg() -> ErConfig {
        ErConfig {
            fields: vec![
                FieldSim {
                    column: "name".into(),
                    weight: 3.0,
                    kind: SimKind::Text,
                },
                FieldSim {
                    column: "price".into(),
                    weight: 1.0,
                    kind: SimKind::Numeric { scale: 0.2 },
                },
                FieldSim {
                    column: "sku".into(),
                    weight: 1.0,
                    kind: SimKind::Exact,
                },
            ],
            threshold: 0.85,
        }
    }

    #[test]
    fn kernel_scores_are_bit_identical_to_serial() {
        let t = t();
        let cfg = cfg();
        let kernel = ErKernel::compile(&t, &cfg).unwrap();
        for (i, j) in candidates_naive(t.num_rows()) {
            let serial = record_similarity(&t, i, j, &cfg).unwrap();
            let compiled = kernel.score(i, j).unwrap();
            assert_eq!(serial.to_bits(), compiled.to_bits(), "pair ({i}, {j})");
        }
    }

    #[test]
    fn parallel_match_pairs_equals_serial_for_any_worker_count() {
        let t = t();
        let cfg = cfg();
        let cand = candidates_naive(t.num_rows());
        let serial = match_pairs(&t, &cand, &cfg).unwrap();
        let kernel = ErKernel::compile(&t, &cfg).unwrap();
        // Exact widths (including widths beyond the pair count) drive real
        // multi-thread blocked reassembly regardless of the machine's cores.
        for workers in 1..=cand.len() + 2 {
            let (parallel, stats) = kernel.match_pairs_parallel_exact(&cand, workers).unwrap();
            assert_eq!(parallel, serial, "workers = {workers}");
            let items: u64 = stats.iter().map(|s| s.items).sum();
            assert_eq!(items, cand.len() as u64);
            assert_eq!(stats.len(), workers.min(cand.len()));
            assert!(stats.iter().all(|s| s.items > 0), "idle worker");
        }
        // The policy entry point produces the same output after sizing.
        for workers in [1, 4, 64] {
            let (parallel, stats) = kernel.match_pairs_parallel(&cand, workers).unwrap();
            assert_eq!(parallel, serial, "workers = {workers}");
            assert_eq!(stats.iter().map(|s| s.items).sum::<u64>(), cand.len() as u64);
        }
    }

    #[test]
    fn pool_sizing_keeps_tiny_batches_serial() {
        // Fewer pairs than MIN_PAIRS_PER_WORKER: any requested width must
        // resolve to a single worker (no spawn, one stat).
        let kernel = ErKernel::compile(&t(), &cfg()).unwrap();
        let cand = candidates_naive(5);
        assert!(cand.len() < MIN_PAIRS_PER_WORKER);
        let (_, stats) = kernel.score_pairs_parallel(&cand, 8).unwrap();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].items, cand.len() as u64);
    }

    #[test]
    fn compile_rejects_unknown_column_before_scoring() {
        let bad = ErConfig::text_over(&["ghost"], 0.5);
        assert!(matches!(
            ErKernel::compile(&t(), &bad),
            Err(TableError::UnknownColumn(_))
        ));
    }

    #[test]
    fn score_rejects_out_of_range_rows() {
        let kernel = ErKernel::compile(&t(), &cfg()).unwrap();
        assert!(kernel.score(0, 99).is_err());
        assert!(kernel.score(99, 0).is_err());
    }

    #[test]
    fn content_keys_reflect_row_content_not_position() {
        let t = Table::literal(
            &["name", "price"],
            vec![
                vec!["Acme".into(), Value::Float(1.0)],
                vec!["Acme".into(), Value::Float(1.0)],
                vec!["Acme".into(), Value::Float(2.0)],
                vec![Value::Null, Value::Float(1.0)],
            ],
        )
        .unwrap();
        let cfg = ErConfig {
            fields: vec![
                FieldSim {
                    column: "name".into(),
                    weight: 1.0,
                    kind: SimKind::Text,
                },
                FieldSim {
                    column: "price".into(),
                    weight: 1.0,
                    kind: SimKind::Numeric { scale: 0.5 },
                },
            ],
            threshold: 0.5,
        };
        let keys = ErKernel::compile(&t, &cfg).unwrap().content_keys();
        assert_eq!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert_ne!(keys[0], keys[3]);
    }

    #[test]
    fn myers_distance_equals_row_dp() {
        // Randomized cross-check over a small alphabet (collisions and
        // repeats are the hard cases), plus length edges 1 and 64.
        let mut scratch = SimScratch::default();
        let mut state = 0x1401_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..500 {
            let la = (next() % 65) as usize;
            let lb = (next() % 65) as usize;
            let a: Vec<u8> = (0..la).map(|_| b'a' + (next() % 4) as u8).collect();
            let b: Vec<u8> = (0..lb).map(|_| b'a' + (next() % 4) as u8).collect();
            let dp = levenshtein_chars(&a, &b, &mut scratch);
            let (p, t) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
            if !p.is_empty() {
                assert_eq!(
                    myers_distance(p, t, &mut scratch),
                    dp,
                    "a={a:?} b={b:?}"
                );
            }
        }
        let long = vec![b'x'; 64];
        let mut edited = long.clone();
        edited[10] = b'y';
        edited.push(b'z');
        assert_eq!(
            myers_distance(&long, &edited, &mut scratch),
            levenshtein_chars(&long, &edited, &mut scratch)
        );
        assert_eq!(myers_distance(&[b'q'], b"abc", &mut scratch), 3);
    }

    #[test]
    fn empty_candidates_are_fine() {
        let kernel = ErKernel::compile(&t(), &cfg()).unwrap();
        let (scores, stats) = kernel.score_pairs_parallel(&[], 4).unwrap();
        assert!(scores.is_empty() && stats.is_empty());
    }
}
