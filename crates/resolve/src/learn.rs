//! Learning matching rules from labeled pairs (Corleone \[20\], hands-off
//! crowdsourcing for entity matching).
//!
//! Labeled duplicate/non-duplicate pairs — from the user or an aggregated
//! crowd — refine the matching rule: the decision threshold is set to the
//! F1-optimal cut over labeled scores, and field weights are tuned by
//! coordinate ascent. This is the §2.4 "feedback refines the automatically
//! generated rules" loop in executable form.

use wrangler_table::Table;

use crate::sim::{record_similarity, ErConfig};

/// One labeled pair.
#[derive(Debug, Clone, Copy)]
pub struct LabeledPair {
    /// Row indices.
    pub i: usize,
    /// Row indices.
    pub j: usize,
    /// True if the rows denote the same entity.
    pub is_match: bool,
}

/// Precision/recall/F1 of a rule on labeled pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrF1 {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

/// Evaluate a configuration against labels.
pub fn evaluate(
    table: &Table,
    labels: &[LabeledPair],
    cfg: &ErConfig,
) -> wrangler_table::Result<PrF1> {
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for l in labels {
        let predicted = record_similarity(table, l.i, l.j, cfg)? >= cfg.threshold;
        match (predicted, l.is_match) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp == 0 {
        1.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        1.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    Ok(PrF1 {
        precision,
        recall,
        f1,
    })
}

/// Fit the F1-optimal threshold for fixed weights: scores of all labeled
/// pairs are candidate cuts.
pub fn fit_threshold(
    table: &Table,
    labels: &[LabeledPair],
    cfg: &ErConfig,
) -> wrangler_table::Result<f64> {
    let mut scores: Vec<f64> = labels
        .iter()
        .map(|l| record_similarity(table, l.i, l.j, cfg))
        .collect::<wrangler_table::Result<_>>()?;
    scores.push(0.5);
    scores.sort_by(f64::total_cmp);
    scores.dedup();
    let mut best = (cfg.threshold, 0.0);
    for &t in &scores {
        // Keep thresholds in a sane band: noisy labels must not drive the
        // rule into merge-everything or merge-nothing regimes.
        let t = t.clamp(0.5, 0.995);
        let mut candidate = cfg.clone();
        candidate.threshold = t;
        let m = evaluate(table, labels, &candidate)?;
        if m.f1 > best.1 {
            best = (t, m.f1);
        }
    }
    Ok(best.0)
}

/// Refine a rule from labels: coordinate-ascent over field weights
/// (multiplying each by {0.5, 1, 2} and keeping improvements), refitting the
/// threshold at each step. Returns the improved config and its F1.
pub fn refine_rule(
    table: &Table,
    labels: &[LabeledPair],
    initial: &ErConfig,
    rounds: usize,
) -> wrangler_table::Result<(ErConfig, PrF1)> {
    let mut cfg = initial.clone();
    cfg.threshold = fit_threshold(table, labels, &cfg)?;
    let mut best = evaluate(table, labels, &cfg)?;
    for _ in 0..rounds {
        let mut improved = false;
        for fi in 0..cfg.fields.len() {
            for factor in [0.5, 2.0] {
                let mut cand = cfg.clone();
                cand.fields[fi].weight *= factor;
                cand.threshold = fit_threshold(table, labels, &cand)?;
                let m = evaluate(table, labels, &cand)?;
                if m.f1 > best.f1 + 1e-9 {
                    cfg = cand;
                    best = m;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    Ok((cfg, best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{FieldSim, SimKind};

    /// Names are noisy; sku is the reliable signal. A good learner should
    /// upweight sku and pick a sane threshold.
    fn t() -> Table {
        Table::literal(
            &["name", "sku"],
            vec![
                vec!["Acme Widget".into(), "a1".into()],
                vec!["Widget by Acme (Pro)".into(), "a1".into()], // dupe (rebranded)
                vec!["Acme Widget".into(), "a9".into()],          // NOT a dupe (same name!)
                vec!["Bolt Gadget".into(), "b2".into()],
                vec!["Bolt Gadget".into(), "b2".into()], // dupe
                vec!["Stark Flange".into(), "s3".into()],
            ],
        )
        .unwrap()
    }

    fn labels() -> Vec<LabeledPair> {
        vec![
            LabeledPair {
                i: 0,
                j: 1,
                is_match: true,
            },
            LabeledPair {
                i: 0,
                j: 2,
                is_match: false,
            },
            LabeledPair {
                i: 1,
                j: 2,
                is_match: false,
            },
            LabeledPair {
                i: 3,
                j: 4,
                is_match: true,
            },
            LabeledPair {
                i: 3,
                j: 5,
                is_match: false,
            },
            LabeledPair {
                i: 0,
                j: 3,
                is_match: false,
            },
        ]
    }

    fn initial() -> ErConfig {
        ErConfig {
            fields: vec![
                FieldSim {
                    column: "name".into(),
                    weight: 1.0,
                    kind: SimKind::Text,
                },
                FieldSim {
                    column: "sku".into(),
                    weight: 1.0,
                    kind: SimKind::Exact,
                },
            ],
            threshold: 0.97,
        }
    }

    #[test]
    fn evaluate_counts_correctly() {
        // With threshold 0.97 only exact pairs match: (3,4) tp, (0,1) fn.
        let m = evaluate(&t(), &labels(), &initial()).unwrap();
        assert!((m.recall - 0.5).abs() < 1e-12, "{m:?}");
        assert_eq!(m.precision, 1.0);
    }

    #[test]
    fn threshold_fitting_improves_f1() {
        let cfg = initial();
        let before = evaluate(&t(), &labels(), &cfg).unwrap();
        let mut tuned = cfg.clone();
        tuned.threshold = fit_threshold(&t(), &labels(), &cfg).unwrap();
        let after = evaluate(&t(), &labels(), &tuned).unwrap();
        assert!(after.f1 >= before.f1);
        assert!(after.f1 > 0.6, "{after:?}");
    }

    #[test]
    fn refinement_reaches_perfect_f1_on_separable_data() {
        let (cfg, m) = refine_rule(&t(), &labels(), &initial(), 5).unwrap();
        assert!((m.f1 - 1.0).abs() < 1e-9, "{m:?} with {cfg:?}");
        // The learner leaned on sku: its weight should not have shrunk
        // relative to the noisy name field.
        let name_w = cfg.fields[0].weight;
        let sku_w = cfg.fields[1].weight;
        assert!(sku_w >= name_w, "sku {sku_w} vs name {name_w}");
    }

    #[test]
    fn empty_labels_are_vacuous() {
        let m = evaluate(&t(), &[], &initial()).unwrap();
        assert_eq!(m.f1, 1.0);
    }
}
