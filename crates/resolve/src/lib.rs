//! `wrangler-resolve` — entity resolution (duplicate detection across
//! sources).
//!
//! Integrated data contains the same real-world entity many times — the
//! paper's Example 5 uses crowdsourcing "to identify duplicates, and thereby
//! to refine the automatically generated rules that determine when two
//! records represent the same real-world object \[20\]" (Corleone). The crate
//! provides the full classical stack:
//!
//! * [`sim`] — weighted record similarity over typed field comparators;
//! * [`kernel`] — the [`ErKernel`]: a config precompiled against one table
//!   (columns resolved, per-row renderings/token sets cached), scoring
//!   candidate pairs serially or across a deterministic strided worker pool
//!   with output bit-identical to the serial path;
//! * [`blocking`] — key-based blocking and sorted-neighbourhood candidate
//!   generation, versus the naive O(n²) baseline (the §4.3 scalability
//!   experiment E7 measures the crossover);
//! * [`cluster`] — union-find clustering of matched pairs into entities and
//!   representative selection;
//! * [`learn`] — threshold/weight learning from labeled pairs, the
//!   hands-off rule refinement of \[20\]: crowd labels in, better rules out.

pub mod blocking;
pub mod cluster;
pub mod kernel;
pub mod learn;
pub mod sim;

pub use blocking::{
    candidates_blocked, candidates_blocked_exact, candidates_naive, candidates_sorted_neighborhood,
};
pub use cluster::{cluster_pairs, UnionFind};
pub use kernel::{ErKernel, WorkerStat};
pub use sim::{record_similarity, ErConfig, FieldSim, SimKind};

use wrangler_table::Table;

/// A scored candidate pair (row indices, `i < j`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredPair {
    /// Lower row index.
    pub i: usize,
    /// Higher row index.
    pub j: usize,
    /// Record similarity in \[0, 1\].
    pub score: f64,
}

/// Score candidate pairs serially and keep those at or above the config
/// threshold. This is the uncompiled reference path — it re-renders both
/// rows for every pair — kept as the correctness oracle and the E14
/// baseline; the hot path is [`ErKernel`]. Column names are validated up
/// front, so an unknown column errors before any scoring (even with zero
/// candidates).
pub fn match_pairs(
    table: &Table,
    candidates: &[(usize, usize)],
    cfg: &ErConfig,
) -> wrangler_table::Result<Vec<ScoredPair>> {
    let cols = sim::resolve_columns(table, cfg)?;
    let mut out = Vec::new();
    for &(i, j) in candidates {
        let score = sim::record_similarity_resolved(table, i, j, cfg, &cols)?;
        if score >= cfg.threshold {
            out.push(ScoredPair {
                i: i.min(j),
                j: i.max(j),
                score,
            });
        }
    }
    Ok(out)
}

/// End-to-end ER: block, match (via the precompiled kernel), cluster.
/// Returns entity clusters of row indices (singletons included), in order
/// of first row.
pub fn resolve(
    table: &Table,
    blocking_column: &str,
    cfg: &ErConfig,
) -> wrangler_table::Result<Vec<Vec<usize>>> {
    let candidates = candidates_blocked(table, blocking_column)?;
    let pairs = ErKernel::compile(table, cfg)?.match_pairs(&candidates)?;
    Ok(cluster_pairs(
        table.num_rows(),
        pairs.iter().map(|p| (p.i, p.j)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_table::Value;

    fn dupes() -> Table {
        Table::literal(
            &["name", "price"],
            vec![
                vec!["Acme Turbo Widget".into(), Value::Float(9.99)],
                vec!["Acme Turbo Widgey".into(), Value::Float(10.05)], // typo dupe of 0
                vec!["Bolt Mini Gadget".into(), Value::Float(45.0)],
                vec!["Acme Turbo Widget".into(), Value::Float(9.99)], // exact dupe of 0
                vec!["Stark Mega Flange".into(), Value::Float(120.0)],
            ],
        )
        .unwrap()
    }

    fn cfg() -> ErConfig {
        ErConfig {
            fields: vec![
                FieldSim {
                    column: "name".into(),
                    weight: 3.0,
                    kind: SimKind::Text,
                },
                FieldSim {
                    column: "price".into(),
                    weight: 1.0,
                    kind: SimKind::Numeric { scale: 0.2 },
                },
            ],
            threshold: 0.85,
        }
    }

    #[test]
    fn end_to_end_resolution_groups_duplicates() {
        let clusters = resolve(&dupes(), "name", &cfg()).unwrap();
        assert_eq!(clusters.len(), 3);
        let big = clusters
            .iter()
            .find(|c| c.len() == 3)
            .expect("triple cluster");
        let mut sorted = big.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 3]);
    }

    #[test]
    fn match_pairs_rejects_unknown_column_before_scoring() {
        // The error must surface even when there is nothing to score: column
        // validation happens up front, not lazily inside the pair loop.
        let bad = ErConfig::text_over(&["ghost"], 0.5);
        assert!(match_pairs(&dupes(), &[], &bad).is_err());
        assert!(match_pairs(&dupes(), &[(0, 1)], &bad).is_err());
    }

    #[test]
    fn threshold_controls_strictness() {
        let mut strict = cfg();
        strict.threshold = 0.999;
        let clusters = resolve(&dupes(), "name", &strict).unwrap();
        // Only the exact duplicate pair survives.
        assert_eq!(clusters.iter().filter(|c| c.len() > 1).count(), 1);
        assert_eq!(clusters.len(), 4);
    }
}
