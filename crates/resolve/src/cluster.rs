//! Union-find clustering of matched pairs into entities.

/// Disjoint-set forest with union by rank and path compression.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; returns true if they were separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Materialize all sets, ordered by their smallest member; members sorted.
    pub fn clusters(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        // Members arrive in ascending x, so each set is already sorted and
        // keyed iteration yields the sets in root order; re-sort by smallest
        // member for a root-independent contract.
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        out.sort_by_key(|c| c[0]);
        out
    }
}

/// Cluster `n` records given matched pairs.
pub fn cluster_pairs(n: usize, pairs: impl IntoIterator<Item = (usize, usize)>) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(n);
    for (i, j) in pairs {
        uf.union(i, j);
    }
    uf.clusters()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitive_merging() {
        // 0-1, 1-2 → {0,1,2}; 3 alone.
        let clusters = cluster_pairs(4, [(0, 1), (1, 2)]);
        assert_eq!(clusters, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn union_reports_novelty() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
    }

    #[test]
    fn empty_and_singletons() {
        assert!(cluster_pairs(0, []).is_empty());
        let c = cluster_pairs(3, []);
        assert_eq!(c, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn clusters_deterministic_order() {
        let clusters = cluster_pairs(6, [(4, 5), (0, 3)]);
        assert_eq!(clusters, vec![vec![0, 3], vec![1], vec![2], vec![4, 5]]);
    }

    #[test]
    fn large_chain_compresses() {
        let n = 10_000;
        let pairs: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let clusters = cluster_pairs(n, pairs);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), n);
    }
}
