//! `wrangler-fusion` — conflict resolution and truth discovery.
//!
//! After integration, every entity attribute has *claims* from several
//! sources that disagree (Veracity). §3.1 observes that knowledge-base
//! construction "leans heavily on the assumption that correct facts occur
//! frequently (instance-based redundancy)" and that this breaks for "highly
//! transient information (e.g., pricing)". The crate therefore implements
//! the whole ladder:
//!
//! * [`claims`] — the claim model: (entity, attribute, value, source), with
//!   tolerance-aware value agreement;
//! * [`strategies`] — per-attribute conflict resolution: majority vote (the
//!   KBC baseline), latest-source, trust-weighted, and trust+freshness
//!   fusion (what transient data actually needs — experiment E9);
//! * [`kernel`] — the precompiled [`FuseKernel`]: per-source weights/decays
//!   hoisted out of the slot loop once per pass, blocked-chunk parallel
//!   fusion bit-identical to [`fuse_attribute`] for any worker count;
//! * [`truthfinder`](crate::truthfinder::truthfinder) — iterative joint estimation of source trust and value
//!   confidence (Yin, Han & Yu \[36\]), optionally seeded with master-data
//!   priors from the data context (§2.3: the ontology/master data "as a
//!   guide to the fusion of property values").

pub mod claims;
pub mod kernel;
pub mod strategies;
pub mod truthfinder;

pub use claims::{values_agree, Claim, ClaimSet};
pub use kernel::{FuseKernel, WorkerStat, MIN_SLOTS_PER_WORKER};
pub use strategies::{fuse_attribute, FusedValue, Strategy};
pub use truthfinder::{truthfinder, TruthFinderConfig, TruthFinderResult};
