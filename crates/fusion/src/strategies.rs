//! Per-slot conflict resolution strategies.

use wrangler_table::Value;

use crate::claims::ClaimSet;

/// Per-source context a strategy may consult, indexed by source id.
#[derive(Debug, Clone, Default)]
pub struct SourceContext {
    /// Trust in each source, in \[0, 1\] (uniform 0.5 if empty).
    pub trust: Vec<f64>,
    /// Age of each source's data in ticks (0 if empty).
    pub age: Vec<u64>,
}

impl SourceContext {
    /// Trust in source `s` (uniform 0.5 when unknown).
    pub fn trust_of(&self, s: usize) -> f64 {
        self.trust.get(s).copied().unwrap_or(0.5)
    }
    /// Age of source `s`'s data in ticks (0 when unknown).
    pub fn age_of(&self, s: usize) -> u64 {
        self.age.get(s).copied().unwrap_or(0)
    }
}

/// A conflict-resolution strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Most supporting sources wins (the KBC redundancy assumption, §3.1).
    MajorityVote,
    /// The claim from the freshest source wins outright.
    Latest,
    /// Highest summed source trust wins.
    TrustWeighted,
    /// Trust × freshness-decay weighted vote: what transient attributes
    /// (prices) need — a fresh, trusted source outvotes a stale majority.
    TrustAndFreshness {
        /// Age (ticks) at which a source's weight has decayed to ~1/e.
        half_life: f64,
    },
}

/// A fused slot value with its support.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedValue {
    /// The winning value.
    pub value: Value,
    /// Weight of the winning agreement class.
    pub weight: f64,
    /// Total weight across classes (confidence = weight / total).
    pub total_weight: f64,
    /// Sources supporting the winner.
    pub supporters: Vec<usize>,
    /// Freshness of the best winning evidence in \[0, 1\] (1.0 for strategies
    /// that do not reason about time). Unanimous-but-stale agreement is NOT
    /// full confidence for a transient attribute: the price may have moved
    /// since everyone last looked.
    pub freshness: f64,
}

impl FusedValue {
    /// Normalized, freshness-tempered confidence in the winner.
    pub fn confidence(&self) -> f64 {
        if self.total_weight <= 0.0 {
            0.0
        } else {
            (self.weight / self.total_weight) * self.freshness
        }
    }
}

/// Resolve one slot's claims. Returns `None` when there are no claims.
pub fn fuse_attribute(
    claims: &ClaimSet,
    entity: usize,
    attr: usize,
    strategy: Strategy,
    ctx: &SourceContext,
) -> Option<FusedValue> {
    let slot = claims.slot(entity, attr);
    if slot.is_empty() {
        return None;
    }
    if let Strategy::Latest = strategy {
        let freshest = slot
            .iter()
            .min_by_key(|c| (ctx.age_of(c.source), c.source))
            .expect("nonempty"); // lint-allow: guarded by the is_empty check above
        return Some(FusedValue {
            value: freshest.value.clone(),
            weight: 1.0,
            total_weight: 1.0,
            supporters: vec![freshest.source],
            freshness: 1.0,
        });
    }
    let weight_of = |source: usize| -> f64 {
        match strategy {
            Strategy::MajorityVote => 1.0,
            Strategy::TrustWeighted => ctx.trust_of(source),
            Strategy::TrustAndFreshness { half_life } => {
                let decay = (-(ctx.age_of(source) as f64) / half_life.max(1e-9)).exp();
                ctx.trust_of(source) * decay
            }
            // Latest returns early above; a unit weight keeps this closure
            // total instead of panicking if that early return ever moves.
            Strategy::Latest => 1.0,
        }
    };
    let classes = claims.agreement_classes(&slot);
    let mut total = 0.0;
    let mut best: Option<(f64, Value, Vec<usize>)> = None;
    for (value, members) in classes {
        let w: f64 = members.iter().map(|c| weight_of(c.source)).sum();
        total += w;
        let supporters: Vec<usize> = members.iter().map(|c| c.source).collect();
        // Deterministic tie-break: keep the earlier class (source order).
        if best.as_ref().is_none_or(|(bw, _, _)| w > *bw) {
            best = Some((w, value, supporters));
        }
    }
    let (weight, value, supporters) = best.expect("nonempty slot"); // lint-allow: caller passes a nonempty slot
    // For time-aware fusion, the confidence is additionally tempered by the
    // freshest winning evidence.
    let freshness = match strategy {
        Strategy::TrustAndFreshness { half_life } => supporters
            .iter()
            .map(|&s| (-(ctx.age_of(s) as f64) / half_life.max(1e-9)).exp())
            .fold(0.0f64, f64::max),
        _ => 1.0,
    };
    Some(FusedValue {
        value,
        weight,
        total_weight: total,
        supporters,
        freshness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 stale sources agree on the old price 10; 1 fresh trusted source says 12.
    fn transient_scenario() -> (ClaimSet, SourceContext) {
        let mut cs = ClaimSet::new(4);
        cs.rel_tol = 1e-6;
        for s in 0..3 {
            cs.add(0, 0, Value::Float(10.0), s);
        }
        cs.add(0, 0, Value::Float(12.0), 3);
        let ctx = SourceContext {
            trust: vec![0.6, 0.6, 0.6, 0.9],
            age: vec![9, 9, 9, 0],
        };
        (cs, ctx)
    }

    #[test]
    fn majority_vote_trusts_the_stale_crowd() {
        let (cs, ctx) = transient_scenario();
        let f = fuse_attribute(&cs, 0, 0, Strategy::MajorityVote, &ctx).unwrap();
        assert_eq!(f.value, Value::Float(10.0));
        assert_eq!(f.supporters.len(), 3);
        assert!((f.confidence() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn freshness_aware_fusion_recovers_the_live_price() {
        let (cs, ctx) = transient_scenario();
        let f = fuse_attribute(
            &cs,
            0,
            0,
            Strategy::TrustAndFreshness { half_life: 3.0 },
            &ctx,
        )
        .unwrap();
        assert_eq!(f.value, Value::Float(12.0));
        assert_eq!(f.supporters, vec![3]);
    }

    #[test]
    fn latest_strategy_picks_freshest_source() {
        let (cs, ctx) = transient_scenario();
        let f = fuse_attribute(&cs, 0, 0, Strategy::Latest, &ctx).unwrap();
        assert_eq!(f.value, Value::Float(12.0));
    }

    #[test]
    fn trust_weighted_overrules_untrusted_majority() {
        let mut cs = ClaimSet::new(3);
        cs.add(0, 0, "wrong".into(), 0);
        cs.add(0, 0, "wrong".into(), 1);
        cs.add(0, 0, "right".into(), 2);
        let ctx = SourceContext {
            trust: vec![0.2, 0.2, 0.95],
            age: vec![],
        };
        let f = fuse_attribute(&cs, 0, 0, Strategy::TrustWeighted, &ctx).unwrap();
        assert_eq!(f.value, Value::Str("right".into()));
    }

    #[test]
    fn empty_slot_is_none_and_single_claim_wins() {
        let mut cs = ClaimSet::new(1);
        assert!(
            fuse_attribute(&cs, 0, 0, Strategy::MajorityVote, &SourceContext::default()).is_none()
        );
        cs.add(0, 0, 7.into(), 0);
        let f =
            fuse_attribute(&cs, 0, 0, Strategy::MajorityVote, &SourceContext::default()).unwrap();
        assert_eq!(f.value, Value::Int(7));
        assert_eq!(f.confidence(), 1.0);
    }

    #[test]
    fn deterministic_tie_break() {
        let mut cs = ClaimSet::new(2);
        cs.add(0, 0, "a".into(), 0);
        cs.add(0, 0, "b".into(), 1);
        let f =
            fuse_attribute(&cs, 0, 0, Strategy::MajorityVote, &SourceContext::default()).unwrap();
        assert_eq!(f.value, Value::Str("a".into()));
        assert!((f.confidence() - 0.5).abs() < 1e-12);
    }
}
