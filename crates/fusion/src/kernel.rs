//! The precompiled fusion kernel: the ER-kernel treatment for the fuse
//! stage.
//!
//! [`fuse_attribute`](crate::strategies::fuse_attribute) is correct but
//! recomputes strategy state per claim per slot: `TrustAndFreshness`
//! evaluates `exp(-age/half_life)` for every member of every agreement
//! class, and every slot re-derives the same per-source trust lookups. With
//! tens of thousands of slots over the same handful of sources, that is the
//! fuse-stage analogue of the ER bug PR 4 fixed — per-item recomputation of
//! pass-invariant state.
//!
//! [`FuseKernel::compile`] hoists everything that depends only on
//! `(strategy, SourceContext)` out of the slot loop: one weight and one
//! freshness-decay value per source, computed once per pass with exactly the
//! same floating-point expressions `fuse_attribute` uses, in the same order.
//! Per-slot fusion then reads the arrays. Because the arithmetic is
//! identical operation-for-operation, kernel output is **bit-identical** to
//! `fuse_attribute` (property-tested via `f64::to_bits`).
//!
//! Parallelism uses the shared blocked worker pool
//! ([`wrangler_table::par`]): contiguous slot chunks, reassembled in chunk
//! order, so [`FuseKernel::fuse_slots_parallel`] returns byte-identical
//! output for any worker count. Pool width goes through
//! [`effective_workers`] with [`MIN_SLOTS_PER_WORKER`], so small claim sets
//! never pay thread-spawn overhead; `_exact` variants bypass the sizing
//! policy for tests and benchmarks that need a specific width.

use wrangler_table::par::{self, effective_workers};
use wrangler_table::TableError;

pub use wrangler_table::par::WorkerStat;

use crate::claims::ClaimSet;
use crate::strategies::{FusedValue, SourceContext, Strategy};

/// Below this many slots per worker, fan-out costs more than it saves:
/// fusing one slot is a few agreement-class comparisons, microseconds of
/// work against ~100µs of thread spawn/join.
pub const MIN_SLOTS_PER_WORKER: usize = 64;

/// A fusion pass compiled against one `(strategy, SourceContext)` pair.
///
/// Borrows the claim set; the context is copied into flat per-source
/// arrays at compile time, so the kernel is `Sync` and workers share it
/// read-only.
#[derive(Debug)]
pub struct FuseKernel<'a> {
    claims: &'a ClaimSet,
    strategy: Strategy,
    /// Per-source vote weight under `strategy` (unit for `MajorityVote`
    /// and `Latest`), precomputed with `fuse_attribute`'s expressions.
    weight: Vec<f64>,
    /// Per-source freshness decay `exp(-age/half_life)` (`1.0` for
    /// strategies that do not reason about time).
    decay: Vec<f64>,
    /// Per-source age in ticks (drives `Latest`).
    age: Vec<u64>,
}

impl<'a> FuseKernel<'a> {
    /// Precompile per-source weights and decays for one fusion pass.
    pub fn compile(claims: &'a ClaimSet, strategy: Strategy, ctx: &SourceContext) -> FuseKernel<'a> {
        let n = claims.num_sources;
        let mut weight = Vec::with_capacity(n);
        let mut decay = Vec::with_capacity(n);
        let mut age = Vec::with_capacity(n);
        for s in 0..n {
            // Exactly fuse_attribute's weight_of / freshness expressions, so
            // every f64 is bit-identical to the uncompiled path.
            let d = match strategy {
                Strategy::TrustAndFreshness { half_life } => {
                    (-(ctx.age_of(s) as f64) / half_life.max(1e-9)).exp()
                }
                _ => 1.0,
            };
            let w = match strategy {
                Strategy::MajorityVote | Strategy::Latest => 1.0,
                Strategy::TrustWeighted => ctx.trust_of(s),
                Strategy::TrustAndFreshness { .. } => ctx.trust_of(s) * d,
            };
            weight.push(w);
            decay.push(d);
            age.push(ctx.age_of(s));
        }
        FuseKernel {
            claims,
            strategy,
            weight,
            decay,
            age,
        }
    }

    /// The claim set this kernel was compiled against.
    pub fn claims(&self) -> &ClaimSet {
        self.claims
    }

    /// Resolve one slot, bit-identical to
    /// [`fuse_attribute`](crate::strategies::fuse_attribute) with the
    /// compiled strategy and context. Returns `None` when the slot has no
    /// claims.
    pub fn fuse_slot(&self, entity: usize, attr: usize) -> Option<FusedValue> {
        let slot = self.claims.slot(entity, attr);
        if slot.is_empty() {
            return None;
        }
        if let Strategy::Latest = self.strategy {
            let freshest = slot.iter().min_by_key(|c| (self.age[c.source], c.source))?;
            return Some(FusedValue {
                value: freshest.value.clone(),
                weight: 1.0,
                total_weight: 1.0,
                supporters: vec![freshest.source],
                freshness: 1.0,
            });
        }
        let classes = self.claims.agreement_classes(&slot);
        let mut total = 0.0;
        let mut best: Option<(f64, wrangler_table::Value, Vec<usize>)> = None;
        for (value, members) in classes {
            let w: f64 = members.iter().map(|c| self.weight[c.source]).sum();
            total += w;
            let supporters: Vec<usize> = members.iter().map(|c| c.source).collect();
            // Deterministic tie-break: keep the earlier class (source order).
            if best.as_ref().is_none_or(|(bw, _, _)| w > *bw) {
                best = Some((w, value, supporters));
            }
        }
        let (weight, value, supporters) = best?;
        let freshness = match self.strategy {
            Strategy::TrustAndFreshness { .. } => supporters
                .iter()
                .map(|&s| self.decay[s])
                .fold(0.0f64, f64::max),
            _ => 1.0,
        };
        Some(FusedValue {
            value,
            weight,
            total_weight: total,
            supporters,
            freshness,
        })
    }

    /// Serial reference: fuse every slot in order.
    pub fn fuse_slots(&self, slots: &[(usize, usize)]) -> Vec<Option<FusedValue>> {
        slots.iter().map(|&(e, a)| self.fuse_slot(e, a)).collect()
    }

    /// Parallel [`Self::fuse_slots`] over contiguous blocked chunks:
    /// identical output for any worker count, plus per-worker stats. The
    /// requested width goes through the pool-sizing policy
    /// ([`effective_workers`] with [`MIN_SLOTS_PER_WORKER`]).
    pub fn fuse_slots_parallel(
        &self,
        slots: &[(usize, usize)],
        workers: usize,
    ) -> wrangler_table::Result<(Vec<Option<FusedValue>>, Vec<WorkerStat>)> {
        self.fuse_slots_parallel_exact(
            slots,
            effective_workers(workers, slots.len(), MIN_SLOTS_PER_WORKER),
        )
    }

    /// [`Self::fuse_slots_parallel`] with an exact pool width (no sizing
    /// policy): spawns `min(workers, slots.len())` threads. For tests and
    /// benchmarks that must drive real multi-thread reassembly regardless
    /// of batch size or machine width.
    pub fn fuse_slots_parallel_exact(
        &self,
        slots: &[(usize, usize)],
        workers: usize,
    ) -> wrangler_table::Result<(Vec<Option<FusedValue>>, Vec<WorkerStat>)> {
        let (chunks, stats) = par::run_blocked(slots, workers, |_, chunk| {
            chunk
                .iter()
                .map(|&(e, a)| self.fuse_slot(e, a))
                .collect::<Vec<Option<FusedValue>>>()
        })
        .map_err(|msg| TableError::Unavailable(format!("fuse worker panicked: {msg}")))?;
        let mut fused = Vec::with_capacity(slots.len());
        for chunk in chunks {
            fused.extend(chunk);
        }
        Ok((fused, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::fuse_attribute;
    use wrangler_table::Value;

    fn scenario() -> (ClaimSet, SourceContext) {
        let mut cs = ClaimSet::new(4);
        cs.rel_tol = 1e-6;
        for s in 0..3 {
            cs.add(0, 0, Value::Float(10.0), s);
        }
        cs.add(0, 0, Value::Float(12.0), 3);
        cs.add(0, 1, "acme".into(), 0);
        cs.add(0, 1, "Acme ".into(), 2);
        cs.add(1, 0, Value::Int(7), 1);
        let ctx = SourceContext {
            trust: vec![0.6, 0.6, 0.6, 0.9],
            age: vec![9, 9, 9, 0],
        };
        (cs, ctx)
    }

    fn strategies() -> Vec<Strategy> {
        vec![
            Strategy::MajorityVote,
            Strategy::Latest,
            Strategy::TrustWeighted,
            Strategy::TrustAndFreshness { half_life: 3.0 },
        ]
    }

    #[test]
    fn kernel_is_bit_identical_to_fuse_attribute() {
        let (cs, ctx) = scenario();
        for strategy in strategies() {
            let kernel = FuseKernel::compile(&cs, strategy, &ctx);
            for (e, a) in cs.slots().into_iter().chain([(9, 9)]) {
                let reference = fuse_attribute(&cs, e, a, strategy, &ctx);
                let fused = kernel.fuse_slot(e, a);
                match (reference, fused) {
                    (None, None) => {}
                    (Some(r), Some(k)) => {
                        assert_eq!(r.value, k.value, "{strategy:?} slot ({e},{a})");
                        assert_eq!(r.supporters, k.supporters);
                        assert_eq!(r.weight.to_bits(), k.weight.to_bits());
                        assert_eq!(r.total_weight.to_bits(), k.total_weight.to_bits());
                        assert_eq!(r.freshness.to_bits(), k.freshness.to_bits());
                    }
                    (r, k) => panic!("{strategy:?} slot ({e},{a}): {r:?} vs {k:?}"),
                }
            }
        }
    }

    #[test]
    fn parallel_equals_serial_for_any_worker_count() {
        let (cs, ctx) = scenario();
        let kernel =
            FuseKernel::compile(&cs, Strategy::TrustAndFreshness { half_life: 3.0 }, &ctx);
        let slots = cs.slots();
        let serial = kernel.fuse_slots(&slots);
        for workers in 1..=slots.len() + 2 {
            let (par, stats) = kernel.fuse_slots_parallel_exact(&slots, workers).unwrap();
            assert_eq!(par, serial, "workers = {workers}");
            assert_eq!(
                stats.iter().map(|s| s.items).sum::<u64>(),
                slots.len() as u64
            );
            assert_eq!(stats.len(), workers.min(slots.len()));
            assert!(stats.iter().all(|s| s.items > 0), "idle worker");
        }
    }

    #[test]
    fn pool_sizing_keeps_tiny_batches_serial() {
        let (cs, ctx) = scenario();
        let kernel = FuseKernel::compile(&cs, Strategy::MajorityVote, &ctx);
        let slots = cs.slots();
        assert!(slots.len() < MIN_SLOTS_PER_WORKER);
        let (fused, stats) = kernel.fuse_slots_parallel(&slots, 8).unwrap();
        assert_eq!(fused, kernel.fuse_slots(&slots));
        assert_eq!(stats.len(), 1, "tiny batch must stay serial");
    }

    #[test]
    fn empty_slot_list_is_fine() {
        let (cs, ctx) = scenario();
        let kernel = FuseKernel::compile(&cs, Strategy::MajorityVote, &ctx);
        let (fused, stats) = kernel.fuse_slots_parallel(&[], 4).unwrap();
        assert!(fused.is_empty() && stats.is_empty());
    }
}
