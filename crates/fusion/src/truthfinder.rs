//! Iterative truth discovery (after Yin, Han & Yu, TruthFinder \[36\]).
//!
//! Source trust and value confidence are mutually recursive: a value is
//! credible if trusted sources claim it; a source is trustworthy if its
//! claims are credible. Fixed-point iteration from a uniform prior separates
//! good sources from bad ones *without any labels*, purely from the
//! agreement structure — and master data (§2.3) can seed it with a handful
//! of known-true facts to break symmetry faster.

use std::collections::BTreeMap;

use wrangler_table::Value;

use crate::claims::{values_agree, ClaimSet};

/// Configuration.
#[derive(Debug, Clone)]
pub struct TruthFinderConfig {
    /// Maximum fixed-point iterations.
    pub max_iterations: usize,
    /// Convergence threshold on max trust change.
    pub epsilon: f64,
    /// Dampening factor γ in the trust update (guards overconfidence).
    pub dampening: f64,
    /// Initial source trust.
    pub initial_trust: f64,
}

impl Default for TruthFinderConfig {
    fn default() -> Self {
        TruthFinderConfig {
            max_iterations: 20,
            epsilon: 1e-6,
            dampening: 0.3,
            initial_trust: 0.8,
        }
    }
}

/// Result: per-source trust and the winning value + confidence per slot.
#[derive(Debug, Clone)]
pub struct TruthFinderResult {
    /// Trust per source index.
    pub trust: Vec<f64>,
    /// (entity, attr) → (winning value, confidence).
    pub decisions: BTreeMap<(usize, usize), (Value, f64)>,
    /// Iterations executed.
    pub iterations: usize,
}

impl TruthFinderResult {
    /// The decided value for a slot, if any claims existed.
    pub fn value(&self, entity: usize, attr: usize) -> Option<&Value> {
        self.decisions.get(&(entity, attr)).map(|(v, _)| v)
    }

    /// Confidence of the decided value.
    pub fn confidence(&self, entity: usize, attr: usize) -> Option<f64> {
        self.decisions.get(&(entity, attr)).map(|(_, c)| *c)
    }
}

/// Known-true facts used to anchor trust (master data): (entity, attr, value).
pub type Anchors = Vec<(usize, usize, Value)>;

/// Per-slot agreement classes: each distinct value with its supporter sources.
type ClassesBySlot = BTreeMap<(usize, usize), Vec<(Value, Vec<usize>)>>;

/// Run truth discovery over a claim set.
pub fn truthfinder(
    claims: &ClaimSet,
    cfg: &TruthFinderConfig,
    anchors: &Anchors,
) -> TruthFinderResult {
    let n = claims.num_sources;
    let mut trust = vec![cfg.initial_trust.clamp(0.05, 0.95); n];
    let slots = claims.slots();
    // Index claims by slot once: the fixed-point loop must not rescan the
    // whole claim set per slot per iteration.
    let mut by_slot: BTreeMap<(usize, usize), Vec<&crate::claims::Claim>> = BTreeMap::new();
    for c in &claims.claims {
        by_slot.entry((c.entity, c.attr)).or_default().push(c);
    }
    // Agreement classes depend only on claim values and the tolerance —
    // never on trust — so compute them once per slot instead of once per
    // slot *per iteration*. Same for the anchor lookup (first anchor wins,
    // as the linear scan always did).
    let classes_by_slot: ClassesBySlot = slots
        .iter()
        .map(|&(e, a)| {
            let classes = claims
                .agreement_classes(&by_slot[&(e, a)])
                .into_iter()
                .map(|(v, members)| (v, members.iter().map(|c| c.source).collect()))
                .collect();
            ((e, a), classes)
        })
        .collect();
    let mut anchor_by_slot: BTreeMap<(usize, usize), &Value> = BTreeMap::new();
    for (e, a, truth) in anchors {
        anchor_by_slot.entry((*e, *a)).or_insert(truth);
    }
    let mut decisions: BTreeMap<(usize, usize), (Value, f64)> = BTreeMap::new();
    let mut iterations = 0;

    for _ in 0..cfg.max_iterations {
        iterations += 1;
        // 1. Value confidence per agreement class from current trust:
        //    conf = 1 − Π(1 − γ·t_s) over supporters, normalized per slot.
        decisions.clear();
        let mut per_source_conf: Vec<(f64, usize)> = vec![(0.0, 0); n]; // (sum conf, count)
        for &(e, a) in &slots {
            let classes = &classes_by_slot[&(e, a)];
            let mut scored: Vec<(&Value, f64, &Vec<usize>)> = classes
                .iter()
                .map(|(v, supporters)| {
                    let mut miss = 1.0;
                    for &s in supporters {
                        miss *= 1.0 - cfg.dampening * trust[s];
                    }
                    let mut conf = 1.0 - miss;
                    // Master-data anchor: a known-true value gets full
                    // confidence; a contradicted one is floored.
                    if let Some(truth) = anchor_by_slot.get(&(e, a)) {
                        conf = if values_agree(v, truth, claims.rel_tol) {
                            1.0
                        } else {
                            0.01
                        };
                    }
                    (v, conf, supporters)
                })
                .collect();
            let total: f64 = scored.iter().map(|(_, c, _)| *c).sum();
            if total > 0.0 {
                for (_, c, _) in &mut scored {
                    *c /= total;
                }
            }
            // Record per-source credit and the slot decision.
            let mut best: Option<(Value, f64)> = None;
            for (v, c, supporters) in &scored {
                for &s in supporters.iter() {
                    per_source_conf[s].0 += c;
                    per_source_conf[s].1 += 1;
                }
                if best.as_ref().is_none_or(|(_, bc)| c > bc) {
                    best = Some(((*v).clone(), *c));
                }
            }
            if let Some(b) = best {
                decisions.insert((e, a), b);
            }
        }
        // 2. Trust update: mean confidence of the source's claims, dampened
        //    towards the previous value for stability.
        let mut max_delta = 0.0f64;
        for s in 0..n {
            let (sum, count) = per_source_conf[s];
            if count == 0 {
                continue;
            }
            let target = (sum / count as f64).clamp(0.02, 0.98);
            let next = 0.5 * trust[s] + 0.5 * target;
            max_delta = max_delta.max((next - trust[s]).abs());
            trust[s] = next;
        }
        if max_delta < cfg.epsilon {
            break;
        }
    }
    TruthFinderResult {
        trust,
        decisions,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 honest sources agree on most facts; 1 liar contradicts everywhere.
    fn scenario() -> ClaimSet {
        let mut cs = ClaimSet::new(5);
        for e in 0..10 {
            for s in 0..4 {
                cs.add(e, 0, Value::Int(e as i64 * 10), s);
            }
            cs.add(e, 0, Value::Int(999), 4); // the liar
        }
        cs
    }

    #[test]
    fn honest_sources_earn_more_trust_than_liars() {
        let r = truthfinder(&scenario(), &TruthFinderConfig::default(), &Vec::new());
        for s in 0..4 {
            assert!(r.trust[s] > r.trust[4] + 0.2, "trust {:?}", r.trust);
        }
        for e in 0..10 {
            assert_eq!(r.value(e, 0), Some(&Value::Int(e as i64 * 10)));
            assert!(r.confidence(e, 0).unwrap() > 0.6);
        }
    }

    #[test]
    fn converges_and_reports_iterations() {
        let r = truthfinder(&scenario(), &TruthFinderConfig::default(), &Vec::new());
        assert!(r.iterations <= 20);
        assert!(r.iterations >= 2);
    }

    #[test]
    fn anchors_break_a_tie() {
        // Two equal camps; without anchors the first class wins by tie-break.
        let mut cs = ClaimSet::new(4);
        for e in 0..6 {
            cs.add(e, 0, "red".into(), 0);
            cs.add(e, 0, "red".into(), 1);
            cs.add(e, 0, "blue".into(), 2);
            cs.add(e, 0, "blue".into(), 3);
        }
        let anchors: Anchors = vec![(0, 0, "blue".into()), (1, 0, "blue".into())];
        let r = truthfinder(&cs, &TruthFinderConfig::default(), &anchors);
        // Anchored slots decide blue, and the blue camp's earned trust tips
        // the remaining unanchored slots too.
        for e in 0..6 {
            assert_eq!(
                r.value(e, 0),
                Some(&Value::Str("blue".into())),
                "entity {e}"
            );
        }
        assert!(r.trust[2] > r.trust[0]);
    }

    #[test]
    fn empty_claimset() {
        let cs = ClaimSet::new(3);
        let r = truthfinder(&cs, &TruthFinderConfig::default(), &Vec::new());
        assert!(r.decisions.is_empty());
        assert!(r.trust.iter().all(|&t| (t - 0.8).abs() < 1e-9));
    }

    #[test]
    fn numeric_tolerance_groups_close_claims() {
        let mut cs = ClaimSet::new(3);
        cs.rel_tol = 0.01;
        cs.add(0, 0, Value::Float(100.0), 0);
        cs.add(0, 0, Value::Float(100.3), 1);
        cs.add(0, 0, Value::Float(57.0), 2);
        let r = truthfinder(&cs, &TruthFinderConfig::default(), &Vec::new());
        assert!(values_agree(
            r.value(0, 0).unwrap(),
            &Value::Float(100.0),
            0.01
        ));
    }
}
