//! The claim model.

use wrangler_table::Value;

/// One source's assertion about one attribute of one entity.
#[derive(Debug, Clone, PartialEq)]
pub struct Claim {
    /// Entity identifier (cluster index from entity resolution).
    pub entity: usize,
    /// Attribute index within the target schema.
    pub attr: usize,
    /// The asserted value (never null — silence is not a claim).
    pub value: Value,
    /// Source index.
    pub source: usize,
}

/// Do two claimed values denote the same fact? Strings compare
/// case-insensitively trimmed; numerics within `rel_tol` relative tolerance;
/// otherwise exact.
pub fn values_agree(a: &Value, b: &Value, rel_tol: f64) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => {
            let scale = x.abs().max(y.abs()).max(1e-9);
            (x - y).abs() <= rel_tol * scale
        }
        _ => match (a.as_str(), b.as_str()) {
            (Some(x), Some(y)) => x.trim().eq_ignore_ascii_case(y.trim()),
            _ => a == b,
        },
    }
}

/// A set of claims over a shared entity/attribute space, indexed by slot so
/// per-slot access stays O(claims in slot) however large the set grows.
#[derive(Debug, Clone, Default)]
pub struct ClaimSet {
    /// All claims.
    pub claims: Vec<Claim>,
    /// Number of sources (source indices are `0..num_sources`).
    pub num_sources: usize,
    /// Relative tolerance for numeric agreement.
    pub rel_tol: f64,
    /// (entity, attr) → indices into `claims`.
    // Ordered map: `slots()` feeds the fusion loop in iteration order, so
    // the index must be key-ordered for deterministic replay.
    index: std::collections::BTreeMap<(usize, usize), Vec<usize>>,
}

impl ClaimSet {
    /// New claim set.
    pub fn new(num_sources: usize) -> ClaimSet {
        ClaimSet {
            claims: Vec::new(),
            num_sources,
            rel_tol: 1e-9,
            index: std::collections::BTreeMap::new(),
        }
    }

    /// Add a claim (ignored if the value is null).
    pub fn add(&mut self, entity: usize, attr: usize, value: Value, source: usize) {
        assert!(source < self.num_sources, "source index out of range");
        if !value.is_null() {
            self.index
                .entry((entity, attr))
                .or_default()
                .push(self.claims.len());
            self.claims.push(Claim {
                entity,
                attr,
                value,
                source,
            });
        }
    }

    /// Claims about one (entity, attribute) slot.
    pub fn slot(&self, entity: usize, attr: usize) -> Vec<&Claim> {
        self.index
            .get(&(entity, attr))
            .map(|idxs| idxs.iter().map(|&i| &self.claims[i]).collect())
            .unwrap_or_default()
    }

    /// All (entity, attribute) slots with at least one claim, in ascending
    /// order (the index is key-ordered).
    pub fn slots(&self) -> Vec<(usize, usize)> {
        self.index.keys().copied().collect()
    }

    /// Group a slot's claims into agreement classes: each class is a set of
    /// claims whose values mutually agree, represented by the first value.
    pub fn agreement_classes<'a>(&self, slot_claims: &[&'a Claim]) -> Vec<(Value, Vec<&'a Claim>)> {
        let mut classes: Vec<(Value, Vec<&Claim>)> = Vec::new();
        for c in slot_claims {
            match classes
                .iter_mut()
                .find(|(v, _)| values_agree(v, &c.value, self.rel_tol))
            {
                Some((_, members)) => members.push(c),
                None => classes.push((c.value.clone(), vec![c])),
            }
        }
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_semantics() {
        assert!(values_agree(&Value::Float(9.99), &Value::Float(9.99), 1e-9));
        assert!(values_agree(
            &Value::Float(100.0),
            &Value::Float(100.4),
            0.01
        ));
        assert!(!values_agree(
            &Value::Float(100.0),
            &Value::Float(102.0),
            0.01
        ));
        assert!(values_agree(&Value::Int(10), &Value::Float(10.0), 1e-9));
        assert!(values_agree(&" Acme ".into(), &"acme".into(), 0.0));
        assert!(!values_agree(&"acme".into(), &"bolt".into(), 0.0));
        assert!(values_agree(&Value::Bool(true), &Value::Bool(true), 0.0));
        assert!(!values_agree(&Value::Bool(true), &"true".into(), 0.0));
    }

    #[test]
    fn null_claims_dropped() {
        let mut cs = ClaimSet::new(2);
        cs.add(0, 0, Value::Null, 0);
        cs.add(0, 0, Value::Int(5), 1);
        assert_eq!(cs.claims.len(), 1);
    }

    #[test]
    fn slots_and_slot_lookup() {
        let mut cs = ClaimSet::new(3);
        cs.add(0, 0, 1.into(), 0);
        cs.add(0, 0, 2.into(), 1);
        cs.add(1, 2, 3.into(), 2);
        assert_eq!(cs.slots(), vec![(0, 0), (1, 2)]);
        assert_eq!(cs.slot(0, 0).len(), 2);
        assert_eq!(cs.slot(9, 9).len(), 0);
    }

    #[test]
    fn agreement_classes_group_tolerantly() {
        let mut cs = ClaimSet::new(4);
        cs.rel_tol = 0.01;
        cs.add(0, 0, Value::Float(100.0), 0);
        cs.add(0, 0, Value::Float(100.5), 1);
        cs.add(0, 0, Value::Float(200.0), 2);
        cs.add(0, 0, Value::Float(100.2), 3);
        let slot = cs.slot(0, 0);
        let classes = cs.agreement_classes(&slot);
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].1.len(), 3);
        assert_eq!(classes[1].1.len(), 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_source_panics() {
        let mut cs = ClaimSet::new(1);
        cs.add(0, 0, 1.into(), 5);
    }
}
