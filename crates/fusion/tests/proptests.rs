//! Property tests for fusion: agreement laws, strategy invariants, and
//! kernel/serial equivalence.

use proptest::prelude::*;
use wrangler_fusion::strategies::{fuse_attribute, SourceContext};
use wrangler_fusion::truthfinder::{truthfinder, TruthFinderConfig};
use wrangler_fusion::Strategy as FusionStrategy;
use wrangler_fusion::{values_agree, ClaimSet, FuseKernel};
use wrangler_table::Value;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        (-100.0f64..100.0).prop_map(Value::Float),
        "[a-c]{1,4}".prop_map(Value::Str),
    ]
}

fn arb_strategy() -> impl Strategy<Value = FusionStrategy> {
    prop_oneof![
        Just(FusionStrategy::MajorityVote),
        Just(FusionStrategy::Latest),
        Just(FusionStrategy::TrustWeighted),
        (1.0f64..10.0).prop_map(|h| FusionStrategy::TrustAndFreshness { half_life: h }),
    ]
}

fn claim_set(values: &[Value]) -> ClaimSet {
    let mut cs = ClaimSet::new(values.len().max(1));
    cs.rel_tol = 1e-9;
    for (s, v) in values.iter().enumerate() {
        cs.add(0, 0, v.clone(), s);
    }
    cs
}

proptest! {
    #[test]
    fn values_agree_is_reflexive_and_symmetric(a in arb_value(), b in arb_value(), tol in 0.0f64..0.2) {
        prop_assert!(values_agree(&a, &a, tol));
        prop_assert_eq!(values_agree(&a, &b, tol), values_agree(&b, &a, tol));
    }

    #[test]
    fn winner_is_a_claimed_value(values in prop::collection::vec(arb_value(), 1..12), strat in arb_strategy()) {
        let cs = claim_set(&values);
        let ctx = SourceContext {
            trust: (0..values.len()).map(|i| 0.3 + 0.05 * i as f64).collect(),
            age: (0..values.len() as u64).collect(),
        };
        let f = fuse_attribute(&cs, 0, 0, strat, &ctx).expect("nonempty");
        prop_assert!(values.iter().any(|v| values_agree(v, &f.value, cs.rel_tol)));
        let conf = f.confidence();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&conf), "conf={conf}");
        prop_assert!(!f.supporters.is_empty());
    }

    #[test]
    fn unanimous_claims_win_with_full_agreement(v in arb_value(), n in 1usize..8, strat in arb_strategy()) {
        let values = vec![v.clone(); n];
        let cs = claim_set(&values);
        let ctx = SourceContext::default();
        let f = fuse_attribute(&cs, 0, 0, strat, &ctx).expect("nonempty");
        prop_assert!(values_agree(&f.value, &v, cs.rel_tol));
        // Majority/trust confidence is 1 for unanimity (freshness may temper
        // the time-aware strategy, but never below zero).
        if matches!(strat, FusionStrategy::MajorityVote | FusionStrategy::TrustWeighted) {
            prop_assert!((f.confidence() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_slot_is_none(strat in arb_strategy()) {
        let cs = ClaimSet::new(3);
        prop_assert!(fuse_attribute(&cs, 0, 0, strat, &SourceContext::default()).is_none());
    }

    #[test]
    fn kernel_is_bit_identical_to_fuse_attribute(
        values in prop::collection::vec(prop::collection::vec(arb_value(), 0..5), 1..10),
        strat in arb_strategy(),
    ) {
        // Entities × sources grid; kernel per slot must match the uncompiled
        // path bit-for-bit in every f64 it reports.
        let sources = values.iter().map(Vec::len).max().unwrap_or(1).max(1);
        let mut cs = ClaimSet::new(sources);
        for (e, vs) in values.iter().enumerate() {
            for (s, v) in vs.iter().enumerate() {
                cs.add(e, 0, v.clone(), s);
            }
        }
        let ctx = SourceContext {
            trust: (0..sources).map(|i| 0.3 + 0.05 * i as f64).collect(),
            age: (0..sources as u64).collect(),
        };
        let kernel = FuseKernel::compile(&cs, strat, &ctx);
        for e in 0..values.len() {
            let reference = fuse_attribute(&cs, e, 0, strat, &ctx);
            let fused = kernel.fuse_slot(e, 0);
            match (reference, fused) {
                (None, None) => {}
                (Some(r), Some(k)) => {
                    prop_assert_eq!(&r.value, &k.value);
                    prop_assert_eq!(&r.supporters, &k.supporters);
                    prop_assert_eq!(r.weight.to_bits(), k.weight.to_bits());
                    prop_assert_eq!(r.total_weight.to_bits(), k.total_weight.to_bits());
                    prop_assert_eq!(r.freshness.to_bits(), k.freshness.to_bits());
                }
                (r, k) => prop_assert!(false, "slot ({e},0) diverged: {r:?} vs {k:?}"),
            }
        }
    }

    #[test]
    fn blocked_parallel_fusion_equals_serial(
        values in prop::collection::vec(prop::collection::vec(arb_value(), 0..4), 1..14),
        strat in arb_strategy(),
        workers in 1usize..9,
    ) {
        let sources = values.iter().map(Vec::len).max().unwrap_or(1).max(1);
        let mut cs = ClaimSet::new(sources);
        for (e, vs) in values.iter().enumerate() {
            for (s, v) in vs.iter().enumerate() {
                cs.add(e, 0, v.clone(), s);
                cs.add(e, 1, v.clone(), s);
            }
        }
        let ctx = SourceContext {
            trust: (0..sources).map(|i| 0.9 - 0.04 * i as f64).collect(),
            age: (0..sources as u64).rev().collect(),
        };
        let kernel = FuseKernel::compile(&cs, strat, &ctx);
        let slots = cs.slots();
        let serial = kernel.fuse_slots(&slots);
        // `_exact` bypasses the pool-sizing policy so worker counts 1–8
        // (including counts exceeding the slot count) drive real threads.
        let (par, stats) = kernel.fuse_slots_parallel_exact(&slots, workers).unwrap();
        prop_assert_eq!(par.len(), serial.len());
        for (a, b) in serial.iter().zip(&par) {
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    prop_assert_eq!(&x.value, &y.value);
                    prop_assert_eq!(&x.supporters, &y.supporters);
                    prop_assert_eq!(x.weight.to_bits(), y.weight.to_bits());
                    prop_assert_eq!(x.total_weight.to_bits(), y.total_weight.to_bits());
                    prop_assert_eq!(x.freshness.to_bits(), y.freshness.to_bits());
                }
                _ => prop_assert!(false, "serial/parallel slot divergence"),
            }
        }
        prop_assert_eq!(stats.iter().map(|s| s.items).sum::<u64>(), slots.len() as u64);
        prop_assert!(stats.iter().all(|s| s.items > 0), "idle worker");
        // The policy entry point fuses identically after sizing.
        let (policy, _) = kernel.fuse_slots_parallel(&slots, workers).unwrap();
        prop_assert_eq!(&policy, &par);
    }

    #[test]
    fn truthfinder_trust_stays_bounded(
        values in prop::collection::vec(prop::collection::vec(arb_value(), 1..5), 1..10),
    ) {
        // Entities × sources grid of claims.
        let sources = values.iter().map(Vec::len).max().unwrap_or(1);
        let mut cs = ClaimSet::new(sources);
        for (e, vs) in values.iter().enumerate() {
            for (s, v) in vs.iter().enumerate() {
                cs.add(e, 0, v.clone(), s);
            }
        }
        let r = truthfinder(&cs, &TruthFinderConfig::default(), &Vec::new());
        for &t in &r.trust {
            prop_assert!((0.0..=1.0).contains(&t));
        }
        for (e, vs) in values.iter().enumerate() {
            if let Some(v) = r.value(e, 0) {
                prop_assert!(vs.iter().any(|u| values_agree(u, v, cs.rel_tol)));
            }
            if let Some(c) = r.confidence(e, 0) {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
            }
        }
    }
}
