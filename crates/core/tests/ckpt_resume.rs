//! Crash → resume integration: kill a wrangle at every stage seam, rebuild
//! the session from scratch (simulating process restart), point it at the
//! same checkpoint store, and demand the resumed outcome be *byte-identical*
//! (`f64::to_bits` via the canonical table hash) to an uninterrupted run —
//! with quarantine, trust and breaker state preserved. Torn or bit-flipped
//! checkpoints must be detected and recomputed, never loaded.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use wrangler_context::{DataContext, Ontology, UserContext};
use wrangler_core::{
    scratch_dir, CheckpointStore, CrashPolicy, CrashSite, WrangleOutcome, Wrangler,
};
use wrangler_sources::faults::FaultConfig;
use wrangler_sources::{FleetConfig, SyntheticFleet};
use wrangler_table::{wire, DataType, Schema, Table, Value};

fn make_fleet(seed: u64) -> SyntheticFleet {
    let cfg = FleetConfig {
        num_products: 60,
        num_sources: 8,
        now: 20,
        coverage: (0.3, 0.8),
        error_rate: (0.02, 0.25),
        null_rate: (0.0, 0.1),
        staleness: (0, 10),
        ..FleetConfig::default()
    };
    wrangler_sources::synthetic::generate_fleet(&cfg, seed)
}

fn target_sample(fleet: &SyntheticFleet) -> Table {
    let catalog = fleet.truth.master_catalog();
    let mut fields = catalog.schema().fields().to_vec();
    fields.push(wrangler_table::Field::new("price", DataType::Float));
    let schema = Schema::new(fields).unwrap();
    let mut columns: Vec<Vec<Value>> = (0..catalog.num_columns())
        .map(|i| catalog.column(i).unwrap().to_vec())
        .collect();
    columns.push(vec![Value::Null; catalog.num_rows()]);
    Table::from_columns(schema, columns).unwrap()
}

/// Build the session exactly the same way every time — the restart
/// discipline resume depends on: same fleet seed, same config, same
/// (optional) fault injection.
fn build(fleet: &SyntheticFleet, faults: Option<&FaultConfig>) -> Wrangler {
    let mut ctx = DataContext::with_ontology(Ontology::ecommerce());
    ctx.add_master("product", fleet.truth.master_catalog(), "sku")
        .unwrap();
    let mut w = Wrangler::new(
        UserContext::balanced("resume-test"),
        ctx,
        target_sample(fleet),
    );
    w.set_now(fleet.truth.now);
    for s in fleet.registry.iter() {
        w.add_source(s.meta.clone(), s.table.clone());
    }
    w = w.with_er_workers(2).with_fuse_workers(2);
    if let Some(cfg) = faults {
        w.inject_faults(cfg);
    }
    w
}

/// Everything byte-identity covers: the delivered table (canonical wire
/// hash, `f64::to_bits` exact), the selection, the acquisition story, and
/// the session's post-pass trust/breaker/containment state.
fn fingerprint(w: &Wrangler, out: &WrangleOutcome) -> (u64, String) {
    let table = wire::table_hash(&out.table);
    let state = format!(
        "sel={:?} skip={:?} deg={:?} att={} ticks={} cost={} ent={} util={} trust={:?} breakers={:?} contain={}",
        out.selected_sources,
        out.skipped_sources,
        out.degraded_sources,
        out.acquisition_attempts,
        out.acquisition_ticks,
        out.cost_spent.to_bits(),
        out.entities,
        out.utility.to_bits(),
        (0..w.num_sources())
            .map(|i| w.source_trust(wrangler_sources::SourceId(i as u32)).to_bits())
            .collect::<Vec<_>>(),
        (0..w.num_sources())
            .map(|i| w.acquisition.breaker_state(i))
            .collect::<Vec<_>>(),
        out.containment.render(),
    );
    (table, state)
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir); // lint-allow: test scratch cleanup
}

/// Run the crash half: a fresh session with the store attached and a panic
/// armed at `site`. Returns true if the pass was actually interrupted
/// (panicked at the seam, or surfaced as a structured error when the panic
/// was caught by a containment wrapper).
fn crash_at(fleet: &SyntheticFleet, faults: Option<&FaultConfig>, dir: &Path, site: CrashSite) -> bool {
    let store = CheckpointStore::open(dir).unwrap();
    let mut w = build(fleet, faults)
        .with_checkpoint_store(store)
        .with_crash_policy(CrashPolicy::panic_at(site));
    match catch_unwind(AssertUnwindSafe(|| w.wrangle())) {
        Err(_) => true,       // panicked at the seam
        Ok(Err(_)) => true,   // caught by a containment wrapper, surfaced as Err
        Ok(Ok(_)) => false,   // completed — the site was never reached
    }
}

#[test]
fn resume_is_byte_identical_at_every_crash_site() {
    let fleet = make_fleet(42);
    // Cold reference: no store, no crash.
    let mut cold = build(&fleet, None);
    let cold_out = cold.wrangle().unwrap();
    let cold_fp = fingerprint(&cold, &cold_out);

    for site in CrashSite::all() {
        let dir = scratch_dir(&format!("resume-{}", site.name()));
        cleanup(&dir);
        let interrupted = crash_at(&fleet, None, &dir, site);
        assert!(interrupted, "{site:?}: crash policy did not fire");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(
            store.num_records() > 0,
            "{site:?}: no checkpoints persisted before the crash"
        );
        // Restart: a fresh session (new process) pointed at the same store.
        let mut resumed = build(&fleet, None).with_checkpoint_store(store);
        let out = resumed.resume().unwrap();
        assert_eq!(
            fingerprint(&resumed, &out),
            cold_fp,
            "{site:?}: resumed outcome diverged from the uninterrupted run"
        );
        // The prefix replayed from checkpoints rather than recomputing.
        let hits: u64 = ["select", "acquire", "map_generate", "map_apply", "union", "er", "fuse"]
            .iter()
            .map(|s| {
                out.metrics
                    .counts
                    .get(&format!("ckpt.{s}.hits"))
                    .copied()
                    .unwrap_or(0)
            })
            .sum();
        assert!(hits > 0, "{site:?}: resume replayed nothing");
        cleanup(&dir);
    }
}

#[test]
fn resume_preserves_quarantine_and_breaker_state_under_faults() {
    let fleet = make_fleet(7);
    let faults = FaultConfig::with_rate(0.5, 99);
    let mut cold = build(&fleet, Some(&faults));
    let cold_out = cold.wrangle().unwrap();
    let cold_fp = fingerprint(&cold, &cold_out);
    assert!(
        !cold_out.skipped_sources.is_empty() || !cold_out.degraded_sources.is_empty(),
        "fixture should actually exercise faults"
    );

    for site in [CrashSite::AfterAcquire, CrashSite::MidEr, CrashSite::AfterFuse] {
        let dir = scratch_dir(&format!("resume-faults-{}", site.name()));
        cleanup(&dir);
        let interrupted = crash_at(&fleet, Some(&faults), &dir, site);
        assert!(interrupted, "{site:?}: crash policy did not fire");
        let store = CheckpointStore::open(&dir).unwrap();
        let mut resumed = build(&fleet, Some(&faults)).with_checkpoint_store(store);
        let out = resumed.resume().unwrap();
        assert_eq!(
            fingerprint(&resumed, &out),
            cold_fp,
            "{site:?}: trust/breaker/containment state diverged after resume"
        );
        cleanup(&dir);
    }
}

#[test]
fn torn_and_bitflipped_checkpoints_are_never_loaded() {
    let fleet = make_fleet(11);
    let mut cold = build(&fleet, None);
    let cold_out = cold.wrangle().unwrap();
    let cold_fp = fingerprint(&cold, &cold_out);

    for truncate in [Some(0.5), None] {
        let label = if truncate.is_some() { "torn" } else { "bitflip" };
        let dir = scratch_dir(&format!("resume-{label}"));
        cleanup(&dir);
        // Populate the store with a full run, then corrupt every record.
        {
            let store = CheckpointStore::open(&dir).unwrap();
            let mut w = build(&fleet, None).with_checkpoint_store(store);
            w.wrangle().unwrap();
        }
        let store = CheckpointStore::open(&dir).unwrap();
        let corrupted = store.corrupt_all_records(truncate);
        assert!(corrupted > 0);
        let mut resumed = build(&fleet, None).with_checkpoint_store(store);
        let out = resumed.resume().unwrap();
        // Corruption detected, nothing loaded, everything recomputed — and
        // the recomputed outcome is still byte-identical.
        assert_eq!(
            fingerprint(&resumed, &out),
            cold_fp,
            "{label}: output diverged after recomputing corrupt checkpoints"
        );
        let stats = resumed.checkpoint_store().unwrap().stats();
        assert_eq!(
            stats.torn_detected, corrupted as u64,
            "{label}: every corrupt record must be flagged"
        );
        assert_eq!(stats.hits, 0, "{label}: a corrupt snapshot was loaded");
        cleanup(&dir);
    }
}

#[test]
fn full_replay_restores_pair_cache_and_counters() {
    let fleet = make_fleet(23);
    let mut first = {
        let dir = scratch_dir("replay-pair-cache");
        cleanup(&dir);
        let store = CheckpointStore::open(&dir).unwrap();
        build(&fleet, None).with_checkpoint_store(store)
    };
    let out1 = first.wrangle().unwrap();
    let cache_len = first.working.pair_scores.len();
    let work = first.working.work;
    assert!(cache_len > 0, "ER should have populated the pair cache");

    // Fresh process, same store: every seam hits; the ER pair-score cache
    // and the work counters come back from the checkpoint, not from
    // recomputation.
    let dir = first.checkpoint_store().unwrap().dir().to_path_buf();
    let store = CheckpointStore::open(&dir).unwrap();
    let mut second = build(&fleet, None).with_checkpoint_store(store);
    let out2 = second.resume().unwrap();
    assert_eq!(
        wire::table_hash(&out1.table),
        wire::table_hash(&out2.table)
    );
    assert_eq!(second.working.pair_scores.len(), cache_len);
    assert_eq!(second.working.work, work);
    assert_eq!(out2.metrics.counts.get("ckpt.fuse.hits"), Some(&1));
    assert_eq!(out2.metrics.counts.get("er.cache.misses"), None);
    cleanup(&dir);
}

#[test]
fn resume_without_store_is_a_structured_error() {
    let fleet = make_fleet(3);
    let mut w = build(&fleet, None);
    let err = w.resume().unwrap_err();
    assert!(err.to_string().contains("checkpoint store"));
}

// ---------------------------------------------------------------------------
// Property: for ANY (crash site, fleet, fault profile, containment mode),
// crash-then-resume is indistinguishable from never having crashed — same
// table bytes, same trust/breaker/containment state, or the same structured
// error when the uninterrupted run itself fails.
// ---------------------------------------------------------------------------

use proptest::prelude::*;
use wrangler_core::ContainPolicy;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn resume_matches_cold_run_for_any_crash_and_fault_mix(
        site_idx in 0usize..8,
        fleet_seed in 0u64..4,
        fault_rate in 0.0f64..=0.5,
        fault_seed in any::<u64>(),
        mode in 0u8..3,
    ) {
        let site = CrashSite::all()[site_idx];
        let fleet = make_fleet(1000 + fleet_seed);
        let faults = FaultConfig::with_rate(fault_rate, fault_seed);
        let policy = match mode {
            0 => ContainPolicy::contain(),
            1 => ContainPolicy::abort(),
            _ => ContainPolicy::off(),
        };
        let session = || build(&fleet, Some(&faults)).with_contain_policy(policy.clone());

        let mut cold = session();
        let cold_run = cold.wrangle();

        let dir = scratch_dir(&format!(
            "prop-{}-{}-{}-{:x}-{}",
            site.name(),
            fleet_seed,
            fault_rate.to_bits(),
            fault_seed,
            mode
        ));
        cleanup(&dir);
        {
            let store = CheckpointStore::open(&dir).unwrap();
            let mut w = session()
                .with_checkpoint_store(store)
                .with_crash_policy(CrashPolicy::panic_at(site));
            let _ = catch_unwind(AssertUnwindSafe(|| w.wrangle()));
        }
        let store = CheckpointStore::open(&dir).unwrap();
        let mut resumed = session().with_checkpoint_store(store);
        let resumed_run = resumed.resume();

        match (cold_run, resumed_run) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(
                    fingerprint(&cold, &a),
                    fingerprint(&resumed, &b),
                    "resume diverged (site {:?}, mode {})", site, mode
                );
            }
            (Err(a), Err(b)) => {
                prop_assert_eq!(
                    a.to_string(),
                    b.to_string(),
                    "resume must fail identically (site {:?}, mode {})", site, mode
                );
            }
            (a, b) => {
                cleanup(&dir);
                return Err(format!(
                    "cold {:?} vs resumed {:?} disagree on success (site {:?}, mode {})",
                    a.map(|o| o.entities),
                    b.map(|o| o.entities),
                    site,
                    mode
                ));
            }
        }
        cleanup(&dir);
    }
}
