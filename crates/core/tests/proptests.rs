//! Property-based tests for the resilient-acquisition layer: laws the
//! backoff schedule must satisfy for any policy, and determinism of the
//! whole acquisition engine under a fixed seed.

use proptest::prelude::*;
use wrangler_core::acquire::{Acquisition, AcquisitionMode, RetryPolicy};
use wrangler_sources::faults::FaultConfig;
use wrangler_sources::{FleetConfig, SourceId};

/// Arbitrary-but-sane retry policies, spanning degenerate corners
/// (base 0, jitter 0/1, multiplier < 1, cap smaller than base).
fn arb_policy() -> impl Strategy<Value = RetryPolicy> {
    (
        0u64..=16,       // base_backoff (0 exercises the max(1) floor)
        0.5f64..=4.0,    // multiplier (< 1 exercises the max(1.0) floor)
        1u64..=64,       // max_backoff
        0.0f64..=1.0,    // jitter
        any::<u64>(),    // seed
    )
        .prop_map(|(base, mult, cap, jitter, seed)| RetryPolicy {
            max_attempts: 8,
            base_backoff: base,
            multiplier: mult,
            max_backoff: cap,
            jitter,
            seed,
            attempt_deadline: 8,
        })
}

proptest! {
    #[test]
    fn backoff_schedule_is_deterministic_per_seed(
        policy in arb_policy(),
        source in 0u32..200,
        retries in 0u32..12,
    ) {
        let a = policy.backoff_schedule(SourceId(source), retries);
        let b = policy.backoff_schedule(SourceId(source), retries);
        prop_assert_eq!(a, b, "same (policy, source) must replay identically");
    }

    #[test]
    fn backoff_schedule_is_monotone_and_bounded(
        policy in arb_policy(),
        source in 0u32..200,
        retries in 1u32..12,
    ) {
        let waits = policy.backoff_schedule(SourceId(source), retries);
        prop_assert_eq!(waits.len(), retries as usize);
        let cap = policy.max_backoff.max(1);
        let mut prev = 0u64;
        for (i, &w) in waits.iter().enumerate() {
            prop_assert!(w >= 1, "retry {i}: wait {w} below floor");
            prop_assert!(w <= cap, "retry {i}: wait {w} exceeds cap {cap}");
            prop_assert!(w >= prev, "retry {i}: wait {w} < previous {prev}");
            prev = w;
        }
    }

    #[test]
    fn backoff_jitter_never_shrinks_the_exponential_floor(
        source in 0u32..200,
        retries in 1u32..8,
    ) {
        // With jitter, every wait is >= the jitter-free schedule (jitter only
        // stretches), so total added latency is bounded below by pure
        // exponential backoff.
        let jittered = RetryPolicy { jitter: 0.25, ..RetryPolicy::default() };
        let bare = RetryPolicy { jitter: 0.0, ..RetryPolicy::default() };
        let j = jittered.backoff_schedule(SourceId(source), retries);
        let b = bare.backoff_schedule(SourceId(source), retries);
        for i in 0..retries as usize {
            prop_assert!(j[i] >= b[i], "retry {i}: jittered {} < bare {}", j[i], b[i]);
        }
    }

    #[test]
    fn acquisition_engine_is_deterministic(
        fault_rate in 0.0f64..=0.6,
        fault_seed in any::<u64>(),
    ) {
        // Two engines fed the same faulty fleet must produce byte-identical
        // reports: dispositions, attempt counts, and virtual-tick totals.
        let fleet = wrangler_sources::synthetic::generate_fleet(
            &FleetConfig { num_products: 30, num_sources: 8, now: 10, ..FleetConfig::default() },
            11,
        );
        let ids: Vec<SourceId> = (0..fleet.registry.len()).map(|i| SourceId(i as u32)).collect();
        let run = || {
            let mut reg = fleet.registry.clone();
            reg.inject_faults(&FaultConfig::with_rate(fault_rate, fault_seed));
            let mut eng = Acquisition::default(); // default mode is Resilient
            assert!(matches!(eng.mode, AcquisitionMode::Resilient));
            let report = eng.acquire_selected(&reg, &ids, 10);
            report
                .outcomes
                .iter()
                .map(|o| format!("{}:{:?}:{}:{}", o.id, o.disposition, o.attempts, o.ticks))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
