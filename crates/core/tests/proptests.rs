//! Property-based tests for the resilient-acquisition layer: laws the
//! backoff schedule must satisfy for any policy, and determinism of the
//! whole acquisition engine under a fixed seed.

use proptest::prelude::*;
use wrangler_core::acquire::{Acquisition, AcquisitionMode, RetryPolicy};
use wrangler_sources::faults::FaultConfig;
use wrangler_sources::{FleetConfig, SourceId};

/// Arbitrary-but-sane retry policies, spanning degenerate corners
/// (base 0, jitter 0/1, multiplier < 1, cap smaller than base).
fn arb_policy() -> impl Strategy<Value = RetryPolicy> {
    (
        0u64..=16,       // base_backoff (0 exercises the max(1) floor)
        0.5f64..=4.0,    // multiplier (< 1 exercises the max(1.0) floor)
        1u64..=64,       // max_backoff
        0.0f64..=1.0,    // jitter
        any::<u64>(),    // seed
    )
        .prop_map(|(base, mult, cap, jitter, seed)| RetryPolicy {
            max_attempts: 8,
            base_backoff: base,
            multiplier: mult,
            max_backoff: cap,
            jitter,
            seed,
            attempt_deadline: 8,
        })
}

proptest! {
    #[test]
    fn backoff_schedule_is_deterministic_per_seed(
        policy in arb_policy(),
        source in 0u32..200,
        retries in 0u32..12,
    ) {
        let a = policy.backoff_schedule(SourceId(source), retries);
        let b = policy.backoff_schedule(SourceId(source), retries);
        prop_assert_eq!(a, b, "same (policy, source) must replay identically");
    }

    #[test]
    fn backoff_schedule_is_monotone_and_bounded(
        policy in arb_policy(),
        source in 0u32..200,
        retries in 1u32..12,
    ) {
        let waits = policy.backoff_schedule(SourceId(source), retries);
        prop_assert_eq!(waits.len(), retries as usize);
        let cap = policy.max_backoff.max(1);
        let mut prev = 0u64;
        for (i, &w) in waits.iter().enumerate() {
            prop_assert!(w >= 1, "retry {i}: wait {w} below floor");
            prop_assert!(w <= cap, "retry {i}: wait {w} exceeds cap {cap}");
            prop_assert!(w >= prev, "retry {i}: wait {w} < previous {prev}");
            prev = w;
        }
    }

    #[test]
    fn backoff_jitter_never_shrinks_the_exponential_floor(
        source in 0u32..200,
        retries in 1u32..8,
    ) {
        // With jitter, every wait is >= the jitter-free schedule (jitter only
        // stretches), so total added latency is bounded below by pure
        // exponential backoff.
        let jittered = RetryPolicy { jitter: 0.25, ..RetryPolicy::default() };
        let bare = RetryPolicy { jitter: 0.0, ..RetryPolicy::default() };
        let j = jittered.backoff_schedule(SourceId(source), retries);
        let b = bare.backoff_schedule(SourceId(source), retries);
        for i in 0..retries as usize {
            prop_assert!(j[i] >= b[i], "retry {i}: jittered {} < bare {}", j[i], b[i]);
        }
    }

    #[test]
    fn acquisition_engine_is_deterministic(
        fault_rate in 0.0f64..=0.6,
        fault_seed in any::<u64>(),
    ) {
        // Two engines fed the same faulty fleet must produce byte-identical
        // reports: dispositions, attempt counts, and virtual-tick totals.
        let fleet = wrangler_sources::synthetic::generate_fleet(
            &FleetConfig { num_products: 30, num_sources: 8, now: 10, ..FleetConfig::default() },
            11,
        );
        let ids: Vec<SourceId> = (0..fleet.registry.len()).map(|i| SourceId(i as u32)).collect();
        let run = || {
            let mut reg = fleet.registry.clone();
            reg.inject_faults(&FaultConfig::with_rate(fault_rate, fault_seed));
            let mut eng = Acquisition::default(); // default mode is Resilient
            assert!(matches!(eng.mode, AcquisitionMode::Resilient));
            let report = eng.acquire_selected(&reg, &ids, 10);
            report
                .outcomes
                .iter()
                .map(|o| format!("{}:{:?}:{}:{}", o.id, o.disposition, o.attempts, o.ticks))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}

// ---------------------------------------------------------------------------
// Stage-level containment: mid-pipeline fault mixes must never panic the
// session, and the containment report must replay byte-identically.
// ---------------------------------------------------------------------------

use wrangler_context::{DataContext, Ontology, UserContext};
use wrangler_core::acquire::{BreakerConfig, BreakerState, CircuitBreaker};
use wrangler_core::{ChaosPolicy, ContainPolicy, Wrangler};
use wrangler_table::{DataType, Schema, Table, Value};

/// A ready-to-run session over a fresh small fleet (mirrors the harness in
/// `wrangler-bench`, which this crate cannot depend on).
fn contain_session(fleet: &wrangler_sources::SyntheticFleet) -> Wrangler {
    let mut ctx = DataContext::with_ontology(Ontology::ecommerce());
    ctx.add_master("product", fleet.truth.master_catalog(), "sku")
        .expect("catalog keyed by sku");
    let catalog = fleet.truth.master_catalog();
    let mut fields = catalog.schema().fields().to_vec();
    fields.push(wrangler_table::Field::new("price", DataType::Float));
    let schema = Schema::new(fields).expect("unique names");
    let mut columns: Vec<Vec<Value>> = (0..catalog.num_columns())
        .map(|i| catalog.column(i).unwrap().to_vec())
        .collect();
    columns.push(vec![Value::Null; catalog.num_rows()]);
    let sample = Table::from_columns(schema, columns).expect("aligned");
    let mut w = Wrangler::new(UserContext::balanced("p"), ctx, sample);
    w.set_now(fleet.truth.now);
    for s in fleet.registry.iter() {
        w.add_source(s.meta.clone(), s.table.clone());
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn wrangle_under_mid_pipeline_faults_never_panics(
        fault_rate in 0.0f64..=0.6,
        fault_seed in any::<u64>(),
        chaos_rate in 0.0f64..=0.4,
        chaos_seed in any::<u64>(),
    ) {
        let fleet = wrangler_sources::synthetic::generate_fleet(
            &FleetConfig { num_products: 25, num_sources: 6, now: 10, ..FleetConfig::default() },
            23,
        );
        let profiles = FaultConfig::with_rate(fault_rate, fault_seed)
            .assign_payload(fleet.registry.len());
        let run = || {
            let mut w = contain_session(&fleet);
            for (i, p) in profiles.iter().enumerate() {
                w.set_fault_profile(SourceId(i as u32), *p);
            }
            w.contain = ContainPolicy::contain()
                .with_chaos(ChaosPolicy::new(chaos_rate, chaos_seed));
            // The property under test: this call must never panic, whatever
            // mix of payload faults and injected stage panics it absorbs.
            let result = w.wrangle();
            let report = w.containment_report().render();
            (result.map(|o| (o.entities, o.selected_sources)), report)
        };
        let (a, ra) = run();
        let (b, rb) = run();
        match &a {
            Ok((entities, selected)) => {
                // Ok means survivors produced output, and no quarantined
                // source slipped back into the surviving set.
                prop_assert!(*entities > 0 || selected.is_empty() || fault_rate > 0.0);
            }
            Err(e) => {
                // Failures are structured table errors with a message, never
                // a propagated panic.
                prop_assert!(!e.to_string().is_empty());
            }
        }
        // Byte-identical replay: same outcome, same containment report.
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        prop_assert_eq!(ra, rb);
    }

    #[test]
    fn breaker_recovers_through_half_open_after_quarantine_trip(
        threshold in 1u32..=6,
        cooldown in 1u64..=48,
        probes in 1u32..=4,
        t0 in 0u64..1000,
    ) {
        let cfg = BreakerConfig {
            failure_threshold: threshold,
            cooldown,
            half_open_successes: probes,
        };
        let mut b = CircuitBreaker::new(cfg);
        // A quarantine-induced trip records a full threshold of failures.
        for _ in 0..threshold {
            b.record_failure(t0);
        }
        prop_assert!(matches!(b.state(), BreakerState::Open { .. }));
        // Blocked for the whole cooldown window...
        prop_assert_eq!(b.availability(t0 + cooldown - 1), 0.0);
        prop_assert!(!b.allow_request(t0 + cooldown - 1));
        // ...then half-open eligible, and the probe is let through.
        prop_assert_eq!(b.availability(t0 + cooldown), 0.5);
        prop_assert!(b.allow_request(t0 + cooldown));
        prop_assert_eq!(b.state(), BreakerState::HalfOpen);
        // One failure mid-probe re-opens immediately.
        let mut relapse = b.clone();
        relapse.record_failure(t0 + cooldown);
        prop_assert!(matches!(relapse.state(), BreakerState::Open { .. }));
        // Enough probe successes close the breaker for good.
        for i in 0..probes {
            prop_assert!(b.allow_request(t0 + cooldown + u64::from(i)));
            b.record_success();
        }
        prop_assert_eq!(b.state(), BreakerState::Closed);
        prop_assert_eq!(b.availability(t0 + cooldown + u64::from(probes)), 1.0);
    }
}

// ---------------------------------------------------------------------------
// Plan equivalence: the optimizer may push filters toward acquisition, share
// target profiles across sources and skip dead fusion slots — but only with
// verified justifications, and the delivered table must stay byte-identical
// to naive execution under any fleet, fault profile, containment mode,
// filter and projection combination.
// ---------------------------------------------------------------------------

use wrangler_core::OptMode;
use wrangler_table::Expr;

/// Bit-exact fingerprint: floats via `to_bits` (NaN-safe, -0.0 ≠ 0.0 safe),
/// everything else via debug rendering.
fn table_fingerprint(t: &Table) -> String {
    let mut s = String::new();
    for r in 0..t.num_rows() {
        for c in 0..t.num_columns() {
            match t.get(r, c).unwrap() {
                Value::Float(f) => s.push_str(&format!("f{:016x};", f.to_bits())),
                v => s.push_str(&format!("{v:?};")),
            }
        }
        s.push('\n');
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn optimized_execution_is_byte_identical_to_naive(
        fleet_seed in any::<u64>(),
        fault_rate in 0.0f64..=0.4,
        fault_seed in any::<u64>(),
        policy_pick in 0u8..3,
        with_filter in any::<bool>(),
        with_projection in any::<bool>(),
    ) {
        let fleet = wrangler_sources::synthetic::generate_fleet(
            &FleetConfig { num_products: 20, num_sources: 5, now: 10, ..FleetConfig::default() },
            fleet_seed,
        );
        let policy = match policy_pick {
            0 => ContainPolicy::off(),     // barrier down: pushdown legal
            1 => ContainPolicy::contain(), // barrier up: union placement only
            _ => ContainPolicy::abort(),
        };
        let profiles = FaultConfig::with_rate(fault_rate, fault_seed)
            .assign_payload(fleet.registry.len());
        let run = |mode: OptMode| {
            let mut w = contain_session(&fleet)
                .with_contain_policy(policy.clone())
                .with_opt_mode(mode);
            for (i, p) in profiles.iter().enumerate() {
                w.set_fault_profile(SourceId(i as u32), *p);
            }
            if with_filter {
                w = w.with_row_filter(
                    Expr::col("category")
                        .eq(Expr::lit("electronics"))
                        .or(Expr::col("category").eq(Expr::lit("home"))),
                );
            }
            if with_projection {
                w = w.with_output_columns(vec!["sku".into(), "name".into(), "price".into()]);
            }
            match w.wrangle() {
                Ok(o) => format!(
                    "ok:{}:{:?}:{}",
                    o.entities,
                    o.selected_sources,
                    table_fingerprint(&o.table)
                ),
                // Both modes must fail the same way (same structured error).
                Err(e) => format!("err:{e}"),
            }
        };
        prop_assert_eq!(run(OptMode::Optimized), run(OptMode::Naive));
    }
}

// ---------------------------------------------------------------------------
// Incremental rewrangling: whatever subset of sources receives a payload
// update between passes — under any fleet, fault profile and containment
// mode — the warm session's memo-reusing pass must deliver byte-for-byte
// the outcome of a cold session that never memoized anything.
// ---------------------------------------------------------------------------

/// A copy of `table` with its first numeric/string cell nudged (same
/// schema, different content). Tables with nothing to nudge return as-is.
fn nudged(table: &Table) -> Table {
    let schema = table.schema().clone();
    let mut cols: Vec<Vec<Value>> = (0..table.num_columns())
        .map(|i| table.column(i).unwrap().to_vec())
        .collect();
    'outer: for col in cols.iter_mut() {
        for v in col.iter_mut() {
            match v {
                Value::Float(f) => {
                    *f += 1.0;
                    break 'outer;
                }
                Value::Int(n) => {
                    *n += 1;
                    break 'outer;
                }
                Value::Str(s) => {
                    s.push_str(" v2");
                    break 'outer;
                }
                _ => {}
            }
        }
    }
    Table::from_columns(schema, cols).expect("same shape")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn incremental_rewrangle_is_byte_identical_to_cold(
        fleet_seed in any::<u64>(),
        fault_rate in 0.0f64..=0.4,
        fault_seed in any::<u64>(),
        policy_pick in 0u8..3,
        dirty_mask in 0u8..64, // bit i set => source i gets a payload update
    ) {
        let fleet = wrangler_sources::synthetic::generate_fleet(
            &FleetConfig { num_products: 20, num_sources: 6, now: 10, ..FleetConfig::default() },
            fleet_seed,
        );
        let policy = match policy_pick {
            0 => ContainPolicy::off(),
            1 => ContainPolicy::contain(),
            _ => ContainPolicy::abort(),
        };
        let profiles = FaultConfig::with_rate(fault_rate, fault_seed)
            .assign_payload(fleet.registry.len());
        let mut warm = contain_session(&fleet).with_contain_policy(policy);
        for (i, p) in profiles.iter().enumerate() {
            warm.set_fault_profile(SourceId(i as u32), *p);
        }
        // First pass populates the memos (it may legitimately fail under
        // abort-mode faults; the property still holds over the shared state).
        let _ = warm.wrangle();
        for i in 0..fleet.registry.len() {
            if dirty_mask & (1 << i) != 0 {
                let t = nudged(&fleet.registry.get(SourceId(i as u32)).unwrap().table);
                let _ = warm.update_source(SourceId(i as u32), t);
            }
        }
        // The cold comparator is the *same* session state with the engine
        // (and everything it memoized) dropped.
        let mut cold = warm.clone();
        cold.set_incr_enabled(false);
        let render = |r: wrangler_table::Result<wrangler_core::WrangleOutcome>| match r {
            Ok(o) => format!(
                "ok:{}:{:?}:{:?}:{}",
                o.entities,
                o.selected_sources,
                o.skipped_sources,
                table_fingerprint(&o.table)
            ),
            Err(e) => format!("err:{e}"),
        };
        let a = render(warm.wrangle());
        let b = render(cold.wrangle());
        prop_assert_eq!(a, b, "incremental reuse diverged from cold recompute");
    }
}
