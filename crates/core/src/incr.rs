//! The incremental dataflow engine: per-stage, per-source-partition
//! memoization inside the live session.
//!
//! PR 8's checkpoint chaining proved whole-stage replay across process
//! restarts; this module generalizes the same content-keyed idea *within*
//! the session and below stage grain. Three memo levels:
//!
//! - **Union blocks** ([`BlockMemo`]): each source's contribution to the
//!   union (its contiguous row block, post poison scan and post inline
//!   filter) is keyed on the pass/program fingerprints plus that source's
//!   effective payload, mapping and filter placement. A 1-source update on
//!   an n-source fleet recomputes one block; the other n−1 replay.
//! - **ER** ([`ErMemo`]): the whole clustering is keyed on the union
//!   content. When the union changed (some block is dirty), the memo still
//!   pays: its per-pair scores are kept under *packed row indices*, and the
//!   block layout lets rows of unchanged blocks remap old→new by offset, so
//!   clean-clean candidate pairs replay through an integer binary search
//!   instead of re-rendering string content keys.
//! - **Fuse** ([`FuseMemo`]): trust estimation + slot fusion is keyed on
//!   the union/clustering content plus every input that can ripple into a
//!   fused value (belief trust, source ages, master data).
//!
//! Reuse is proof-carrying at the union grain: a block replays only when
//! the plan analyzer established `PartitionIsolated` for its source — i.e.
//! the block is a pure function of (payload, mapping, compiled program,
//! containment policy) with no cross-source filter rewiring. Chaos-mode
//! passes disable the engine wholesale: fault rolls are stateful, so
//! nothing may be skipped. A hit never fakes the skipped work's telemetry;
//! it surfaces as explicit `incr.*` counters instead.

use std::collections::BTreeMap;

use wrangler_fusion::strategies::FusedValue;
use wrangler_table::Value;

/// One source's memoized union contribution.
#[derive(Debug, Clone)]
pub struct BlockMemo {
    /// Content key (see [`module docs`](self)): equal keys mean the live
    /// union loop would reproduce exactly these rows.
    pub key: u64,
    /// The rows the source contributed, in delivery order (source tag
    /// stripped — it is the map key).
    pub rows: Vec<Vec<Value>>,
    /// Rows the inline (Union-placed) filter dropped when the block was
    /// computed; replayed into the `union.filtered` counter.
    pub filtered: u64,
    /// Cells the poison scan walked at compute time — the work a hit
    /// skips. Zero when telemetry was off at compute time.
    pub scan_cells: u64,
    /// Bytes the poison scan walked at compute time (same caveat).
    pub scan_bytes: u64,
}

/// The memoized ER stage: full-stage replay plus the remap fast path.
#[derive(Debug, Clone)]
pub struct ErMemo {
    /// Full-stage key: pass/program fingerprints + union content hash.
    pub key: u64,
    /// Pass fingerprint the memo was computed under; the remap fast path
    /// requires an exact match (it replays raw scores across passes).
    pub pass_fp: u64,
    /// Program fingerprint the memo was computed under. Recorded for
    /// provenance, but *not* a remap precondition: a dirty source's
    /// regenerated mapping shifts the whole-program fingerprint without
    /// touching any clean row, and the layout's per-block content keys
    /// already pin row content exactly.
    pub prog_fp: u64,
    /// The clustering.
    pub clusters: Vec<Vec<usize>>,
    /// Row → entity index over the memoized union.
    pub row_entity: Vec<usize>,
    /// Union block layout at compute time: `(source, block key, rows)` per
    /// contiguous block, in union order. Remapping matches blocks by
    /// `(source, block key)` and shifts row indices by block offset.
    pub layout: Vec<(usize, u64, usize)>,
    /// Every candidate pair's score, keyed by [`pack_pair`] of its (old)
    /// row indices, sorted for binary search.
    pub scores: Vec<(u64, f64)>,
}

impl ErMemo {
    /// Score of a (packed) pair if it was a candidate in the memoized pass.
    pub fn score_of(&self, packed: u64) -> Option<f64> {
        self.scores
            .binary_search_by_key(&packed, |&(k, _)| k)
            .ok()
            .map(|idx| self.scores[idx].1)
    }
}

/// The memoized fuse stage (trust vector, ages, fused slots).
#[derive(Debug, Clone)]
pub struct FuseMemo {
    /// Content key over everything that can ripple into a fused value.
    pub key: u64,
    /// Blended per-source trust at compute time.
    pub trust: Vec<f64>,
    /// Per-source ages at compute time.
    pub age: Vec<u64>,
    /// Fused slot values, sorted by (entity, attr).
    pub fused: Vec<(usize, usize, FusedValue)>,
}

/// Pack a candidate pair's row indices into one ordered u64 key. Callers
/// pass them in any order; the smaller index always takes the high half,
/// matching the `i < j` candidate convention.
pub fn pack_pair(i: usize, j: usize) -> u64 {
    let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
    ((lo as u64) << 32) | (hi as u64 & 0xFFFF_FFFF)
}

/// Row-level mapping from the current pass's union to a memoized one.
/// Blocks match by `(source, block key)` (first occurrence wins, as blocks
/// are unique per source); matched blocks map row-for-row by offset.
/// `None` marks rows of new/changed blocks — those pairs fall back to the
/// content-keyed pair cache, which is always sound.
pub fn remap_rows(
    old_layout: &[(usize, u64, usize)],
    new_layout: &[(usize, u64, usize)],
) -> Vec<Option<usize>> {
    let mut old_starts: BTreeMap<(usize, u64), usize> = BTreeMap::new();
    let mut off = 0usize;
    for &(src, key, len) in old_layout {
        old_starts.entry((src, key)).or_insert(off);
        off += len;
    }
    let total: usize = new_layout.iter().map(|&(_, _, len)| len).sum();
    let mut map = Vec::with_capacity(total);
    for &(src, key, len) in new_layout {
        match old_starts.get(&(src, key)) {
            Some(&start) => map.extend((0..len).map(|r| Some(start + r))),
            None => map.extend(std::iter::repeat_n(None, len)),
        }
    }
    map
}

/// The session's incremental-reuse state. On by default; chaos-mode passes
/// and explicit [`set_enabled(false)`](IncrEngine::set_enabled) bypass it.
#[derive(Debug, Clone)]
pub struct IncrEngine {
    enabled: bool,
    /// Per-source union block memos.
    pub blocks: BTreeMap<usize, BlockMemo>,
    /// The ER memo (one per session — ER has no per-source partition).
    pub er: Option<ErMemo>,
    /// The fuse memo.
    pub fuse: Option<FuseMemo>,
}

impl Default for IncrEngine {
    fn default() -> Self {
        IncrEngine::new()
    }
}

impl IncrEngine {
    /// Fresh, enabled engine with nothing memoized.
    pub fn new() -> IncrEngine {
        IncrEngine {
            enabled: true,
            blocks: BTreeMap::new(),
            er: None,
            fuse: None,
        }
    }

    /// Is incremental reuse on?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turn the engine on/off. Turning it off drops every memo, so a
    /// disabled session is indistinguishable from one that never memoized
    /// (the cold comparator the identity tests clone).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        if !on {
            self.clear();
        }
    }

    /// Drop every memo (plan shape changed, ER rule refined, …).
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.er = None;
        self.fuse = None;
    }

    /// A source's data changed: its block memo is stale, and fusion (whose
    /// trust estimation reads every claim) must recompute. The ER memo
    /// survives — its key will miss, but its layout + packed scores still
    /// feed the remap fast path for the n−1 clean blocks.
    pub fn forget_source(&mut self, source: usize) {
        self.blocks.remove(&source);
        self.fuse = None;
    }

    /// Number of live memos, for tests and stats.
    pub fn memo_count(&self) -> usize {
        self.blocks.len() + usize::from(self.er.is_some()) + usize::from(self.fuse.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_pair_orders_and_separates() {
        assert_eq!(pack_pair(3, 7), pack_pair(7, 3));
        assert_ne!(pack_pair(3, 7), pack_pair(3, 8));
        assert_eq!(pack_pair(1, 2), (1u64 << 32) | 2);
    }

    #[test]
    fn remap_shifts_clean_blocks_by_offset() {
        // Old union: src0 (key 10, 2 rows), src1 (key 20, 3 rows).
        // New union: src0 changed (key 11, 4 rows), src1 unchanged.
        let old = [(0usize, 10u64, 2usize), (1, 20, 3)];
        let new = [(0usize, 11u64, 4usize), (1, 20, 3)];
        let map = remap_rows(&old, &new);
        assert_eq!(map.len(), 7);
        assert!(map[..4].iter().all(Option::is_none));
        // src1's block started at old offset 2, now at 4.
        assert_eq!(&map[4..], &[Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn remap_matches_blocks_across_reordering() {
        let old = [(0usize, 10u64, 1usize), (1, 20, 2)];
        let new = [(1usize, 20u64, 2usize), (0, 10, 1)];
        let map = remap_rows(&old, &new);
        assert_eq!(map, vec![Some(1), Some(2), Some(0)]);
    }

    #[test]
    fn er_memo_score_binary_search() {
        let memo = ErMemo {
            key: 0,
            pass_fp: 0,
            prog_fp: 0,
            clusters: Vec::new(),
            row_entity: Vec::new(),
            layout: Vec::new(),
            scores: vec![(pack_pair(0, 1), 0.5), (pack_pair(0, 2), 0.75)],
        };
        assert_eq!(memo.score_of(pack_pair(2, 0)), Some(0.75));
        assert_eq!(memo.score_of(pack_pair(1, 2)), None);
    }

    #[test]
    fn disabling_drops_memos() {
        let mut e = IncrEngine::new();
        assert!(e.enabled());
        e.blocks.insert(
            0,
            BlockMemo {
                key: 1,
                rows: Vec::new(),
                filtered: 0,
                scan_cells: 0,
                scan_bytes: 0,
            },
        );
        assert_eq!(e.memo_count(), 1);
        e.set_enabled(false);
        assert_eq!(e.memo_count(), 0);
        assert!(!e.enabled());
    }

    #[test]
    fn forget_source_keeps_er_for_remap() {
        let mut e = IncrEngine::new();
        e.blocks.insert(
            2,
            BlockMemo {
                key: 1,
                rows: Vec::new(),
                filtered: 0,
                scan_cells: 0,
                scan_bytes: 0,
            },
        );
        e.er = Some(ErMemo {
            key: 9,
            pass_fp: 0,
            prog_fp: 0,
            clusters: Vec::new(),
            row_entity: Vec::new(),
            layout: Vec::new(),
            scores: Vec::new(),
        });
        e.fuse = Some(FuseMemo {
            key: 9,
            trust: Vec::new(),
            age: Vec::new(),
            fused: Vec::new(),
        });
        e.forget_source(2);
        assert!(e.blocks.is_empty());
        assert!(e.er.is_some());
        assert!(e.fuse.is_none());
    }
}
