//! Stage-level fault containment.
//!
//! PR 1 made *acquisition* resilient: a source that fails to answer is
//! retried, breaker-gated, and finally skipped while the pass completes on
//! survivors. This module extends the same philosophy past the acquisition
//! boundary into the pipeline itself. A payload that clears acquisition and
//! then breaks `map_apply`, union, ER, or fuse must degrade the pass, not
//! kill it: the offending source is *quarantined* mid-pipeline, the event is
//! recorded in a [`ContainmentReport`], and the wrangle completes on the
//! surviving sources — exactly like acquisition degradation does today.
//!
//! Three mechanisms, all seeded-deterministic:
//!
//! * **Poison scanning** — rows are inspected at the union boundary for
//!   payloads the downstream stages cannot digest (non-finite floats,
//!   oversized cells, control bytes). Individual poison rows are dropped;
//!   a source exceeding [`ContainPolicy::poison_row_threshold`] is ejected.
//! * **Budgets / deadlines** — logical per-stage limits (row budget per
//!   source, alignment-cell budget for schema matching) play the role of
//!   wall-clock deadlines without breaking determinism, mirroring
//!   `acquire::RetryPolicy::attempt_deadline`.
//! * **Panic isolation** — per-source-partition `catch_unwind`, generalizing
//!   the ad-hoc worker-panic catch that used to live inline in `wrangler.rs`.
//!   A panicking partition quarantines its source; the hook-muted catch keeps
//!   stderr clean.
//!
//! The [`ChaosPolicy`] exists because the organic pipeline (post PR 3/4) is
//! NaN-safe and junk-tolerant: without injected panics the panic-isolation
//! path would be dead code in tests. Chaos rolls are drawn from the seed via
//! splitmix, so a chaos run is exactly reproducible.

use std::collections::BTreeMap;
use std::fmt;

use wrangler_sources::SourceId;
use wrangler_table::{TableError, Value};

use wrangler_obs::Telemetry;

/// Pipeline stages a guard can wrap, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Schema matching: generating a mapping per source.
    MapGenerate,
    /// Pre-flight lint gate over the plan and per-source artifacts.
    Preflight,
    /// Executing each source's mapping against its payload.
    MapApply,
    /// Union of mapped rows into the working set.
    Union,
    /// Entity resolution over the unioned rows.
    Er,
    /// Conflict resolution / fusion of claims into slots.
    Fuse,
    /// Final table assembly.
    Assemble,
}

impl Stage {
    /// Canonical lowercase name, used in counters and reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::MapGenerate => "map_generate",
            Stage::Preflight => "preflight",
            Stage::MapApply => "map_apply",
            Stage::Union => "union",
            Stage::Er => "er",
            Stage::Fuse => "fuse",
            Stage::Assemble => "assemble",
        }
    }

    /// All stages in execution order.
    pub fn all() -> [Stage; 7] {
        [
            Stage::MapGenerate,
            Stage::Preflight,
            Stage::MapApply,
            Stage::Union,
            Stage::Er,
            Stage::Fuse,
            Stage::Assemble,
        ]
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How the pipeline responds to a mid-stage fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContainMode {
    /// No scanning, no chaos, no quarantine: the legacy pipeline. Used as
    /// the overhead baseline in E15 — a wrangle under `Off` must cost the
    /// same as before this module existed.
    Off,
    /// Scans and budgets are enforced but the first violation aborts the
    /// whole pass with a structured error. The E15 "abort baseline".
    Abort,
    /// Quarantine-and-continue (the default): offending sources are ejected,
    /// the pass completes on survivors.
    #[default]
    Contain,
}

/// Deterministic mid-pipeline panic injection, for exercising the
/// panic-isolation path that organic data cannot reach.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPolicy {
    /// Probability in `[0, 1]` that a given (stage, source) partition panics.
    pub panic_rate: f64,
    /// Seed for the chaos rolls; independent of the fleet seed.
    pub seed: u64,
    /// Restrict injection to one stage (None = all guarded stages).
    pub only_stage: Option<Stage>,
}

impl ChaosPolicy {
    /// New policy injecting panics at `panic_rate` across all stages.
    pub fn new(panic_rate: f64, seed: u64) -> ChaosPolicy {
        ChaosPolicy {
            panic_rate,
            seed,
            only_stage: None,
        }
    }

    /// Restrict injection to `stage`.
    pub fn at_stage(mut self, stage: Stage) -> ChaosPolicy {
        self.only_stage = Some(stage);
        self
    }

    /// Deterministic roll: should the (stage, source) partition panic?
    pub fn should_panic(&self, stage: Stage, source: SourceId) -> bool {
        if let Some(only) = self.only_stage {
            if only != stage {
                return false;
            }
        }
        if self.panic_rate <= 0.0 {
            return false;
        }
        let z = mix3(self.seed, stage as u64 + 1, u64::from(source.0));
        unit_roll(z) < self.panic_rate
    }
}

/// splitmix64-style mixer over three words; the chaos twin of
/// `wrangler_sources::faults::mix`.
fn mix3(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a mixed word to `[0, 1)`.
fn unit_roll(z: u64) -> f64 {
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Containment configuration: mode, budgets, thresholds, optional chaos.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainPolicy {
    /// Response mode. Default [`ContainMode::Contain`].
    pub mode: ContainMode,
    /// Row budget per source at `map_apply`; excess rows are dropped
    /// (deterministic prefix) and counted as a deadline hit.
    pub max_rows_per_source: usize,
    /// A `Str` cell longer than this many bytes is poison.
    pub max_cell_bytes: usize,
    /// Alignment budget at `map_generate`: a source whose `rows × cols`
    /// exceeds this is quarantined before schema matching starts (the
    /// logical-clock deadline for the most expensive stage).
    pub max_align_cells: usize,
    /// A source dropping at least this many poison rows in one pass is
    /// ejected entirely rather than filtered row-by-row.
    pub poison_row_threshold: usize,
    /// When true (non-default), a per-source blocking lint report
    /// quarantines that source instead of failing the gate outright.
    pub quarantine_preflight: bool,
    /// Optional deterministic panic injection.
    pub chaos: Option<ChaosPolicy>,
}

impl Default for ContainPolicy {
    fn default() -> Self {
        ContainPolicy {
            mode: ContainMode::Contain,
            max_rows_per_source: 100_000,
            max_cell_bytes: 4096,
            max_align_cells: 2_000_000,
            poison_row_threshold: 8,
            quarantine_preflight: false,
            chaos: None,
        }
    }
}

impl ContainPolicy {
    /// Default quarantine-and-continue policy.
    pub fn contain() -> ContainPolicy {
        ContainPolicy::default()
    }

    /// Strict mode: scans on, first violation aborts the pass.
    pub fn abort() -> ContainPolicy {
        ContainPolicy {
            mode: ContainMode::Abort,
            ..ContainPolicy::default()
        }
    }

    /// Legacy mode: no scans, no chaos, no quarantine.
    pub fn off() -> ContainPolicy {
        ContainPolicy {
            mode: ContainMode::Off,
            ..ContainPolicy::default()
        }
    }

    /// Attach a chaos policy.
    pub fn with_chaos(mut self, chaos: ChaosPolicy) -> ContainPolicy {
        self.chaos = Some(chaos);
        self
    }

    /// True when poison scanning and budget checks run at all.
    pub fn scans_enabled(&self) -> bool {
        self.mode != ContainMode::Off
    }

    /// True in legacy mode.
    pub fn is_off(&self) -> bool {
        self.mode == ContainMode::Off
    }
}

/// One quarantine decision: which source, at which stage, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEvent {
    /// The ejected source.
    pub source: SourceId,
    /// The stage where the fault surfaced.
    pub stage: Stage,
    /// Human-readable reason (stable across runs at a fixed seed).
    pub reason: String,
}

/// Per-stage containment tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTallies {
    /// Sources ejected at this stage.
    pub quarantined: u64,
    /// Rows dropped at this stage (poison rows + budget truncation).
    pub dropped_rows: u64,
    /// Budget / deadline violations observed.
    pub deadline_hits: u64,
    /// Panics caught and converted to quarantines.
    pub panics_caught: u64,
}

impl StageTallies {
    fn is_zero(&self) -> bool {
        self.quarantined == 0
            && self.dropped_rows == 0
            && self.deadline_hits == 0
            && self.panics_caught == 0
    }
}

/// What containment did during one pass: every quarantine decision plus
/// per-stage tallies. Deterministic at a fixed seed — E15 asserts the
/// rendered report is byte-identical across double runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContainmentReport {
    /// Quarantine events in the order they were decided.
    pub quarantines: Vec<QuarantineEvent>,
    stages: BTreeMap<&'static str, StageTallies>,
}

impl ContainmentReport {
    /// Record a source ejection.
    pub fn record_quarantine(&mut self, source: SourceId, stage: Stage, reason: impl Into<String>) {
        self.quarantines.push(QuarantineEvent {
            source,
            stage,
            reason: reason.into(),
        });
        self.stages.entry(stage.name()).or_default().quarantined += 1;
    }

    /// Count `n` rows dropped at `stage`.
    pub fn drop_rows(&mut self, stage: Stage, n: u64) {
        self.stages.entry(stage.name()).or_default().dropped_rows += n;
    }

    /// Count a budget/deadline violation at `stage`.
    pub fn hit_deadline(&mut self, stage: Stage) {
        self.stages.entry(stage.name()).or_default().deadline_hits += 1;
    }

    /// Count a caught panic at `stage`.
    pub fn caught_panic(&mut self, stage: Stage) {
        self.stages.entry(stage.name()).or_default().panics_caught += 1;
    }

    /// Tallies for `stage` (zeroes if the stage never recorded anything).
    pub fn tallies(&self, stage: Stage) -> StageTallies {
        self.stages.get(stage.name()).copied().unwrap_or_default()
    }

    /// Overwrite `stage`'s tallies wholesale — the checkpoint-restore path,
    /// which rebuilds a report exactly as the crashed pass left it. A
    /// zero tally removes the entry so restored reports compare equal
    /// (`PartialEq`) to originals that never touched the stage.
    pub fn set_tallies(&mut self, stage: Stage, t: StageTallies) {
        if t.is_zero() {
            self.stages.remove(stage.name());
        } else {
            self.stages.insert(stage.name(), t);
        }
    }

    /// Ids of all quarantined sources, deduplicated, ascending.
    pub fn quarantined_sources(&self) -> Vec<SourceId> {
        let mut ids: Vec<SourceId> = self.quarantines.iter().map(|q| q.source).collect();
        ids.sort_by_key(|id| id.0);
        ids.dedup();
        ids
    }

    /// True when nothing was quarantined, dropped, or caught.
    pub fn is_clean(&self) -> bool {
        self.quarantines.is_empty() && self.stages.values().all(StageTallies::is_zero)
    }

    /// Summed tallies across all stages.
    pub fn totals(&self) -> StageTallies {
        let mut t = StageTallies::default();
        for s in self.stages.values() {
            t.quarantined += s.quarantined;
            t.dropped_rows += s.dropped_rows;
            t.deadline_hits += s.deadline_hits;
            t.panics_caught += s.panics_caught;
        }
        t
    }

    /// Canonical text rendering — stable across runs at a fixed seed, used
    /// by E15's double-run byte-identity check.
    pub fn render(&self) -> String {
        let mut out = String::from("containment report\n");
        if self.is_clean() {
            out.push_str("  clean pass: no quarantines, no drops\n");
            return out;
        }
        for (stage, t) in &self.stages {
            if t.is_zero() {
                continue;
            }
            out.push_str(&format!(
                "  {stage}: quarantined={} dropped_rows={} deadline_hits={} panics_caught={}\n",
                t.quarantined, t.dropped_rows, t.deadline_hits, t.panics_caught
            ));
        }
        for q in &self.quarantines {
            out.push_str(&format!(
                "  src{} @ {}: {}\n",
                q.source.0,
                q.stage.name(),
                q.reason
            ));
        }
        out
    }

    /// Emit `contain.<stage>.*` counters into the telemetry sink. Zero
    /// tallies are skipped, matching the obs convention that absent and
    /// zero are the same thing.
    pub fn emit(&self, obs: &mut Telemetry) {
        if !obs.is_on() {
            return;
        }
        for (stage, t) in &self.stages {
            if t.quarantined > 0 {
                obs.count(&format!("contain.{stage}.quarantined"), t.quarantined);
            }
            if t.dropped_rows > 0 {
                obs.count(&format!("contain.{stage}.dropped_rows"), t.dropped_rows);
            }
            if t.deadline_hits > 0 {
                obs.count(&format!("contain.{stage}.deadline_hits"), t.deadline_hits);
            }
            if t.panics_caught > 0 {
                obs.count(&format!("contain.{stage}.panics_caught"), t.panics_caught);
            }
        }
    }
}

/// Outcome of a guarded per-source stage execution.
#[derive(Debug)]
pub enum Guarded<T> {
    /// The closure completed; here is its value.
    Ok(T),
    /// The source was quarantined (Contain mode); the caller should drop it
    /// from the pass and continue.
    Quarantined,
    /// Fatal: propagate this error (Abort/Off modes, or zero survivors).
    Fatal(TableError),
}

// The panic-to-message adapter now lives in `wrangler_table::par` so the
// compute kernels in leaf crates (resolve, fusion) can use it for per-item
// isolation; re-exported here for the containment layer's callers.
pub use wrangler_table::par::{catch_quiet, panic_message};

/// Scan one row for payloads the pipeline must not ingest. Returns the
/// reason when poisoned. Newlines/tabs/CRs are legitimate in text cells;
/// other control bytes are not.
pub fn poison_reason(row: &[Value], policy: &ContainPolicy) -> Option<&'static str> {
    for v in row {
        match v {
            Value::Float(f) if !f.is_finite() => return Some("non-finite numeric cell"),
            Value::Str(s) => {
                if s.len() > policy.max_cell_bytes {
                    return Some("oversized cell");
                }
                if s.chars()
                    .any(|c| c.is_control() && c != '\n' && c != '\t' && c != '\r')
                {
                    return Some("control bytes in cell");
                }
            }
            _ => {}
        }
    }
    None
}

/// A guard wrapping one pipeline stage: runs per-source closures with panic
/// isolation and chaos injection, and converts faults into quarantine
/// decisions (Contain) or structured errors (Abort/Off).
pub struct StageGuard<'a> {
    stage: Stage,
    policy: &'a ContainPolicy,
    report: &'a mut ContainmentReport,
}

impl<'a> StageGuard<'a> {
    /// Guard `stage` under `policy`, recording into `report`.
    pub fn new(
        stage: Stage,
        policy: &'a ContainPolicy,
        report: &'a mut ContainmentReport,
    ) -> StageGuard<'a> {
        StageGuard {
            stage,
            policy,
            report,
        }
    }

    /// The guarded stage.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// Mutable access to the underlying report, for stage-specific tallies
    /// (e.g. counting dropped poison rows alongside a `run` call).
    pub fn report_mut(&mut self) -> &mut ContainmentReport {
        self.report
    }

    /// Run `f` for `source` with panic isolation and (in non-Off modes)
    /// chaos injection. An `Err` or panic quarantines the source in Contain
    /// mode and is fatal otherwise.
    pub fn run<T>(
        &mut self,
        source: SourceId,
        f: impl FnOnce() -> Result<T, TableError>,
    ) -> Guarded<T> {
        let chaos_hit = !self.policy.is_off()
            && self
                .policy
                .chaos
                .as_ref()
                .is_some_and(|c| c.should_panic(self.stage, source));
        let stage = self.stage;
        let outcome = catch_quiet(move || {
            if chaos_hit {
                panic!("chaos: injected {stage} panic"); // lint-allow: deterministic chaos injection, caught by this guard
            }
            f()
        });
        match outcome {
            Ok(Ok(value)) => Guarded::Ok(value),
            Ok(Err(e)) => match self.flag(source, &format!("error: {e}")) {
                None => Guarded::Quarantined,
                Some(fatal) => Guarded::Fatal(fatal),
            },
            Err(msg) => {
                self.report.caught_panic(self.stage);
                match self.flag(source, &format!("panicked: {msg}")) {
                    None => Guarded::Quarantined,
                    Some(fatal) => Guarded::Fatal(fatal),
                }
            }
        }
    }

    /// Flag `source` as faulty. In Contain mode this records a quarantine
    /// and returns `None` (caller continues on survivors); in Abort/Off it
    /// returns the structured error to propagate.
    pub fn flag(&mut self, source: SourceId, reason: &str) -> Option<TableError> {
        match self.policy.mode {
            ContainMode::Contain => {
                self.report.record_quarantine(source, self.stage, reason);
                None
            }
            ContainMode::Abort | ContainMode::Off => Some(TableError::Unavailable(format!(
                "src{}: {} at {} (abort mode)",
                source.0, reason, self.stage
            ))),
        }
    }

    /// Record a budget/deadline violation for `source` at this stage. In
    /// Contain mode `dropped` rows are tallied and the pass continues
    /// (`None`); otherwise the violation is fatal.
    pub fn deadline_excess(
        &mut self,
        source: SourceId,
        what: &str,
        dropped: u64,
    ) -> Option<TableError> {
        self.report.hit_deadline(self.stage);
        match self.policy.mode {
            ContainMode::Contain => {
                if dropped > 0 {
                    self.report.drop_rows(self.stage, dropped);
                }
                None
            }
            ContainMode::Abort | ContainMode::Off => Some(TableError::Unavailable(format!(
                "src{}: {} exceeded at {} (abort mode)",
                source.0, what, self.stage
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::all().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "map_generate",
                "preflight",
                "map_apply",
                "union",
                "er",
                "fuse",
                "assemble"
            ]
        );
    }

    #[test]
    fn chaos_rolls_are_deterministic_and_rate_scaled() {
        let c = ChaosPolicy::new(0.3, 99);
        let first: Vec<bool> = (0..200)
            .map(|i| c.should_panic(Stage::Union, SourceId(i)))
            .collect();
        let second: Vec<bool> = (0..200)
            .map(|i| c.should_panic(Stage::Union, SourceId(i)))
            .collect();
        assert_eq!(first, second);
        let hits = first.iter().filter(|&&b| b).count();
        assert!((30..=90).contains(&hits), "rate ~0.3, got {hits}/200");
        let zero = ChaosPolicy::new(0.0, 99);
        assert!((0..50).all(|i| !zero.should_panic(Stage::Er, SourceId(i))));
    }

    #[test]
    fn chaos_stage_restriction() {
        let c = ChaosPolicy::new(1.0, 7).at_stage(Stage::Fuse);
        assert!(c.should_panic(Stage::Fuse, SourceId(0)));
        assert!(!c.should_panic(Stage::Union, SourceId(0)));
    }

    #[test]
    fn catch_quiet_returns_value_or_message() {
        assert_eq!(catch_quiet(|| 42), Ok(42));
        let err = catch_quiet(|| -> i32 { panic!("boom {}", 7) }).unwrap_err();
        assert_eq!(err, "boom 7");
        // Subsequent normal execution is unaffected.
        assert_eq!(catch_quiet(|| "fine"), Ok("fine"));
    }

    #[test]
    fn poison_scan_catches_the_three_classes() {
        let policy = ContainPolicy::default();
        assert_eq!(poison_reason(&[Value::Int(1), Value::Null], &policy), None);
        assert_eq!(
            poison_reason(&[Value::Float(f64::NAN)], &policy),
            Some("non-finite numeric cell")
        );
        assert_eq!(
            poison_reason(&[Value::Float(f64::INFINITY)], &policy),
            Some("non-finite numeric cell")
        );
        let big = Value::Str("x".repeat(policy.max_cell_bytes + 1));
        assert_eq!(poison_reason(&[big], &policy), Some("oversized cell"));
        let ctl = Value::Str("ok\u{1}bad".into());
        assert_eq!(
            poison_reason(&[ctl], &policy),
            Some("control bytes in cell")
        );
        // Benign whitespace control chars pass.
        let ws = Value::Str("line1\nline2\tcol".into());
        assert_eq!(poison_reason(&[ws], &policy), None);
    }

    #[test]
    fn guard_quarantines_in_contain_mode_and_aborts_in_abort_mode() {
        let contain = ContainPolicy::contain();
        let mut report = ContainmentReport::default();
        let mut guard = StageGuard::new(Stage::MapApply, &contain, &mut report);
        match guard.run(SourceId(3), || -> Result<i32, TableError> {
            Err(TableError::Invalid("bad binding".into()))
        }) {
            Guarded::Quarantined => {}
            other => panic!("expected quarantine, got {other:?}"),
        }
        match guard.run(SourceId(4), || Ok(7)) {
            Guarded::Ok(7) => {}
            other => panic!("expected ok, got {other:?}"),
        }
        assert_eq!(report.tallies(Stage::MapApply).quarantined, 1);
        assert_eq!(report.quarantined_sources(), vec![SourceId(3)]);

        let abort = ContainPolicy::abort();
        let mut report = ContainmentReport::default();
        let mut guard = StageGuard::new(Stage::MapApply, &abort, &mut report);
        match guard.run(SourceId(3), || -> Result<i32, TableError> {
            Err(TableError::Invalid("bad binding".into()))
        }) {
            Guarded::Fatal(TableError::Unavailable(msg)) => {
                assert!(msg.contains("src3"), "{msg}");
                assert!(msg.contains("map_apply"), "{msg}");
            }
            other => panic!("expected fatal, got {other:?}"),
        }
    }

    #[test]
    fn guard_catches_panics_and_attributes_them() {
        let policy = ContainPolicy::contain();
        let mut report = ContainmentReport::default();
        let mut guard = StageGuard::new(Stage::Er, &policy, &mut report);
        match guard.run(SourceId(9), || -> Result<(), TableError> {
            panic!("worker exploded")
        }) {
            Guarded::Quarantined => {}
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert_eq!(report.tallies(Stage::Er).panics_caught, 1);
        let q = &report.quarantines[0];
        assert_eq!(q.source, SourceId(9));
        assert!(q.reason.contains("worker exploded"), "{}", q.reason);
    }

    #[test]
    fn chaos_injection_flows_through_the_guard() {
        let policy =
            ContainPolicy::contain().with_chaos(ChaosPolicy::new(1.0, 1).at_stage(Stage::Union));
        let mut report = ContainmentReport::default();
        let mut guard = StageGuard::new(Stage::Union, &policy, &mut report);
        match guard.run(SourceId(0), || Ok(())) {
            Guarded::Quarantined => {}
            other => panic!("expected chaos quarantine, got {other:?}"),
        }
        assert_eq!(report.tallies(Stage::Union).panics_caught, 1);
        // Off mode never rolls chaos.
        let off = ContainPolicy::off().with_chaos(ChaosPolicy::new(1.0, 1));
        let mut report = ContainmentReport::default();
        let mut guard = StageGuard::new(Stage::Union, &off, &mut report);
        match guard.run(SourceId(0), || Ok(5)) {
            Guarded::Ok(5) => {}
            other => panic!("off mode must not inject, got {other:?}"),
        }
    }

    #[test]
    fn deadline_excess_drops_rows_in_contain_and_is_fatal_in_abort() {
        let contain = ContainPolicy::contain();
        let mut report = ContainmentReport::default();
        let mut guard = StageGuard::new(Stage::MapApply, &contain, &mut report);
        assert!(guard
            .deadline_excess(SourceId(2), "row budget", 150)
            .is_none());
        let t = report.tallies(Stage::MapApply);
        assert_eq!(t.deadline_hits, 1);
        assert_eq!(t.dropped_rows, 150);

        let abort = ContainPolicy::abort();
        let mut report = ContainmentReport::default();
        let mut guard = StageGuard::new(Stage::MapApply, &abort, &mut report);
        let err = guard
            .deadline_excess(SourceId(2), "row budget", 150)
            .expect("abort mode is fatal"); // lint-allow: test
        assert!(matches!(err, TableError::Unavailable(_)));
    }

    #[test]
    fn report_render_is_canonical_and_deterministic() {
        let mut a = ContainmentReport::default();
        a.record_quarantine(SourceId(1), Stage::Union, "oversized cell");
        a.drop_rows(Stage::Union, 12);
        a.hit_deadline(Stage::MapApply);
        let mut b = ContainmentReport::default();
        b.record_quarantine(SourceId(1), Stage::Union, "oversized cell");
        b.drop_rows(Stage::Union, 12);
        b.hit_deadline(Stage::MapApply);
        assert_eq!(a.render(), b.render());
        assert!(a.render().contains("src1 @ union: oversized cell"));
        assert!(!a.is_clean());
        let totals = a.totals();
        assert_eq!(totals.quarantined, 1);
        assert_eq!(totals.dropped_rows, 12);
        assert_eq!(totals.deadline_hits, 1);

        let clean = ContainmentReport::default();
        assert!(clean.is_clean());
        assert!(clean.render().contains("clean pass"));
    }

    #[test]
    fn emit_writes_only_nonzero_counters() {
        use wrangler_obs::ObsMode;
        let mut report = ContainmentReport::default();
        report.record_quarantine(SourceId(0), Stage::Fuse, "chaos");
        report.caught_panic(Stage::Fuse);
        let mut obs = Telemetry::new(ObsMode::On);
        obs.start_pass();
        report.emit(&mut obs);
        let m = obs.report();
        let rendered = m.render_counts();
        assert!(rendered.contains("contain.fuse.quarantined"), "{rendered}");
        assert!(
            rendered.contains("contain.fuse.panics_caught"),
            "{rendered}"
        );
        assert!(!rendered.contains("dropped_rows"), "{rendered}");
    }
}

