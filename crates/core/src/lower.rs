//! Lowering a wrangle pass into the typed plan IR.
//!
//! This module is the *only* place in `wrangler-core` allowed to construct
//! `wrangler_plan::OpKind` nodes (`scripts/lint.sh` rule 5): everything else
//! in the crate consults the compiled [`wrangler_plan::PlanProgram`] through
//! its decision API. Lowering happens per wrangle, after mapping generation
//! — so every map node carries the real bindings, the `CastSafety` of each
//! binding, and (for columns the row filter references) a *cell-exact*
//! certificate computed against the actual acquired payload: mapping
//! normalization is the identity on every cell the source holds, so a
//! predicate over the raw column returns the same verdict as over the mapped
//! one. Those certificates are the facts the optimizer's pushdown rewrites
//! must cite.

use std::collections::BTreeMap;

use wrangler_mapping::{normalize::normalize_to, Mapping};
use wrangler_plan::{
    fingerprint_map, predicate_columns, rename_columns, ColType, Effects, FilterPlacement, OpKind,
    OpNode, PlanIr,
};
use wrangler_resolve::ErConfig;
use wrangler_table::{CastSafety, Expr, Schema, Table, Value};

use crate::contain::ContainPolicy;
use crate::planner::{Plan, SelectionStrategy};

/// One acquired source as the lowering sees it: the payload actually
/// delivered this pass (possibly degraded) plus its generated mapping.
pub struct LowerInput<'a> {
    /// Registry index of the source.
    pub source: usize,
    /// Source name, recorded on the acquire node.
    pub name: String,
    /// The raw table this pass will map.
    pub table: &'a Table,
    /// The mapping that will run over it.
    pub mapping: &'a Mapping,
}

/// Lower one wrangle pass into a [`PlanIr`].
///
/// The lowered plan is *naive*: every filter placement starts at the
/// always-legal `Union` position and every fuse slot starts live. The
/// optimizer promotes placements and kills dead slots only with analysis
/// facts in hand.
pub fn lower(
    inputs: &[LowerInput<'_>],
    target: &Schema,
    plan: &Plan,
    policy: &ContainPolicy,
    row_filter: Option<&Expr>,
    output_columns: Option<&[String]>,
    er_cfg: &ErConfig,
) -> PlanIr {
    let described = plan.describe();
    let effects_of = |step_name: &str| {
        described
            .iter()
            .find(|s| s.name == step_name)
            .map(Effects::from_step)
            .unwrap_or_default()
    };
    let select_fx = effects_of("source-selection");
    let acquire_fx = effects_of("acquisition");
    let map_fx = effects_of("mapping-generation");
    let er_fx = effects_of("entity-resolution");
    let fuse_fx = effects_of("fusion");

    // Cell-exactness is only certified for columns the filter references:
    // the certificate costs a scan of the raw column, and only pushdown
    // rewrites consume it.
    let certify: Vec<String> = row_filter.map(predicate_columns).unwrap_or_default();

    let target_cols = ColType::of_schema(target);
    let mut nodes = Vec::with_capacity(inputs.len() * 2 + 6);
    nodes.push(OpNode {
        id: 0,
        kind: OpKind::Select {
            strategy: match plan.selection {
                SelectionStrategy::AllRelevant => "all-relevant".to_string(),
                SelectionStrategy::MarginalGain => "marginal-gain".to_string(),
            },
        },
        inputs: vec![],
        schema: vec![],
        effects: select_fx,
    });
    let mut map_ids = Vec::with_capacity(inputs.len());
    for input in inputs {
        let source_schema = ColType::of_schema(input.table.schema());
        let acquire_id = nodes.len();
        nodes.push(OpNode {
            id: acquire_id,
            kind: OpKind::Acquire {
                source: input.source,
                name: input.name.clone(),
            },
            inputs: vec![0],
            schema: source_schema.clone(),
            effects: acquire_fx,
        });
        let bindings = input.mapping.bindings.clone();
        let casts: Vec<CastSafety> = target
            .fields()
            .iter()
            .zip(&bindings)
            .map(|(field, binding)| match binding {
                // An unbound field maps to an all-null column: nothing to lose.
                None => CastSafety::Lossless,
                Some(s) => source_schema
                    .get(*s)
                    .map(|c| c.dtype.cast_safety(field.dtype))
                    .unwrap_or(CastSafety::Incompatible),
            })
            .collect();
        let cell_exact: Vec<bool> = target
            .fields()
            .iter()
            .zip(&bindings)
            .map(|(field, binding)| {
                if !certify.contains(&field.name) {
                    return false;
                }
                match binding {
                    None => false,
                    Some(s) => binding_is_cell_exact(input.table, *s, field.dtype),
                }
            })
            .collect();
        let map_id = nodes.len();
        nodes.push(OpNode {
            id: map_id,
            kind: OpKind::Map {
                source: input.source,
                fingerprint: fingerprint_map(&source_schema, &bindings),
                bindings,
                casts,
                cell_exact,
            },
            inputs: vec![acquire_id],
            schema: vec![],
            effects: map_fx,
        });
        map_ids.push(map_id);
    }
    let mut union_inputs = map_ids.clone();
    if let Some(predicate) = row_filter {
        let filter_id = nodes.len();
        nodes.push(OpNode {
            id: filter_id,
            kind: OpKind::Filter {
                predicate: predicate.clone(),
                placement: inputs
                    .iter()
                    .map(|i| (i.source, FilterPlacement::Union))
                    .collect(),
            },
            inputs: map_ids,
            schema: vec![],
            effects: Effects::default(),
        });
        union_inputs = vec![filter_id];
    }
    let union_id = nodes.len();
    nodes.push(OpNode {
        id: union_id,
        kind: OpKind::Union {
            arity: inputs.len(),
        },
        inputs: union_inputs,
        schema: vec![],
        effects: Effects::default(),
    });
    let er_id = nodes.len();
    nodes.push(OpNode {
        id: er_id,
        kind: OpKind::Er {
            columns: er_cfg.fields.iter().map(|f| f.column.clone()).collect(),
            threshold: er_cfg.threshold,
        },
        inputs: vec![union_id],
        schema: vec![],
        effects: er_fx,
    });
    let fuse_id = nodes.len();
    nodes.push(OpNode {
        id: fuse_id,
        kind: OpKind::Fuse {
            live: vec![true; target.len()],
        },
        inputs: vec![er_id],
        schema: vec![],
        effects: fuse_fx,
    });
    nodes.push(OpNode {
        id: fuse_id + 1,
        kind: OpKind::Assemble {
            output: match output_columns {
                Some(cols) => cols.to_vec(),
                None => target.fields().iter().map(|f| f.name.clone()).collect(),
            },
        },
        inputs: vec![fuse_id],
        schema: vec![],
        effects: Effects::default(),
    });
    PlanIr {
        target: target_cols,
        nodes,
        scan_barrier: policy.scans_enabled(),
    }
}

/// True when mapping normalization is the identity on every cell source
/// column `col` actually holds: the raw and mapped values are bit-identical,
/// so a predicate verdict over the raw column equals the verdict over the
/// mapped one. Conservative on error (an out-of-range binding certifies
/// nothing).
fn binding_is_cell_exact(table: &Table, col: usize, dtype: wrangler_table::DataType) -> bool {
    let Ok(cells) = table.column(col) else {
        return false;
    };
    cells.iter().all(|v| &normalize_to(v, dtype) == v)
}

/// Rewrite `predicate` (over target column names) to reference the raw
/// columns `mapping` binds for them in `source_schema`. References to
/// unbound columns are left untouched — pushdown verification guarantees
/// they do not occur.
pub fn pushdown_predicate(
    predicate: &Expr,
    source_schema: &Schema,
    target: &Schema,
    mapping: &Mapping,
) -> Expr {
    let mut renames = BTreeMap::new();
    for (field, binding) in target.fields().iter().zip(&mapping.bindings) {
        if let Some(s) = binding {
            if let Some(raw) = source_schema.fields().get(*s) {
                renames.insert(field.name.clone(), raw.name.clone());
            }
        }
    }
    rename_columns(predicate, &renames)
}

/// Byte estimate of one value, the unit of the `scan.bytes` counter: fixed
/// widths for scalars, payload length for strings.
pub fn value_bytes(v: &Value) -> u64 {
    match v {
        Value::Null | Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 8,
        Value::Str(s) => s.len() as u64,
    }
}

/// Byte estimate of scanning every cell of `table`.
pub fn table_scan_bytes(table: &Table) -> u64 {
    (0..table.num_columns())
        .filter_map(|c| table.column(c).ok())
        .map(|col| col.iter().map(value_bytes).sum::<u64>())
        .sum()
}

/// Byte estimate of scanning the named columns of `table` (columns missing
/// from the schema contribute nothing).
pub fn columns_scan_bytes(table: &Table, names: &[String]) -> u64 {
    names
        .iter()
        .filter_map(|n| table.column_named(n).ok())
        .map(|col| col.iter().map(value_bytes).sum::<u64>())
        .sum()
}
