//! Working Data bookkeeping: artifact versions, dirtiness, and work
//! counters.
//!
//! Example 5's closing requirement: "it is of paramount importance that
//! these feedback-induced 'reactions' do not trigger a re-processing of all
//! datasets involved in the computation but rather limit the processing to
//! the strictly necessary data." The store tracks which derived artifacts
//! are stale and counts the actual work performed, so experiments can show
//! incremental ≪ full recomputation (E7b).

use std::collections::HashSet;

/// A derived artifact in the Working Data, at per-source or global grain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Artifact {
    /// Extraction/ingestion output of one source.
    Extraction(usize),
    /// Mapping (schema alignment) of one source.
    Mapping(usize),
    /// Mapped (target-schema) table of one source.
    MappedTable(usize),
    /// The union + entity clustering.
    Clusters,
    /// One fused slot (entity, attribute).
    FusedSlot(usize, usize),
    /// The assembled wrangled table.
    Result,
}

/// Counters of actual work performed (the currency of E7b).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Source tables (re)ingested.
    pub extractions: usize,
    /// Mappings (re)generated.
    pub mappings_generated: usize,
    /// Source tables (re)mapped.
    pub tables_mapped: usize,
    /// Candidate pairs compared in ER.
    pub er_pairs: usize,
    /// Slots (re)fused.
    pub slots_fused: usize,
}

impl WorkCounters {
    /// Total units, a crude single scalar for plots.
    pub fn total(&self) -> usize {
        self.extractions
            + self.mappings_generated
            + self.tables_mapped
            + self.er_pairs
            + self.slots_fused
    }
}

impl std::ops::Sub for WorkCounters {
    type Output = WorkCounters;
    fn sub(self, rhs: WorkCounters) -> WorkCounters {
        WorkCounters {
            extractions: self.extractions - rhs.extractions,
            mappings_generated: self.mappings_generated - rhs.mappings_generated,
            tables_mapped: self.tables_mapped - rhs.tables_mapped,
            er_pairs: self.er_pairs - rhs.er_pairs,
            slots_fused: self.slots_fused - rhs.slots_fused,
        }
    }
}

/// Dirtiness tracking for derived artifacts.
#[derive(Debug, Clone, Default)]
pub struct WorkingData {
    dirty: HashSet<Artifact>,
    /// Cumulative work counters.
    pub work: WorkCounters,
}

impl WorkingData {
    /// Fresh store with everything implicitly dirty (nothing computed yet).
    pub fn new() -> Self {
        WorkingData::default()
    }

    /// Mark an artifact stale.
    pub fn invalidate(&mut self, a: Artifact) {
        self.dirty.insert(a);
    }

    /// Mark a source's whole derivation chain stale (its data changed).
    pub fn invalidate_source(&mut self, source: usize) {
        self.invalidate(Artifact::Extraction(source));
        self.invalidate(Artifact::Mapping(source));
        self.invalidate(Artifact::MappedTable(source));
        self.invalidate(Artifact::Clusters);
        self.invalidate(Artifact::Result);
    }

    /// Is the artifact stale?
    pub fn is_dirty(&self, a: Artifact) -> bool {
        self.dirty.contains(&a)
    }

    /// Clear an artifact's dirtiness after recomputation.
    pub fn mark_clean(&mut self, a: Artifact) {
        self.dirty.remove(&a);
    }

    /// Dirty fused slots, sorted.
    pub fn dirty_slots(&self) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = self
            .dirty
            .iter()
            .filter_map(|a| match a {
                Artifact::FusedSlot(e, t) => Some((*e, *t)),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of dirty artifacts.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalidation_and_cleaning() {
        let mut wd = WorkingData::new();
        assert!(!wd.is_dirty(Artifact::Result));
        wd.invalidate(Artifact::Result);
        assert!(wd.is_dirty(Artifact::Result));
        wd.mark_clean(Artifact::Result);
        assert!(!wd.is_dirty(Artifact::Result));
    }

    #[test]
    fn source_invalidation_cascades() {
        let mut wd = WorkingData::new();
        wd.invalidate_source(3);
        for a in [
            Artifact::Extraction(3),
            Artifact::Mapping(3),
            Artifact::MappedTable(3),
            Artifact::Clusters,
            Artifact::Result,
        ] {
            assert!(wd.is_dirty(a));
        }
        assert!(!wd.is_dirty(Artifact::Extraction(4)));
    }

    #[test]
    fn dirty_slots_listed_sorted() {
        let mut wd = WorkingData::new();
        wd.invalidate(Artifact::FusedSlot(2, 1));
        wd.invalidate(Artifact::FusedSlot(0, 3));
        wd.invalidate(Artifact::Result);
        assert_eq!(wd.dirty_slots(), vec![(0, 3), (2, 1)]);
        assert_eq!(wd.dirty_count(), 3);
    }

    #[test]
    fn work_counter_arithmetic() {
        let a = WorkCounters {
            extractions: 5,
            mappings_generated: 2,
            tables_mapped: 5,
            er_pairs: 100,
            slots_fused: 50,
        };
        let b = WorkCounters {
            extractions: 5,
            mappings_generated: 2,
            tables_mapped: 5,
            er_pairs: 100,
            slots_fused: 60,
        };
        let d = b - a;
        assert_eq!(d.slots_fused, 10);
        assert_eq!(d.total(), 10);
    }
}
