//! Working Data bookkeeping: artifact versions, dirtiness, and work
//! counters.
//!
//! Example 5's closing requirement: "it is of paramount importance that
//! these feedback-induced 'reactions' do not trigger a re-processing of all
//! datasets involved in the computation but rather limit the processing to
//! the strictly necessary data." The store tracks which derived artifacts
//! are stale and counts the actual work performed, so experiments can show
//! incremental ≪ full recomputation (E7b).

use std::collections::{BTreeMap, HashSet};

/// A derived artifact in the Working Data, at per-source or global grain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Artifact {
    /// Extraction/ingestion output of one source.
    Extraction(usize),
    /// Mapping (schema alignment) of one source.
    Mapping(usize),
    /// Mapped (target-schema) table of one source.
    MappedTable(usize),
    /// The union + entity clustering.
    Clusters,
    /// One fused slot (entity, attribute).
    FusedSlot(usize, usize),
    /// The assembled wrangled table.
    Result,
}

/// Counters of actual work performed (the currency of E7b).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Source tables (re)ingested.
    pub extractions: usize,
    /// Mappings (re)generated.
    pub mappings_generated: usize,
    /// Source tables (re)mapped.
    pub tables_mapped: usize,
    /// Candidate pairs compared in ER.
    pub er_pairs: usize,
    /// Slots (re)fused.
    pub slots_fused: usize,
}

impl WorkCounters {
    /// Total units, a crude single scalar for plots.
    pub fn total(&self) -> usize {
        self.extractions
            + self.mappings_generated
            + self.tables_mapped
            + self.er_pairs
            + self.slots_fused
    }
}

impl std::ops::Sub for WorkCounters {
    type Output = WorkCounters;
    fn sub(self, rhs: WorkCounters) -> WorkCounters {
        WorkCounters {
            extractions: self.extractions - rhs.extractions,
            mappings_generated: self.mappings_generated - rhs.mappings_generated,
            tables_mapped: self.tables_mapped - rhs.tables_mapped,
            er_pairs: self.er_pairs - rhs.er_pairs,
            slots_fused: self.slots_fused - rhs.slots_fused,
        }
    }
}

/// Cross-pass cache of entity-resolution pair scores, keyed on row
/// *content* (the [`ErKernel`]'s canonical content keys), not row position.
/// A full re-wrangle whose union rows are unchanged — e.g. an incremental
/// `rewrangle` forced down the structural path by a dirty [`Artifact::
/// Clusters`] — finds every pair here and skips re-scoring. Data changes
/// invalidate themselves (changed rows render different keys); only an ER
/// *rule* change (refined weights/comparators) must [`Self::clear`] the
/// cache, which the session does alongside invalidating
/// [`Artifact::Clusters`] at those sites.
///
/// Every entry carries the *source pair* whose rows produced it, so a
/// single-source data update evicts only the scores touching that source
/// ([`Self::evict_sources`]) instead of wiping the cache: on an n-source
/// fleet roughly (n−2)/n of the entries survive a 1-source update and
/// replay bit-identically on the next pass.
///
/// [`ErKernel`]: wrangler_resolve::ErKernel
#[derive(Debug, Clone, Default)]
pub struct PairScoreCache {
    /// key → (score, source of the left row, source of the right row).
    scores: BTreeMap<String, (f64, u32, u32)>,
    hits: u64,
    misses: u64,
}

impl PairScoreCache {
    /// Entry bound: the cache wipes itself rather than grow past this (a
    /// deterministic safety valve for very long sessions).
    const CAP: usize = 1 << 20;

    /// Unambiguous key of a scored pair: the left row key is
    /// length-prefixed, so concatenation cannot collide.
    pub fn pair_key(a: &str, b: &str) -> String {
        format!("{}#{a}{b}", a.len())
    }

    /// Cached score for a pair key, counting the hit or miss.
    pub fn lookup(&mut self, key: &str) -> Option<f64> {
        match self.scores.get(key) {
            Some(&(s, _, _)) => {
                self.hits += 1;
                Some(s)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Record a freshly computed score, tagged with the sources of the two
    /// rows it compared (the eviction grain of [`Self::evict_sources`]).
    pub fn insert(&mut self, key: String, score: f64, sources: (usize, usize)) {
        if self.scores.len() >= Self::CAP {
            self.scores.clear();
        }
        self.scores
            .insert(key, (score, sources.0 as u32, sources.1 as u32));
    }

    /// Partition-scoped invalidation: drop every entry whose *either* row
    /// came from one of `dirty` sources, keep the rest. An updated source
    /// renders different content keys for its own rows anyway — eviction
    /// keeps the map from accumulating unreachable entries and bounds the
    /// cache to live content. Returns `(evicted, retained)`.
    pub fn evict_sources(&mut self, dirty: &[usize]) -> (usize, usize) {
        let before = self.scores.len();
        self.scores.retain(|_, &mut (_, a, b)| {
            !dirty.contains(&(a as usize)) && !dirty.contains(&(b as usize))
        });
        let retained = self.scores.len();
        (before - retained, retained)
    }

    /// Drop every entry (the ER rule changed: all cached scores are stale).
    /// Hit/miss statistics survive — they describe the session, not the
    /// current rule.
    pub fn clear(&mut self) {
        self.scores.clear();
    }

    /// Number of cached pair scores.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to be scored so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Iterate all cached `(key, score, src_a, src_b)` entries in key order,
    /// for durable serialization through the checkpoint store.
    pub fn entries(&self) -> impl Iterator<Item = (&str, f64, u32, u32)> {
        self.scores
            .iter()
            .map(|(k, &(s, a, b))| (k.as_str(), s, a, b))
    }

    /// Rebuild a cache from serialized entries and counters — the restart
    /// path: a resumed session re-seeds ER scoring with every pair score the
    /// crashed process had computed, so cache replay survives process death.
    pub fn restore(
        entries: Vec<(String, f64, u32, u32)>,
        hits: u64,
        misses: u64,
    ) -> PairScoreCache {
        PairScoreCache {
            scores: entries
                .into_iter()
                .map(|(k, s, a, b)| (k, (s, a, b)))
                .collect(),
            hits,
            misses,
        }
    }
}

/// Dirtiness tracking for derived artifacts.
#[derive(Debug, Clone, Default)]
pub struct WorkingData {
    dirty: HashSet<Artifact>,
    /// Cumulative work counters.
    pub work: WorkCounters,
    /// Content-keyed ER pair-score cache (see [`PairScoreCache`]).
    pub pair_scores: PairScoreCache,
}

impl WorkingData {
    /// Fresh store with everything implicitly dirty (nothing computed yet).
    pub fn new() -> Self {
        WorkingData::default()
    }

    /// Mark an artifact stale.
    pub fn invalidate(&mut self, a: Artifact) {
        self.dirty.insert(a);
    }

    /// Mark a source's whole derivation chain stale (its data changed).
    pub fn invalidate_source(&mut self, source: usize) {
        self.invalidate(Artifact::Extraction(source));
        self.invalidate(Artifact::Mapping(source));
        self.invalidate(Artifact::MappedTable(source));
        self.invalidate(Artifact::Clusters);
        self.invalidate(Artifact::Result);
    }

    /// Is the artifact stale?
    pub fn is_dirty(&self, a: Artifact) -> bool {
        self.dirty.contains(&a)
    }

    /// Clear an artifact's dirtiness after recomputation.
    pub fn mark_clean(&mut self, a: Artifact) {
        self.dirty.remove(&a);
    }

    /// Dirty fused slots, sorted.
    pub fn dirty_slots(&self) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = self
            .dirty
            .iter()
            .filter_map(|a| match a {
                Artifact::FusedSlot(e, t) => Some((*e, *t)),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of dirty artifacts.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalidation_and_cleaning() {
        let mut wd = WorkingData::new();
        assert!(!wd.is_dirty(Artifact::Result));
        wd.invalidate(Artifact::Result);
        assert!(wd.is_dirty(Artifact::Result));
        wd.mark_clean(Artifact::Result);
        assert!(!wd.is_dirty(Artifact::Result));
    }

    #[test]
    fn source_invalidation_cascades() {
        let mut wd = WorkingData::new();
        wd.invalidate_source(3);
        for a in [
            Artifact::Extraction(3),
            Artifact::Mapping(3),
            Artifact::MappedTable(3),
            Artifact::Clusters,
            Artifact::Result,
        ] {
            assert!(wd.is_dirty(a));
        }
        assert!(!wd.is_dirty(Artifact::Extraction(4)));
    }

    #[test]
    fn dirty_slots_listed_sorted() {
        let mut wd = WorkingData::new();
        wd.invalidate(Artifact::FusedSlot(2, 1));
        wd.invalidate(Artifact::FusedSlot(0, 3));
        wd.invalidate(Artifact::Result);
        assert_eq!(wd.dirty_slots(), vec![(0, 3), (2, 1)]);
        assert_eq!(wd.dirty_count(), 3);
    }

    #[test]
    fn pair_score_cache_hits_and_misses() {
        let mut c = PairScoreCache::default();
        let k = PairScoreCache::pair_key("row-a", "row-b");
        assert_eq!(c.lookup(&k), None);
        c.insert(k.clone(), 0.75, (0, 1));
        assert_eq!(c.lookup(&k), Some(0.75));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.lookup(&k), None);
    }

    #[test]
    fn eviction_is_partition_scoped() {
        let mut c = PairScoreCache::default();
        // Pairs over sources {0,1,2}: only entries touching source 1 go.
        c.insert("a".into(), 0.1, (0, 1));
        c.insert("b".into(), 0.2, (0, 2));
        c.insert("c".into(), 0.3, (1, 2));
        c.insert("d".into(), 0.4, (2, 2));
        let (evicted, retained) = c.evict_sources(&[1]);
        assert_eq!((evicted, retained), (2, 2));
        assert_eq!(c.lookup("b"), Some(0.2));
        assert_eq!(c.lookup("d"), Some(0.4));
        assert_eq!(c.lookup("a"), None);
        assert_eq!(c.lookup("c"), None);
    }

    #[test]
    fn restore_round_trips_source_tags() {
        let mut c = PairScoreCache::default();
        c.insert("x".into(), 0.5, (3, 7));
        let entries: Vec<(String, f64, u32, u32)> = c
            .entries()
            .map(|(k, s, a, b)| (k.to_string(), s, a, b))
            .collect();
        let mut r = PairScoreCache::restore(entries, c.hits(), c.misses());
        assert_eq!(r.lookup("x"), Some(0.5));
        let (evicted, _) = r.evict_sources(&[7]);
        assert_eq!(evicted, 1);
    }

    #[test]
    fn pair_keys_cannot_collide_across_the_join() {
        // ("ab", "c") vs ("a", "bc") concatenate identically without the
        // length prefix.
        assert_ne!(
            PairScoreCache::pair_key("ab", "c"),
            PairScoreCache::pair_key("a", "bc")
        );
    }

    #[test]
    fn work_counter_arithmetic() {
        let a = WorkCounters {
            extractions: 5,
            mappings_generated: 2,
            tables_mapped: 5,
            er_pairs: 100,
            slots_fused: 50,
        };
        let b = WorkCounters {
            extractions: 5,
            mappings_generated: 2,
            tables_mapped: 5,
            er_pairs: 100,
            slots_fused: 60,
        };
        let d = b - a;
        assert_eq!(d.slots_fused, 10);
        assert_eq!(d.total(), 10);
    }
}
