//! Active feedback targeting: where should the next payment go?
//!
//! §2.4 frames feedback as a scarce, paid resource. Spending it uniformly is
//! wasteful: a judgement on a slot the system already fuses at confidence
//! 0.98 buys almost nothing, while one on a contested slot can flip the
//! delivered value and re-weight the sources behind it. This module ranks
//! candidate feedback targets by *expected information*: low-confidence,
//! high-disagreement slots first, tie-broken towards slots whose supporters
//! have not yet been judged (so trust evidence spreads across the fleet).

use wrangler_table::Value;

use crate::wrangler::Wrangler;

/// A suggested feedback target with its priority ingredients.
#[derive(Debug, Clone)]
pub struct FeedbackSuggestion {
    /// Entity (row) of the slot.
    pub entity: usize,
    /// Attribute (column) of the slot.
    pub attr: usize,
    /// The currently delivered value (what the user would judge).
    pub value: Value,
    /// Current confidence of the slot.
    pub confidence: f64,
    /// Number of distinct values claimed for the slot.
    pub contention: usize,
    /// Priority score (higher = ask about this first).
    pub priority: f64,
}

/// Rank up to `k` feedback targets for the given attribute across all
/// entities, after a wrangle. Slots already confirmed by the user are
/// skipped (their answer is known).
pub fn suggest_feedback_targets(
    wrangler: &Wrangler,
    attr: usize,
    k: usize,
) -> Vec<FeedbackSuggestion> {
    let mut out = Vec::new();
    let mut entity = 0usize;
    // Probe entities until explanations run dry for a stretch; entities are
    // dense 0..n so a miss streak of the table width is conclusive.
    let mut misses = 0usize;
    while misses < 64 {
        match wrangler.explain(entity, attr) {
            Some(exp) => {
                misses = 0;
                if !exp.confirmed {
                    let contention = exp.dissenters.len() + 1;
                    // Uncertainty (1 - conf) weighted by how contested the
                    // slot is, nudged by unjudged supporter mass.
                    let priority = (1.0 - exp.confidence)
                        * (1.0 + (contention as f64).ln())
                        * (1.0 + exp.supporters.len() as f64 * 0.1);
                    out.push(FeedbackSuggestion {
                        entity,
                        attr,
                        value: exp.value,
                        confidence: exp.confidence,
                        contention,
                        priority,
                    });
                }
            }
            None => misses += 1,
        }
        entity += 1;
    }
    out.sort_by(|a, b| {
        b.priority
            .total_cmp(&a.priority)
            .then(a.entity.cmp(&b.entity))
            .then(a.attr.cmp(&b.attr))
    });
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_context::{DataContext, Ontology, UserContext};
    use wrangler_feedback::{FeedbackItem, FeedbackTarget, Verdict};
    use wrangler_sources::FleetConfig;
    use wrangler_table::{DataType, Schema, Table};

    fn session() -> (Wrangler, wrangler_sources::SyntheticFleet) {
        let fleet = wrangler_sources::synthetic::generate_fleet(
            &FleetConfig {
                num_products: 30,
                num_sources: 6,
                now: 10,
                error_rate: (0.1, 0.3),
                staleness: (0, 5),
                ..FleetConfig::default()
            },
            9,
        );
        let mut ctx = DataContext::with_ontology(Ontology::ecommerce());
        ctx.add_master("product", fleet.truth.master_catalog(), "sku")
            .unwrap();
        let catalog = fleet.truth.master_catalog();
        let mut fields = catalog.schema().fields().to_vec();
        fields.push(wrangler_table::Field::new("price", DataType::Float));
        let mut cols: Vec<Vec<Value>> = (0..catalog.num_columns())
            .map(|i| catalog.column(i).unwrap().to_vec())
            .collect();
        cols.push(vec![Value::Null; catalog.num_rows()]);
        let sample = Table::from_columns(Schema::new(fields).unwrap(), cols).unwrap();
        let mut w = Wrangler::new(UserContext::completeness_first(), ctx, sample);
        w.set_now(fleet.truth.now);
        for s in fleet.registry.iter() {
            w.add_source(s.meta.clone(), s.table.clone());
        }
        (w, fleet)
    }

    #[test]
    fn suggestions_are_ranked_and_bounded() {
        let (mut w, _) = session();
        w.wrangle().unwrap();
        let attr = w.target().index_of("price").unwrap();
        let sugg = suggest_feedback_targets(&w, attr, 5);
        assert!(sugg.len() <= 5);
        assert!(!sugg.is_empty());
        for pair in sugg.windows(2) {
            assert!(pair[0].priority >= pair[1].priority);
        }
        // Suggestions are genuinely uncertain slots.
        for s in &sugg {
            assert!(s.confidence < 1.0);
        }
    }

    #[test]
    fn confirmed_slots_are_not_suggested() {
        let (mut w, _) = session();
        let out = w.wrangle().unwrap();
        let attr = w.target().index_of("price").unwrap();
        let before = suggest_feedback_targets(&w, attr, 100);
        let target = before.first().expect("has suggestions").clone();
        let v = out.table.get_named(target.entity, "price").unwrap().clone();
        w.give_feedback(FeedbackItem::expert(
            FeedbackTarget::Value {
                entity: target.entity,
                attr,
                value: Some(v),
            },
            Verdict::Positive,
            1.0,
        ));
        w.rewrangle().unwrap();
        let after = suggest_feedback_targets(&w, attr, 100);
        assert!(after.iter().all(|s| s.entity != target.entity));
        assert_eq!(after.len() + 1, before.len());
    }

    #[test]
    fn targeted_feedback_beats_random_at_equal_budget() {
        use crate::eval::score_against_truth;
        let budget = 12;
        // Targeted.
        let (mut wt, fleet) = session();
        let out = wt.wrangle().unwrap();
        let attr = wt.target().index_of("price").unwrap();
        for s in suggest_feedback_targets(&wt, attr, budget) {
            let sku = out.table.get_named(s.entity, "sku").unwrap().render();
            let correct = s
                .value
                .as_f64()
                .is_some_and(|p| fleet.truth.price_is_correct(&sku, p, 0.005));
            wt.give_feedback(FeedbackItem::expert(
                FeedbackTarget::Value {
                    entity: s.entity,
                    attr,
                    value: Some(s.value.clone()),
                },
                if correct {
                    Verdict::Positive
                } else {
                    Verdict::Negative
                },
                1.0,
            ));
        }
        let t_out = wt.rewrangle().unwrap();
        let t_score = score_against_truth(&t_out.table, &fleet.truth, 0.005).unwrap();

        // Random (first-k rows).
        let (mut wr, fleet2) = session();
        let out2 = wr.wrangle().unwrap();
        for entity in 0..budget.min(out2.table.num_rows()) {
            let v = out2.table.get_named(entity, "price").unwrap().clone();
            if v.is_null() {
                continue;
            }
            let sku = out2.table.get_named(entity, "sku").unwrap().render();
            let correct = v
                .as_f64()
                .is_some_and(|p| fleet2.truth.price_is_correct(&sku, p, 0.005));
            wr.give_feedback(FeedbackItem::expert(
                FeedbackTarget::Value {
                    entity,
                    attr,
                    value: Some(v),
                },
                if correct {
                    Verdict::Positive
                } else {
                    Verdict::Negative
                },
                1.0,
            ));
        }
        let r_out = wr.rewrangle().unwrap();
        let r_score = score_against_truth(&r_out.table, &fleet2.truth, 0.005).unwrap();
        assert!(
            t_score.correct_price_yield + 1e-9 >= r_score.correct_price_yield,
            "targeted {} vs random {}",
            t_score.correct_price_yield,
            r_score.correct_price_yield
        );
    }
}
