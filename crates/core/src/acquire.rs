//! Resilient source acquisition: retry with backoff, circuit breakers, and
//! graceful degradation.
//!
//! §2.2's cost argument cuts both ways: sources are cheap to *list* but
//! unreliable to *reach*. A pipeline that panics (or blocks forever) the
//! first time a site is down cannot be "production-scale". This module is
//! the session-side half of the fault story (the fleet-side half is
//! `wrangler_sources::faults`):
//!
//! * [`RetryPolicy`] — bounded attempts with exponential backoff and seeded
//!   jitter, all in **virtual ticks** so schedules are deterministic and
//!   experiments never sleep;
//! * [`CircuitBreaker`] — the classic closed → open → half-open machine per
//!   source; repeatedly failing sources are quarantined instead of burning
//!   the retry budget every wrangle, and probed again after a cooldown;
//! * [`Acquisition`] — the engine the [`Wrangler`](crate::wrangler::Wrangler)
//!   drives: acquires every selected source under an [`AcquisitionMode`],
//!   reports per-source dispositions, and lets the pipeline complete on the
//!   surviving subset (the breakers then feed source *availability* back
//!   into the next selection round).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wrangler_obs::CounterSet;
use wrangler_sources::faults::{AcquireError, Degradation};
use wrangler_sources::{SourceId, SourceRegistry};
use wrangler_table::Table;

/// How the session reacts to acquisition failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquisitionMode {
    /// Naive baseline: one attempt per source; any failure aborts the whole
    /// wrangle.
    AbortOnFailure,
    /// Naive baseline: hammer each failing source with up to `attempts`
    /// immediate retries (no backoff, no breaker); if it still fails, abort.
    BlindRetry {
        /// Attempts per source before giving up.
        attempts: u32,
    },
    /// The full resilient layer: bounded backoff retries, circuit breakers,
    /// quarantine, and completion on the surviving subset.
    Resilient,
}

/// Bounded exponential backoff with seeded jitter, in virtual ticks.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts per source per wrangle (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: u64,
    /// Growth factor between retries.
    pub multiplier: f64,
    /// Hard cap on any single backoff.
    pub max_backoff: u64,
    /// Jitter fraction in \[0, 1\]: each wait is stretched by up to this
    /// much, seeded per source (decorrelates retry storms across sources
    /// without losing reproducibility).
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
    /// Per-attempt latency budget handed to the fault layer.
    pub attempt_deadline: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: 2,
            multiplier: 2.0,
            max_backoff: 32,
            jitter: 0.25,
            seed: 7,
            attempt_deadline: 8,
        }
    }
}

impl RetryPolicy {
    /// The waits (in ticks) before each retry of `source`: `retries` values,
    /// deterministic per `(seed, source)`, monotonically non-decreasing, and
    /// each bounded by `max_backoff`.
    pub fn backoff_schedule(&self, source: SourceId, retries: u32) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(u64::from(source.0)),
        );
        let cap = self.max_backoff.max(1);
        let mut raw = self.base_backoff.max(1) as f64;
        let mut prev = 0u64;
        let mut out = Vec::with_capacity(retries as usize);
        for _ in 0..retries {
            let jittered = raw * (1.0 + self.jitter.clamp(0.0, 1.0) * rng.gen::<f64>());
            let wait = (jittered.round() as u64).clamp(1, cap).max(prev);
            out.push(wait);
            prev = wait;
            raw = (raw * self.multiplier.max(1.0)).min(cap as f64);
        }
        out
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Ticks an open breaker blocks requests before probing.
    pub cooldown: u64,
    /// Probe successes required to close again from half-open.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: 24,
            half_open_successes: 2,
        }
    }
}

/// Breaker state: the classic three-state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; failures are counted.
    Closed,
    /// Requests are blocked until the cooldown elapses.
    Open {
        /// Tick at which probing may begin.
        until: u64,
    },
    /// Probing: limited trust until enough successes close the breaker.
    HalfOpen,
}

/// Per-source circuit breaker over virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    probe_successes: u32,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_successes: 0,
        }
    }

    /// Current state (an open breaker does *not* transition to half-open
    /// until a request is actually attempted after the cooldown).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// May a request proceed at `now`? An open breaker past its cooldown
    /// moves to half-open and lets the probe through.
    pub fn allow_request(&mut self, now: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until } if now >= until => {
                self.state = BreakerState::HalfOpen;
                self.probe_successes = 0;
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// Record a successful acquisition.
    pub fn record_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.cfg.half_open_successes {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                }
            }
            // A success while open can't happen through allow_request; treat
            // it as a probe.
            BreakerState::Open { .. } => {
                self.state = BreakerState::HalfOpen;
                self.probe_successes = 1;
            }
        }
    }

    /// Record a failed acquisition at `now`.
    pub fn record_failure(&mut self, now: u64) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open {
                        until: now + self.cfg.cooldown,
                    };
                }
            }
            // A failed probe re-opens for a full cooldown.
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open {
                    until: now + self.cfg.cooldown,
                };
            }
            BreakerState::Open { .. } => {}
        }
    }

    /// Decompose into durable parts — `(cfg, state, consecutive_failures,
    /// probe_successes)` — for checkpoint serialization.
    pub fn to_parts(&self) -> (BreakerConfig, BreakerState, u32, u32) {
        (
            self.cfg,
            self.state,
            self.consecutive_failures,
            self.probe_successes,
        )
    }

    /// Exact inverse of [`to_parts`](Self::to_parts): rebuild a breaker
    /// mid-flight, counters and all, so a resumed pass distrusts exactly
    /// what the crashed pass distrusted.
    pub fn from_parts(
        cfg: BreakerConfig,
        state: BreakerState,
        consecutive_failures: u32,
        probe_successes: u32,
    ) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state,
            consecutive_failures,
            probe_successes,
        }
    }

    /// Availability in \[0, 1\] as selection sees it: 1 closed, 0.5 on
    /// probation (half-open, or open with the cooldown elapsed), 0 while
    /// quarantined.
    pub fn availability(&self, now: u64) -> f64 {
        match self.state {
            BreakerState::Closed => 1.0,
            BreakerState::HalfOpen => 0.5,
            BreakerState::Open { until } => {
                if now >= until {
                    0.5
                } else {
                    0.0
                }
            }
        }
    }
}

/// What happened to one selected source during acquisition.
#[derive(Debug, Clone, PartialEq)]
pub struct AcquireOutcome {
    /// Which source.
    pub id: SourceId,
    /// Attempts actually made (0 when quarantined).
    pub attempts: u32,
    /// Virtual ticks spent on this source (latency + backoff).
    pub ticks: u64,
    /// How it ended.
    pub disposition: Disposition,
}

/// Terminal disposition of one source's acquisition.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// Payload arrived intact.
    Fresh,
    /// Payload arrived degraded (truncated / partially corrupted) and was
    /// used anyway — coverage beats nothing, and fusion's redundancy
    /// tolerates noise.
    Degraded(Degradation),
    /// All attempts failed; the source is excluded from this wrangle.
    Skipped(AcquireError),
    /// The circuit breaker was open; no attempt was made.
    Quarantined,
}

/// Everything a single acquisition pass produced.
#[derive(Debug, Clone, Default)]
pub struct AcquisitionReport {
    /// Per-source outcomes, in selection order.
    pub outcomes: Vec<AcquireOutcome>,
    /// Materialized payloads for degraded sources (intact sources keep using
    /// the registry's table, zero-copy).
    pub degraded_tables: Vec<(SourceId, Table)>,
    /// `Some` when a naive mode aborted the wrangle on a failure.
    pub aborted: Option<AcquireError>,
    /// Total attempts this pass.
    pub attempts: u64,
    /// Total virtual ticks this pass (the retry-cost axis of E11).
    pub ticks: u64,
    /// Telemetry events this pass: `retries`, `breaker_trips`,
    /// `quarantine_skips`, `backoff_ticks`, `rate_limit_stretches`,
    /// `degraded_payloads`. The session absorbs these into its
    /// [`wrangler_obs::Telemetry`] under the `acquire.` prefix.
    pub events: CounterSet,
}

impl AcquisitionReport {
    /// Sources that delivered a payload (fresh or degraded).
    pub fn survivors(&self) -> Vec<SourceId> {
        self.outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.disposition,
                    Disposition::Fresh | Disposition::Degraded(_)
                )
            })
            .map(|o| o.id)
            .collect()
    }

    /// Sources that delivered nothing, with the human-readable reason.
    pub fn skipped(&self) -> Vec<(SourceId, String)> {
        self.outcomes
            .iter()
            .filter_map(|o| match &o.disposition {
                Disposition::Skipped(e) => Some((o.id, e.to_string())),
                Disposition::Quarantined => Some((o.id, "quarantined (circuit open)".into())),
                _ => None,
            })
            .collect()
    }

    /// Sources that delivered degraded payloads.
    pub fn degraded(&self) -> Vec<(SourceId, Degradation)> {
        self.outcomes
            .iter()
            .filter_map(|o| match o.disposition {
                Disposition::Degraded(d) => Some((o.id, d)),
                _ => None,
            })
            .collect()
    }
}

/// The acquisition engine a wrangling session owns: policy, per-source
/// breakers, and a monotone virtual clock that persists across wrangles (so
/// cooldowns and rate-limit windows roll forward realistically).
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Failure-handling mode (the E11 comparison axis).
    pub mode: AcquisitionMode,
    /// Retry/backoff tuning.
    pub policy: RetryPolicy,
    /// Breaker tuning (applies to breakers created after a change).
    pub breaker_cfg: BreakerConfig,
    breakers: Vec<CircuitBreaker>,
    clock: u64,
    /// Lifetime attempt count (all wrangles).
    pub total_attempts: u64,
    /// Lifetime backoff ticks (all wrangles).
    pub total_backoff_ticks: u64,
}

impl Default for Acquisition {
    fn default() -> Self {
        Acquisition {
            mode: AcquisitionMode::Resilient,
            policy: RetryPolicy::default(),
            breaker_cfg: BreakerConfig::default(),
            breakers: Vec::new(),
            clock: 0,
            total_attempts: 0,
            total_backoff_ticks: 0,
        }
    }
}

impl Acquisition {
    /// Engine in the given mode with default tuning.
    pub fn with_mode(mode: AcquisitionMode) -> Acquisition {
        Acquisition {
            mode,
            ..Acquisition::default()
        }
    }

    /// The engine's virtual clock (ticks spent acquiring so far).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The per-source breakers, in source order (empty in naive modes or
    /// before the first acquisition touches a source).
    pub fn breakers(&self) -> &[CircuitBreaker] {
        &self.breakers
    }

    /// Restore the private engine state — virtual clock and breaker fleet —
    /// from a checkpoint. The public counters (`total_attempts`,
    /// `total_backoff_ticks`) are plain fields the caller restores directly.
    pub fn restore_state(&mut self, clock: u64, breakers: Vec<CircuitBreaker>) {
        self.clock = clock;
        self.breakers = breakers;
    }

    /// Availability of source `i` as the breakers currently see it.
    pub fn availability(&self, i: usize, now: u64) -> f64 {
        match self.mode {
            // Naive modes have no breakers and no notion of availability.
            AcquisitionMode::AbortOnFailure | AcquisitionMode::BlindRetry { .. } => 1.0,
            AcquisitionMode::Resilient => self
                .breakers
                .get(i)
                .map(|b| b.availability(now.max(self.clock)))
                .unwrap_or(1.0),
        }
    }

    /// Sources currently quarantined (breaker open, cooldown not elapsed).
    pub fn quarantined(&self, now: u64) -> Vec<SourceId> {
        self.breakers
            .iter()
            .enumerate()
            .filter(|(_, b)| b.availability(now.max(self.clock)) == 0.0)
            .map(|(i, _)| SourceId(i as u32))
            .collect()
    }

    /// Breaker state of source `i`, if one exists yet.
    pub fn breaker_state(&self, i: usize) -> Option<BreakerState> {
        self.breakers.get(i).map(|b| b.state())
    }

    /// Report a *post-acquisition* failure for source `i`: its payload
    /// cleared acquisition but poisoned a pipeline stage and was
    /// quarantined. This trips the breaker immediately (a full
    /// `failure_threshold` worth of failures) rather than recording a
    /// single failure — the pass's own successful acquisition already
    /// reset the consecutive-failure count, and a payload that breaks the
    /// pipeline is worse evidence than a connection blip. No-op in naive
    /// modes, which have no breakers.
    pub fn record_pipeline_failure(&mut self, i: usize) {
        if !matches!(self.mode, AcquisitionMode::Resilient) {
            return;
        }
        let now = self.clock;
        let threshold = self.breaker_cfg.failure_threshold;
        let b = self.breaker(i);
        for _ in 0..threshold.max(1) {
            b.record_failure(now);
        }
    }

    fn breaker(&mut self, i: usize) -> &mut CircuitBreaker {
        if i >= self.breakers.len() {
            self.breakers
                .resize(i + 1, CircuitBreaker::new(self.breaker_cfg));
        }
        &mut self.breakers[i]
    }

    /// Acquire every selected source. The engine clock starts at
    /// `max(internal, start)` and advances by per-attempt latency and
    /// backoff; the report carries per-source dispositions plus this pass's
    /// attempt and tick totals.
    pub fn acquire_selected(
        &mut self,
        registry: &SourceRegistry,
        selected: &[SourceId],
        start: u64,
    ) -> AcquisitionReport {
        self.clock = self.clock.max(start);
        let began = self.clock;
        let attempts_before = self.total_attempts;
        let mut report = AcquisitionReport::default();
        for &id in selected {
            let outcome = match self.mode {
                AcquisitionMode::AbortOnFailure => self.acquire_naive(registry, id, 1, &mut report),
                AcquisitionMode::BlindRetry { attempts } => {
                    self.acquire_naive(registry, id, attempts.max(1), &mut report)
                }
                AcquisitionMode::Resilient => self.acquire_resilient(registry, id, &mut report),
            };
            report.outcomes.push(outcome);
            if report.aborted.is_some() {
                break;
            }
        }
        report.attempts = self.total_attempts - attempts_before;
        report.ticks = self.clock - began;
        report
    }

    /// Naive acquisition: up to `max_attempts` back-to-back tries, abort on
    /// terminal failure.
    fn acquire_naive(
        &mut self,
        registry: &SourceRegistry,
        id: SourceId,
        max_attempts: u32,
        report: &mut AcquisitionReport,
    ) -> AcquireOutcome {
        let began = self.clock;
        let mut attempts = 0;
        loop {
            attempts += 1;
            self.total_attempts += 1;
            if attempts > 1 {
                report.events.inc("retries");
            }
            match registry.acquire(id, self.clock, self.policy.attempt_deadline) {
                Ok(snap) => {
                    self.clock += snap.latency;
                    let disposition = match snap.degraded {
                        None => Disposition::Fresh,
                        Some((d, table)) => {
                            report.degraded_tables.push((id, table));
                            report.events.inc("degraded_payloads");
                            Disposition::Degraded(d)
                        }
                    };
                    return AcquireOutcome {
                        id,
                        attempts,
                        ticks: self.clock - began,
                        disposition,
                    };
                }
                Err(e) => {
                    // A failed attempt still costs a tick of wall-time.
                    self.clock += 1;
                    if attempts >= max_attempts || !e.is_retriable() {
                        report.aborted = Some(e.clone());
                        return AcquireOutcome {
                            id,
                            attempts,
                            ticks: self.clock - began,
                            disposition: Disposition::Skipped(e),
                        };
                    }
                }
            }
        }
    }

    /// Resilient acquisition of one source: breaker gate, then bounded
    /// backoff retries; a rate-limit hint stretches the wait if it exceeds
    /// the scheduled backoff.
    fn acquire_resilient(
        &mut self,
        registry: &SourceRegistry,
        id: SourceId,
        report: &mut AcquisitionReport,
    ) -> AcquireOutcome {
        let began = self.clock;
        let i = id.0 as usize;
        let policy = self.policy;
        let schedule = policy.backoff_schedule(id, policy.max_attempts.saturating_sub(1));
        let mut attempts = 0;
        let mut last_err: Option<AcquireError> = None;
        while attempts < policy.max_attempts.max(1) {
            let now = self.clock;
            if !self.breaker(i).allow_request(now) {
                // Tripped before any attempt → quarantined; tripped mid-retry
                // → the attempts were real, report the failure itself.
                let disposition = match last_err.take() {
                    None => {
                        report.events.inc("quarantine_skips");
                        Disposition::Quarantined
                    }
                    Some(e) => Disposition::Skipped(e),
                };
                return AcquireOutcome {
                    id,
                    attempts,
                    ticks: self.clock - began,
                    disposition,
                };
            }
            attempts += 1;
            self.total_attempts += 1;
            if attempts > 1 {
                report.events.inc("retries");
            }
            match registry.acquire(id, self.clock, policy.attempt_deadline) {
                Ok(snap) => {
                    self.clock += snap.latency;
                    self.breaker(i).record_success();
                    let disposition = match snap.degraded {
                        None => Disposition::Fresh,
                        Some((d, table)) => {
                            report.degraded_tables.push((id, table));
                            report.events.inc("degraded_payloads");
                            Disposition::Degraded(d)
                        }
                    };
                    return AcquireOutcome {
                        id,
                        attempts,
                        ticks: self.clock - began,
                        disposition,
                    };
                }
                Err(e) => {
                    self.clock += 1;
                    let now = self.clock;
                    let was_open = matches!(self.breaker(i).state(), BreakerState::Open { .. });
                    self.breaker(i).record_failure(now);
                    // A tripped breaker or a terminal error ends the retries
                    // right away — no point paying the remaining backoff.
                    let tripped = matches!(self.breaker(i).state(), BreakerState::Open { .. });
                    if tripped && !was_open {
                        report.events.inc("breaker_trips");
                    }
                    if tripped || !e.is_retriable() {
                        return AcquireOutcome {
                            id,
                            attempts,
                            ticks: self.clock - began,
                            disposition: Disposition::Skipped(e),
                        };
                    }
                    if attempts < policy.max_attempts {
                        let mut wait = schedule
                            .get(attempts as usize - 1)
                            .copied()
                            .unwrap_or(policy.max_backoff.max(1));
                        if let AcquireError::RateLimited { retry_after, .. } = &e {
                            if *retry_after > wait {
                                report.events.inc("rate_limit_stretches");
                            }
                            wait = wait.max(*retry_after);
                        }
                        self.clock += wait;
                        self.total_backoff_ticks += wait;
                        report.events.add("backoff_ticks", wait);
                    }
                    last_err = Some(e);
                }
            }
        }
        let err = last_err.unwrap_or(AcquireError::Unavailable { source: id });
        AcquireOutcome {
            id,
            attempts,
            ticks: self.clock - began,
            disposition: Disposition::Skipped(err),
        }
    }
}

/// Summary of the most recent acquisition pass, kept by the session for
/// outcome reporting and provenance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AcquisitionSummary {
    /// Per-source dispositions of the last pass.
    pub outcomes: Vec<AcquireOutcome>,
    /// Sources excluded from the last wrangle, with reasons.
    pub skipped: Vec<(SourceId, String)>,
    /// Sources integrated from degraded payloads.
    pub degraded: Vec<(SourceId, Degradation)>,
    /// Attempts in the last pass.
    pub attempts: u64,
    /// Virtual ticks the last pass spent (latency + backoff).
    pub ticks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_sources::faults::FaultProfile;
    use wrangler_table::{Schema, Value};

    fn registry(profiles: Vec<FaultProfile>) -> SourceRegistry {
        let mut reg = SourceRegistry::new();
        for s in 0..profiles.len() {
            let mut t = Table::empty(Schema::of_strs(&["sku", "price"]));
            for r in 0..6 {
                t.push_row(vec![
                    Value::Str(format!("sku{r}")),
                    Value::Float(10.0 + s as f64),
                ])
                .unwrap();
            }
            reg.register(format!("site{s}"), t);
        }
        reg.inject_fault_profiles(profiles, 5);
        reg
    }

    #[test]
    fn backoff_schedule_properties() {
        let p = RetryPolicy::default();
        let s1 = p.backoff_schedule(SourceId(3), 8);
        let s2 = p.backoff_schedule(SourceId(3), 8);
        assert_eq!(s1, s2, "deterministic per (seed, source)");
        for w in s1.windows(2) {
            assert!(w[1] >= w[0], "monotone: {s1:?}");
        }
        assert!(s1.iter().all(|&w| w >= 1 && w <= p.max_backoff));
        let other = p.backoff_schedule(SourceId(4), 8);
        assert_ne!(s1, other, "jitter decorrelates sources");
    }

    #[test]
    fn breaker_trips_cools_probes_closes() {
        let cfg = BreakerConfig {
            failure_threshold: 3,
            cooldown: 10,
            half_open_successes: 2,
        };
        let mut b = CircuitBreaker::new(cfg);
        assert_eq!(b.state(), BreakerState::Closed);
        for t in 0..3 {
            assert!(b.allow_request(t));
            b.record_failure(t);
        }
        assert_eq!(b.state(), BreakerState::Open { until: 12 });
        assert!(!b.allow_request(5), "quarantined during cooldown");
        assert!(b.allow_request(12), "probe allowed after cooldown");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::HalfOpen, "one success not enough");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_failed_probe_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: 10,
            half_open_successes: 1,
        });
        b.record_failure(0);
        assert!(matches!(b.state(), BreakerState::Open { until: 10 }));
        assert!(b.allow_request(10));
        b.record_failure(11);
        assert_eq!(b.state(), BreakerState::Open { until: 21 });
        assert_eq!(b.availability(15), 0.0);
        assert_eq!(b.availability(21), 0.5);
    }

    #[test]
    fn pipeline_failure_trips_breaker_immediately() {
        let mut eng = Acquisition::default();
        // Fresh breaker: a single pipeline-quarantine report must open it,
        // even though acquisition itself succeeded this pass.
        eng.record_pipeline_failure(2);
        assert_eq!(eng.availability(2, 0), 0.0, "breaker open right away");
        assert!(matches!(
            eng.breaker_state(2),
            Some(BreakerState::Open { .. })
        ));
        // Untouched sources are unaffected.
        assert_eq!(eng.availability(0, 0), 1.0);
        // After the cooldown the source is probe-eligible again.
        let cooldown = BreakerConfig::default().cooldown;
        assert_eq!(eng.availability(2, cooldown + 1), 0.5);
        // Naive modes have no breakers: the call is a no-op.
        let mut naive = Acquisition::with_mode(AcquisitionMode::AbortOnFailure);
        naive.record_pipeline_failure(1);
        assert_eq!(naive.availability(1, 0), 1.0);
    }

    #[test]
    fn abort_mode_stops_at_first_failure() {
        let reg = registry(vec![
            FaultProfile::Healthy,
            FaultProfile::HardDown,
            FaultProfile::Healthy,
        ]);
        let mut eng = Acquisition::with_mode(AcquisitionMode::AbortOnFailure);
        let ids = reg.ids();
        let report = eng.acquire_selected(&reg, &ids, 0);
        assert!(report.aborted.is_some());
        assert_eq!(report.outcomes.len(), 2, "third source never tried");
    }

    #[test]
    fn resilient_mode_completes_on_survivors() {
        let reg = registry(vec![
            FaultProfile::Healthy,
            FaultProfile::HardDown,
            FaultProfile::Truncated { keep_fraction: 0.5 },
        ]);
        let mut eng = Acquisition::default();
        let ids = reg.ids();
        let report = eng.acquire_selected(&reg, &ids, 0);
        assert!(report.aborted.is_none());
        assert_eq!(report.survivors(), vec![SourceId(0), SourceId(2)]);
        assert_eq!(report.skipped().len(), 1);
        assert_eq!(report.degraded().len(), 1);
        assert_eq!(report.degraded_tables.len(), 1);
        assert_eq!(report.degraded_tables[0].1.num_rows(), 3);
        // The hard-down source burned retries until its breaker tripped...
        let down = &report.outcomes[1];
        assert_eq!(down.attempts, eng.breaker_cfg.failure_threshold);
        // ...and its breaker tripped for next time.
        assert!(matches!(
            eng.breaker_state(1),
            Some(BreakerState::Open { .. })
        ));
    }

    #[test]
    fn quarantine_skips_attempts_until_cooldown() {
        let reg = registry(vec![FaultProfile::HardDown]);
        let mut eng = Acquisition::default();
        let ids = reg.ids();
        let r1 = eng.acquire_selected(&reg, &ids, 0);
        assert!(r1.attempts > 0);
        // Immediately after, the breaker is open: no attempts at all.
        let r2 = eng.acquire_selected(&reg, &ids, eng.clock());
        assert_eq!(r2.attempts, 0);
        assert!(matches!(
            r2.outcomes[0].disposition,
            Disposition::Quarantined
        ));
        assert_eq!(eng.availability(0, eng.clock()), 0.0);
        // After the cooldown the probe goes through (and fails again here).
        let later = eng.clock() + eng.breaker_cfg.cooldown;
        let r3 = eng.acquire_selected(&reg, &ids, later);
        assert!(r3.attempts > 0);
    }

    #[test]
    fn flapping_source_recovers_via_backoff() {
        // Down 70% of each 10-tick cycle: a single attempt at tick 3 fails,
        // but backoff pushes later attempts into the up-phase.
        let reg = registry(vec![FaultProfile::Flap {
            period: 10,
            up_fraction: 0.3,
            phase: 0,
        }]);
        let mut eng = Acquisition::default();
        let report = eng.acquire_selected(&reg, &reg.ids(), 3);
        assert!(report.aborted.is_none());
        assert_eq!(report.survivors(), vec![SourceId(0)]);
        assert!(report.outcomes[0].attempts > 1, "needed a retry");
    }

    #[test]
    fn blind_retry_burns_attempts_on_hard_down() {
        let reg = registry(vec![FaultProfile::HardDown]);
        let mut eng = Acquisition::with_mode(AcquisitionMode::BlindRetry { attempts: 50 });
        let report = eng.acquire_selected(&reg, &reg.ids(), 0);
        assert!(report.aborted.is_some());
        assert_eq!(report.attempts, 50);
    }

    #[test]
    fn acquisition_events_are_recorded() {
        let reg = registry(vec![FaultProfile::Healthy, FaultProfile::HardDown]);
        let mut eng = Acquisition::default();
        let r1 = eng.acquire_selected(&reg, &reg.ids(), 0);
        // The hard-down source retried until its breaker tripped once.
        assert!(r1.events.get("retries") > 0);
        assert_eq!(r1.events.get("breaker_trips"), 1);
        assert!(r1.events.get("backoff_ticks") > 0);
        assert_eq!(r1.events.get("quarantine_skips"), 0);
        // Immediately after, the open breaker skips it without attempts.
        let r2 = eng.acquire_selected(&reg, &reg.ids(), eng.clock());
        assert_eq!(r2.events.get("quarantine_skips"), 1);
        assert_eq!(r2.events.get("retries"), 0);
    }

    #[test]
    fn engine_is_deterministic() {
        let profiles = vec![
            FaultProfile::Flap {
                period: 8,
                up_fraction: 0.5,
                phase: 3,
            },
            FaultProfile::RateLimited {
                max_per_window: 1,
                window: 6,
            },
            FaultProfile::HardDown,
            FaultProfile::Healthy,
        ];
        let run = || {
            let reg = registry(profiles.clone());
            let mut eng = Acquisition::default();
            let r = eng.acquire_selected(&reg, &reg.ids(), 0);
            (r.survivors(), r.attempts, r.ticks, eng.clock())
        };
        assert_eq!(run(), run());
    }
}
