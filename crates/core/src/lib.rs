//! `wrangler-core` — the wrangling architecture of Figure 1, assembled.
//!
//! This crate composes every component crate into the end-to-end system the
//! paper envisions: Data Sources → Data Extraction → Data Integration →
//! Wrangled Data, with a shared **Working Data** store holding auxiliary
//! data (user + data context), quality analyses, feedback and uncertainty —
//! and *no hard-wired workflow*: a [`planner::Plan`] derived from the user
//! context decides selection strategy, fusion strategy, ER thresholds and
//! confidence gating ("autonomic" composition, §4.2).
//!
//! * [`working`] — artifact/dependency bookkeeping and work counters, the
//!   basis of incremental (pay-as-you-go) recomputation;
//! * [`planner`] — derives the concrete plan from the user context;
//! * [`wrangler`] — the [`wrangler::Wrangler`] session: add sources,
//!   `wrangle()`, give feedback, re-wrangle incrementally;
//! * [`contain`] — stage-level fault containment: poison-payload
//!   quarantine, per-stage budgets and panic isolation, so a source that
//!   goes bad *mid-pipeline* degrades the pass instead of killing it;
//! * [`ckpt_io`] — checkpoint serialization: the [`ckpt_io::SessionState`]
//!   snapshot plus per-stage output records that `wrangler-ckpt` persists at
//!   every stage seam, making a wrangle crash-resilient (kill the process at
//!   any boundary; `resume` replays the deepest valid prefix byte-identically);
//! * [`lower`] — lowers each wrangle pass into the `wrangler-plan` typed IR;
//!   the compiled [`wrangler_plan::PlanProgram`] then drives filter
//!   placement, fuse liveness, profile sharing and the output projection;
//! * [`baseline`] — the manually specified ETL comparator with effort
//!   accounting (what §1 argues cannot scale);
//! * [`eval`] — ground-truth scoring against the synthetic fleet, used by
//!   every experiment.

pub mod acquire;
pub mod active;
pub mod baseline;
pub mod ckpt_io;
pub mod contain;
pub mod eval;
pub mod incr;
pub mod lower;
pub mod planner;
pub mod provenance;
pub mod uncertain;
pub mod working;
pub mod wrangler;

pub use acquire::{
    Acquisition, AcquisitionMode, AcquisitionSummary, BreakerConfig, BreakerState, CircuitBreaker,
    RetryPolicy,
};
pub use active::suggest_feedback_targets;
pub use contain::{
    ChaosPolicy, ContainMode, ContainPolicy, ContainmentReport, QuarantineEvent, Stage,
    StageTallies,
};
pub use lower::{lower, LowerInput};
pub use planner::Plan;
pub use provenance::{acquisition_table, lint_table, metrics_table, plan_table, provenance_table};
pub use uncertain::UncertainView;
pub use ckpt_io::SessionState;
pub use wrangler::{WrangleOutcome, Wrangler};
pub use wrangler_ckpt::{
    scratch_dir, write_atomic, CheckpointStore, CkptStats, CrashMode, CrashPolicy, CrashSite,
};
pub use wrangler_obs::{MetricsReport, ObsMode, Telemetry};
pub use wrangler_plan::{OptMode, PlanProgram};
