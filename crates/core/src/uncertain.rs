//! Uncertain query answering over wrangled output (§4.3).
//!
//! "For the architecture of Figure 1 there is the additional requirement to
//! reason with uncertainty over potentially numerous sources of evidence;
//! this is a serious issue since even in the classical settings data
//! uncertainty often leads to intractability of the most basic data
//! processing tasks \[1, 23\]."
//!
//! Exact query evaluation under tuple-level uncertainty is #P-hard; the
//! tractable tool is Monte-Carlo evaluation over possible worlds. This
//! module views a wrangled table as a set of independent uncertain facts
//! (each row exists with its delivered `_confidence`) and answers count and
//! aggregate queries with error bars, so downstream analysis "builds on a
//! sound understanding of the available evidence".

use wrangler_table::expr::BoundExpr;
use wrangler_table::{Expr, Table};
use wrangler_uncertainty::worlds::UncertainFacts;

/// A wrangled table viewed under possible-worlds semantics.
#[derive(Debug, Clone)]
pub struct UncertainView {
    table: Table,
    facts: UncertainFacts,
}

/// A Monte-Carlo estimate with its spread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Mean over sampled worlds.
    pub mean: f64,
    /// Standard deviation over sampled worlds.
    pub std_dev: f64,
}

impl UncertainView {
    /// Build from a wrangled table carrying a `_confidence` column; each row
    /// is an independent fact existing with that probability.
    pub fn new(table: Table) -> wrangler_table::Result<UncertainView> {
        let conf = table.column_named("_confidence")?;
        let mut facts = UncertainFacts::new();
        for v in conf {
            facts.add(v.as_f64().unwrap_or(0.0));
        }
        Ok(UncertainView { table, facts })
    }

    /// Number of (uncertain) rows.
    pub fn len(&self) -> usize {
        self.table.num_rows()
    }

    /// True if the view has no rows.
    pub fn is_empty(&self) -> bool {
        self.table.num_rows() == 0
    }

    /// Marginal existence probability of row `i`.
    pub fn row_probability(&self, i: usize) -> f64 {
        self.facts.prob(i)
    }

    /// Estimate `COUNT(*) WHERE predicate` over possible worlds.
    pub fn estimate_count(
        &self,
        predicate: &Expr,
        seed: u64,
        samples: usize,
    ) -> wrangler_table::Result<Estimate> {
        let matching = self.matching_rows(predicate)?;
        self.sampled(seed, samples, move |world| {
            matching.iter().filter(|&&r| world[r]).count() as f64
        })
    }

    /// Estimate `SUM(column) WHERE predicate`.
    pub fn estimate_sum(
        &self,
        column: &str,
        predicate: &Expr,
        seed: u64,
        samples: usize,
    ) -> wrangler_table::Result<Estimate> {
        let matching = self.matching_rows(predicate)?;
        let col = self.table.column_named(column)?;
        let contributions: Vec<(usize, f64)> = matching
            .into_iter()
            .filter_map(|r| col[r].as_f64().map(|x| (r, x)))
            .collect();
        self.sampled(seed, samples, move |world| {
            contributions
                .iter()
                .filter(|(r, _)| world[*r])
                .map(|(_, x)| x)
                .sum()
        })
    }

    /// Probability that at least one row satisfies the predicate.
    pub fn estimate_exists(
        &self,
        predicate: &Expr,
        seed: u64,
        samples: usize,
    ) -> wrangler_table::Result<f64> {
        let matching = self.matching_rows(predicate)?;
        if matching.is_empty() {
            return Ok(0.0);
        }
        // Independent facts: closed form beats sampling here.
        let miss: f64 = matching.iter().map(|&r| 1.0 - self.facts.prob(r)).product();
        let _ = (seed, samples);
        Ok(1.0 - miss)
    }

    fn matching_rows(&self, predicate: &Expr) -> wrangler_table::Result<Vec<usize>> {
        let bound: BoundExpr = predicate.bind(self.table.schema())?;
        let mut out = Vec::new();
        for i in 0..self.table.num_rows() {
            let row = self.table.row(i);
            if bound.eval_predicate(&row)? {
                out.push(i);
            }
        }
        Ok(out)
    }

    fn sampled<F: FnMut(&[bool]) -> f64>(
        &self,
        seed: u64,
        samples: usize,
        mut f: F,
    ) -> wrangler_table::Result<Estimate> {
        assert!(samples > 0, "need at least one sample");
        let mut sum = 0.0;
        let mut sq = 0.0;
        let mut rng = wrangler_uncertainty::worlds::XorShift64::new(seed);
        for _ in 0..samples {
            let world = self.facts.sample(&mut rng);
            let x = f(&world);
            sum += x;
            sq += x * x;
        }
        let mean = sum / samples as f64;
        let var = (sq / samples as f64 - mean * mean).max(0.0);
        Ok(Estimate {
            mean,
            std_dev: var.sqrt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_table::Value;

    fn view() -> UncertainView {
        let t = Table::literal(
            &["sku", "price", "_confidence"],
            vec![
                vec!["a".into(), Value::Float(10.0), Value::Float(1.0)],
                vec!["b".into(), Value::Float(20.0), Value::Float(0.5)],
                vec!["c".into(), Value::Float(30.0), Value::Float(0.0)],
                vec!["d".into(), Value::Float(40.0), Value::Float(0.8)],
            ],
        )
        .unwrap();
        UncertainView::new(t).unwrap()
    }

    #[test]
    fn count_estimates_match_expectation() {
        let v = view();
        // All rows match: expected count = 1 + 0.5 + 0 + 0.8 = 2.3.
        let e = v.estimate_count(&Expr::lit(true), 7, 20_000).unwrap();
        assert!((e.mean - 2.3).abs() < 0.05, "mean {}", e.mean);
        assert!(e.std_dev > 0.0);
        // Certain subset: price <= 10 matches only the certain row.
        let e = v
            .estimate_count(&Expr::col("price").le(Expr::lit(10.0)), 7, 5_000)
            .unwrap();
        assert!((e.mean - 1.0).abs() < 1e-9);
        assert_eq!(e.std_dev, 0.0);
    }

    #[test]
    fn sum_estimates_match_expectation() {
        let v = view();
        // E[sum] = 10·1 + 20·0.5 + 30·0 + 40·0.8 = 52.
        let e = v
            .estimate_sum("price", &Expr::lit(true), 11, 20_000)
            .unwrap();
        assert!((e.mean - 52.0).abs() < 1.0, "mean {}", e.mean);
    }

    #[test]
    fn exists_is_closed_form() {
        let v = view();
        // price > 15 matches rows b (0.5), c (0.0), d (0.8):
        // P(exists) = 1 − 0.5·1.0·0.2 = 0.9.
        let p = v
            .estimate_exists(&Expr::col("price").gt(Expr::lit(15.0)), 1, 1)
            .unwrap();
        assert!((p - 0.9).abs() < 1e-9);
        // Impossible predicate.
        let p = v
            .estimate_exists(&Expr::col("price").gt(Expr::lit(1e9)), 1, 1)
            .unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let v = view();
        let a = v.estimate_count(&Expr::lit(true), 42, 1000).unwrap();
        let b = v.estimate_count(&Expr::lit(true), 42, 1000).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn missing_confidence_column_is_error() {
        let t = Table::literal(&["x"], vec![vec![Value::Int(1)]]).unwrap();
        assert!(UncertainView::new(t).is_err());
    }
}
