//! The manually specified ETL baseline with effort accounting.
//!
//! §1: manual wrangling means "data scientists spend from 50 percent to 80
//! percent of their time collecting and preparing unruly digital data". The
//! baseline models that regime: an expert writes a per-source specification
//! (the exact column renames) at a fixed effort cost; the workflow is then
//! hard-wired. It integrates correctly — *for the sources and schemas it was
//! written against*. When a source's schema drifts, its spec silently stops
//! matching and the source's data vanishes from the result until the expert
//! pays to re-specify. No context, no selection, no uncertainty: exactly the
//! ETL regime §4.2 contrasts with.

use std::collections::HashMap;

use wrangler_table::{ops, Schema, Table, Value};

/// One hand-written source specification: source column name → target column
/// name.
#[derive(Debug, Clone, Default)]
pub struct SourceSpec {
    renames: HashMap<String, String>,
}

impl SourceSpec {
    /// Write a spec (this is what costs expert effort).
    pub fn new(renames: &[(&str, &str)]) -> SourceSpec {
        SourceSpec {
            renames: renames
                .iter()
                .map(|(s, t)| (s.to_string(), t.to_string()))
                .collect(),
        }
    }
}

/// The manual ETL pipeline.
#[derive(Debug, Clone)]
pub struct ManualEtl {
    /// Target schema.
    pub target: Schema,
    /// Per-source specs, by source index.
    specs: HashMap<usize, SourceSpec>,
    /// Effort units charged per spec written or rewritten.
    pub effort_per_spec: f64,
    /// Total effort spent.
    pub effort_spent: f64,
}

impl ManualEtl {
    /// New pipeline targeting `target`.
    pub fn new(target: Schema, effort_per_spec: f64) -> ManualEtl {
        ManualEtl {
            target,
            specs: HashMap::new(),
            effort_per_spec,
            effort_spent: 0.0,
        }
    }

    /// The expert inspects a source and writes its spec (charged).
    pub fn specify(&mut self, source: usize, spec: SourceSpec) {
        self.effort_spent += self.effort_per_spec;
        self.specs.insert(source, spec);
    }

    /// The expert writes the *correct* spec for a source by inspecting its
    /// actual schema against the target (the oracle spec — what a competent
    /// expert produces). Columns with no plausible target are skipped.
    pub fn specify_by_inspection(
        &mut self,
        source: usize,
        table: &Table,
        oracle: &dyn Fn(&str) -> Option<String>,
    ) {
        let mut renames = Vec::new();
        for f in table.schema().fields() {
            if let Some(t) = oracle(&f.name) {
                renames.push((f.name.clone(), t));
            }
        }
        let spec = SourceSpec {
            renames: renames.into_iter().collect(),
        };
        self.effort_spent += self.effort_per_spec;
        self.specs.insert(source, spec);
    }

    /// How many sources have specs.
    pub fn specified(&self) -> usize {
        self.specs.len()
    }

    /// Run the hard-wired workflow: apply each spec literally, union, dedup
    /// by key (first column), keep the first value seen per product (no
    /// trust, no freshness reasoning — classic "first source wins" ETL).
    pub fn run(&self, sources: &[&Table]) -> wrangler_table::Result<Table> {
        let mut out = Table::empty(self.target.clone());
        for (i, src) in sources.iter().enumerate() {
            let Some(spec) = self.specs.get(&i) else {
                continue;
            };
            // A spec only works if the renamed columns actually exist.
            let mut row_exprs: Vec<Option<usize>> = Vec::with_capacity(self.target.len());
            for tf in self.target.fields() {
                let source_col = spec
                    .renames
                    .iter()
                    .find(|(_, t)| *t == &tf.name)
                    .map(|(s, _)| s.clone());
                match source_col {
                    Some(sc) if src.schema().contains(&sc) => {
                        row_exprs.push(Some(src.schema().index_of(&sc)?));
                    }
                    _ => row_exprs.push(None),
                }
            }
            // If no column resolved, the spec has rotted: contribute nothing.
            if row_exprs.iter().all(Option::is_none) {
                continue;
            }
            for r in 0..src.num_rows() {
                let row: Vec<Value> = row_exprs
                    .iter()
                    .map(|c| {
                        c.map(|c| src.get(r, c).expect("in bounds").clone()) // lint-allow: spec columns validated against src above
                            .unwrap_or(Value::Null)
                    })
                    .collect();
                out.push_row(row)?;
            }
        }
        // Dedup by key = first target column, first occurrence wins.
        let key = self.target.fields()[0].name.clone();
        let mut seen = std::collections::HashSet::new();
        let keep: Vec<bool> = (0..out.num_rows())
            .map(|i| {
                let k = out.get_named(i, &key).expect("in bounds").clone(); // lint-allow: key column projected into out by this function
                if k.is_null() {
                    return false;
                }
                seen.insert(k)
            })
            .collect();
        let mut deduped = out.retain_rows(|i| keep[i]);
        deduped.reinfer_types();
        ops::sort_by(&deduped, &[&key])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_table::Field;

    fn target() -> Schema {
        Schema::new(vec![
            Field::new("sku", wrangler_table::DataType::Str),
            Field::new("price", wrangler_table::DataType::Float),
        ])
        .unwrap()
    }

    fn source_a() -> Table {
        Table::literal(
            &["code", "cost"],
            vec![
                vec!["a1".into(), Value::Float(9.0)],
                vec!["a2".into(), Value::Float(12.0)],
            ],
        )
        .unwrap()
    }

    fn source_b() -> Table {
        Table::literal(
            &["sku", "price"],
            vec![
                vec!["a2".into(), Value::Float(11.5)],
                vec!["a3".into(), Value::Float(30.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn specified_sources_integrate_with_first_wins() {
        let mut etl = ManualEtl::new(target(), 5.0);
        etl.specify(0, SourceSpec::new(&[("code", "sku"), ("cost", "price")]));
        etl.specify(1, SourceSpec::new(&[("sku", "sku"), ("price", "price")]));
        assert_eq!(etl.effort_spent, 10.0);
        let out = etl.run(&[&source_a(), &source_b()]).unwrap();
        assert_eq!(out.num_rows(), 3);
        // a2 appears in both; source 0 (first) wins.
        let idx = (0..3)
            .find(|&i| out.get_named(i, "sku").unwrap().as_str() == Some("a2"))
            .unwrap();
        assert_eq!(out.get_named(idx, "price").unwrap(), &Value::Float(12.0));
    }

    #[test]
    fn unspecified_sources_contribute_nothing() {
        let mut etl = ManualEtl::new(target(), 5.0);
        etl.specify(1, SourceSpec::new(&[("sku", "sku"), ("price", "price")]));
        let out = etl.run(&[&source_a(), &source_b()]).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn drifted_schema_silently_breaks_the_spec() {
        let mut etl = ManualEtl::new(target(), 5.0);
        etl.specify(0, SourceSpec::new(&[("code", "sku"), ("cost", "price")]));
        // The site renames its columns: the spec rots.
        let drifted = Table::literal(
            &["item_code", "unit_price"],
            vec![vec!["a1".into(), Value::Float(9.0)]],
        )
        .unwrap();
        let out = etl.run(&[&drifted]).unwrap();
        assert_eq!(out.num_rows(), 0);
        // Re-specification costs again.
        etl.specify(
            0,
            SourceSpec::new(&[("item_code", "sku"), ("unit_price", "price")]),
        );
        assert_eq!(etl.effort_spent, 10.0);
        let out = etl.run(&[&drifted]).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn specify_by_inspection_uses_oracle() {
        let mut etl = ManualEtl::new(target(), 3.0);
        let src = source_a();
        etl.specify_by_inspection(0, &src, &|col| match col {
            "code" => Some("sku".into()),
            "cost" => Some("price".into()),
            _ => None,
        });
        assert_eq!(etl.effort_spent, 3.0);
        let out = etl.run(&[&src]).unwrap();
        assert_eq!(out.num_rows(), 2);
    }
}
