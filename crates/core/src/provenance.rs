//! Provenance export: the lineage of every delivered value, as a table.
//!
//! §4.2 lists "provenance information" among the artifacts the Working Data
//! must represent uniformly. [`Wrangler::explain`] answers one slot at a
//! time; this module materializes the *whole* lineage as a queryable table —
//! one row per (entity, attribute, claim) — so provenance is data like
//! everything else: filterable, joinable, exportable to CSV.

use wrangler_table::{Schema, Table, Value};

use crate::wrangler::Wrangler;

/// Columns of the provenance table.
pub const PROVENANCE_COLUMNS: [&str; 7] = [
    "entity",
    "attribute",
    "source",
    "claimed",
    "delivered",
    "supports",
    "trust",
];

/// Materialize the lineage of every fused slot after a wrangle: one row per
/// claim, flagged with whether it supports the delivered value. Returns an
/// empty table before the first wrangle.
pub fn provenance_table(wrangler: &Wrangler) -> wrangler_table::Result<Table> {
    let schema = Schema::of_strs(&PROVENANCE_COLUMNS);
    let mut out = Table::empty(schema);
    let target = wrangler.target().clone();
    // Walk entities via explain() until a miss streak proves exhaustion.
    let mut entity = 0usize;
    let mut misses = 0usize;
    while misses < 64 {
        let mut any = false;
        for attr in 0..target.len() {
            let Some(exp) = wrangler.explain(entity, attr) else {
                continue;
            };
            any = true;
            let attr_name = &target.fields()[attr].name;
            for (claims, supports) in [(&exp.supporters, true), (&exp.dissenters, false)] {
                for c in claims {
                    out.push_row(vec![
                        Value::Int(entity as i64),
                        Value::from(attr_name.clone()),
                        Value::from(c.name.clone()),
                        Value::from(c.value.render()),
                        Value::from(exp.value.render()),
                        Value::Bool(supports),
                        Value::Float(c.trust),
                    ])?;
                }
            }
        }
        if any {
            misses = 0;
        } else {
            misses += 1;
        }
        entity += 1;
    }
    let mut t = out;
    t.reinfer_types();
    Ok(t)
}

/// Columns of the acquisition-provenance table.
pub const ACQUISITION_COLUMNS: [&str; 5] = ["source", "disposition", "detail", "attempts", "ticks"];

/// Materialize the last wrangle's acquisition pass as a table: one row per
/// selected source recording how (and whether) its payload was obtained.
/// Together with [`provenance_table`] this answers not only *where a value
/// came from* but *what it cost to get it and what never arrived* — the
/// operational half of lineage. Empty before the first wrangle.
pub fn acquisition_table(wrangler: &Wrangler) -> wrangler_table::Result<Table> {
    use crate::acquire::Disposition;

    let schema = Schema::of_strs(&ACQUISITION_COLUMNS);
    let mut out = Table::empty(schema);
    for o in &wrangler.acquisition_summary().outcomes {
        let (disposition, detail) = match &o.disposition {
            Disposition::Fresh => ("fresh", String::new()),
            Disposition::Degraded(d) => ("degraded", d.to_string()),
            Disposition::Skipped(e) => ("skipped", e.to_string()),
            Disposition::Quarantined => ("quarantined", "circuit open".to_string()),
        };
        out.push_row(vec![
            Value::from(o.id.to_string()),
            Value::from(disposition.to_string()),
            Value::from(detail),
            Value::Int(i64::from(o.attempts)),
            Value::Int(o.ticks as i64),
        ])?;
    }
    out.reinfer_types();
    Ok(out)
}

/// Columns of the lint-provenance table.
pub const LINT_COLUMNS: [&str; 6] = [
    "origin",
    "code",
    "severity",
    "component",
    "locus",
    "message",
];

/// Materialize the last wrangle's pre-flight static-analysis findings as a
/// table: one row per diagnostic, labelled with its origin (`plan` or the
/// source it concerns). Execution decisions become data, like the rest of
/// the lineage: a downstream consumer can ask *why a wrangle was refused* or
/// *which warnings a delivered table shipped with*. Empty when the gate is
/// off, before the first wrangle, or when everything was clean.
pub fn lint_table(wrangler: &Wrangler) -> wrangler_table::Result<Table> {
    let schema = Schema::of_strs(&LINT_COLUMNS);
    let mut out = Table::empty(schema);
    for (origin, report) in wrangler.lint_findings() {
        for d in report.diagnostics() {
            out.push_row(vec![
                Value::from(origin.clone()),
                Value::from(d.code.to_string()),
                Value::from(d.severity.to_string()),
                Value::from(d.component.to_string()),
                Value::from(d.locus.to_string()),
                Value::from(d.message.clone()),
            ])?;
        }
    }
    out.reinfer_types();
    Ok(out)
}

/// Columns of the plan-rewrite table.
pub const PLAN_COLUMNS: [&str; 4] = ["rewrite", "target", "justification", "description"];

/// Materialize the last wrangle's verified rewrite ledger as a table: one
/// row per optimizer rewrite, carrying the analysis facts that justify it.
/// This is the proof-carrying half of the plan lineage — every execution
/// shortcut (pushed-down filter, shared profile, skipped dead fusion) is
/// attributable to a machine-checked citation. Empty before the first
/// wrangle or when nothing was rewritten (e.g. naive mode).
pub fn plan_table(wrangler: &Wrangler) -> wrangler_table::Result<Table> {
    let schema = Schema::of_strs(&PLAN_COLUMNS);
    let mut out = Table::empty(schema);
    if let Some(program) = wrangler.plan_program() {
        for [rewrite, target, justification, description] in program.rewrite_rows() {
            out.push_row(vec![
                Value::from(rewrite),
                Value::from(target),
                Value::from(justification),
                Value::from(description),
            ])?;
        }
    }
    out.reinfer_types();
    Ok(out)
}

/// Columns of the metrics table.
pub const METRICS_COLUMNS: [&str; 3] = ["metric", "kind", "value"];

/// Materialize the session's telemetry as a table: one row per counter and
/// gauge, in deterministic (sorted) order. Timings are deliberately left out
/// — they are wall-clock noise, while this table is byte-identical across
/// runs of the same seeded pipeline and therefore diffable in CI. Use
/// [`Wrangler::metrics`](crate::Wrangler::metrics) for the full report
/// including span timings. Empty under [`wrangler_obs::ObsMode::Off`].
pub fn metrics_table(wrangler: &Wrangler) -> wrangler_table::Result<Table> {
    let schema = Schema::of_strs(&METRICS_COLUMNS);
    let mut out = Table::empty(schema);
    let report = wrangler.metrics();
    for (name, v) in &report.counts {
        out.push_row(vec![
            Value::from(name.clone()),
            Value::from("count".to_string()),
            Value::from(format!("{v}")),
        ])?;
    }
    for (name, v) in &report.gauges {
        out.push_row(vec![
            Value::from(name.clone()),
            Value::from("gauge".to_string()),
            Value::from(format!("{v:.6}")),
        ])?;
    }
    out.reinfer_types();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_context::{DataContext, Ontology, UserContext};
    use wrangler_sources::FleetConfig;
    use wrangler_table::ops;
    use wrangler_table::{DataType, Expr};

    fn session() -> Wrangler {
        let fleet = wrangler_sources::synthetic::generate_fleet(
            &FleetConfig {
                num_products: 20,
                num_sources: 4,
                now: 8,
                ..FleetConfig::default()
            },
            3,
        );
        let mut ctx = DataContext::with_ontology(Ontology::ecommerce());
        ctx.add_master("product", fleet.truth.master_catalog(), "sku")
            .unwrap();
        let catalog = fleet.truth.master_catalog();
        let mut fields = catalog.schema().fields().to_vec();
        fields.push(wrangler_table::Field::new("price", DataType::Float));
        let mut cols: Vec<Vec<Value>> = (0..catalog.num_columns())
            .map(|i| catalog.column(i).unwrap().to_vec())
            .collect();
        cols.push(vec![Value::Null; catalog.num_rows()]);
        let sample = Table::from_columns(Schema::new(fields).unwrap(), cols).unwrap();
        let mut w = Wrangler::new(UserContext::completeness_first(), ctx, sample);
        w.set_now(fleet.truth.now);
        for s in fleet.registry.iter() {
            w.add_source(s.meta.clone(), s.table.clone());
        }
        w
    }

    #[test]
    fn empty_before_first_wrangle() {
        let w = session();
        assert_eq!(provenance_table(&w).unwrap().num_rows(), 0);
        assert_eq!(acquisition_table(&w).unwrap().num_rows(), 0);
        assert_eq!(lint_table(&w).unwrap().num_rows(), 0);
        assert_eq!(metrics_table(&w).unwrap().num_rows(), 0);
    }

    #[test]
    fn metrics_lineage_is_deterministic_and_timing_free() {
        let render = |mt: &Table| {
            let mut s = String::new();
            for r in 0..mt.num_rows() {
                for v in mt.row(r) {
                    s.push_str(&v.render());
                    s.push('|');
                }
                s.push('\n');
            }
            s
        };
        let run = || {
            let mut w = session();
            w.wrangle().unwrap();
            metrics_table(&w).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.schema().names(), METRICS_COLUMNS.to_vec());
        assert!(a.num_rows() > 0);
        // Identical seeded pipelines render identical metric tables: no
        // wall-clock leaks into the deterministic half.
        assert_eq!(render(&a), render(&b));
        // Core stage counters are present with sane values.
        let get = |t: &Table, name: &str| -> Option<String> {
            (0..t.num_rows())
                .find(|&r| t.row(r)[0].as_str() == Some(name))
                .map(|r| t.row(r)[2].render())
        };
        assert_eq!(get(&a, "pass.wrangle").as_deref(), Some("1"));
        assert!(get(&a, "union.rows").is_some());
        assert!(get(&a, "out.rows").is_some());
        assert!(get(&a, "out.consistency").is_some());
        // Off mode keeps the table empty.
        let mut off = session();
        off.obs.set_mode(wrangler_obs::ObsMode::Off);
        off.wrangle().unwrap();
        assert_eq!(metrics_table(&off).unwrap().num_rows(), 0);
    }

    #[test]
    fn lint_lineage_reflects_preflight_findings() {
        let mut w = session();
        let out = w.wrangle().unwrap();
        let clean = lint_table(&w).unwrap();
        assert_eq!(clean.schema().names(), LINT_COLUMNS.to_vec());
        // Clean pipeline: anything recorded is advisory, never error-grade.
        for v in clean.column_named("severity").unwrap() {
            assert_ne!(v.as_str(), Some("error"));
        }
        // Corrupt one mapping: the refused wrangle leaves its reasons behind
        // as queryable lineage.
        let victim = out.selected_sources[0];
        let mut bad = w.mapping_of(victim).unwrap().clone();
        *bad.bindings
            .iter_mut()
            .find(|b| b.is_some())
            .expect("some binding") = Some(999);
        assert!(w.override_mapping(victim, bad));
        assert!(w.wrangle().is_err());
        let lt = lint_table(&w).unwrap();
        let errors = ops::filter(
            &lt,
            &Expr::col("severity").eq(Expr::lit("error".to_string())),
        )
        .unwrap();
        assert!(errors.num_rows() > 0);
        assert!(errors
            .column_named("code")
            .unwrap()
            .iter()
            .any(|v| v.as_str() == Some("L001")));
    }

    #[test]
    fn acquisition_lineage_records_every_selected_source() {
        let mut w = session();
        w.set_fault_profile(
            wrangler_sources::SourceId(0),
            wrangler_sources::FaultProfile::HardDown,
        );
        let out = w.wrangle().unwrap();
        let acq = acquisition_table(&w).unwrap();
        assert_eq!(acq.schema().names(), ACQUISITION_COLUMNS.to_vec());
        assert_eq!(
            acq.num_rows(),
            out.selected_sources.len() + out.skipped_sources.len()
        );
        // The downed source, if selected, shows up as skipped with a reason.
        for r in 0..acq.num_rows() {
            let row = acq.row(r);
            if row[0] == Value::from("src0".to_string()) {
                assert_eq!(row[1], Value::from("skipped".to_string()));
            }
        }
    }

    #[test]
    fn lineage_covers_every_explained_slot_and_is_queryable() {
        let mut w = session();
        let out = w.wrangle().unwrap();
        let prov = provenance_table(&w).unwrap();
        assert!(prov.num_rows() > 0);
        assert_eq!(prov.schema().names(), PROVENANCE_COLUMNS.to_vec());
        // Every supporting row's claimed value renders as the delivered one's
        // agreement class representative or at least some value; sanity: all
        // supports=true rows have claimed == delivered for exact-agreement
        // string attributes.
        let supports = ops::filter(&prov, &Expr::col("supports").eq(Expr::lit(true))).unwrap();
        assert!(supports.num_rows() > 0);
        // Lineage is relational: count claims per source via group_by.
        let per_source =
            ops::group_by(&prov, &["source"], &[(ops::Agg::CountAll, "entity")]).unwrap();
        assert!(per_source.num_rows() >= out.selected_sources.len());
        // Trust column is a probability.
        for v in prov.column_named("trust").unwrap() {
            let t = v.as_f64().unwrap();
            assert!((0.0..=1.0).contains(&t));
        }
        // Entities referenced exist in the output table.
        for v in prov.column_named("entity").unwrap() {
            let e = v.as_i64().unwrap() as usize;
            assert!(e < out.entities);
        }
    }
}
