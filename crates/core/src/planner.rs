//! The autonomic planner: user context in, concrete plan out.
//!
//! §4.2: "the requirements of automation, refined on a pay-as-you-go basis
//! taking into account the user context, is at odds with a hard-wired,
//! user-specified data manipulation workflow." Nothing in the pipeline is
//! hard-wired: the plan below — which sources to take, how to fuse, how
//! strictly to gate — is *derived* from the declarative [`UserContext`], and
//! re-derived whenever the context changes.

use wrangler_context::{Criterion, UserContext};
use wrangler_fusion::Strategy;
use wrangler_lint::PlanStep;

/// How sources are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Integrate everything relevant (the classical default).
    AllRelevant,
    /// Marginal-gain selection, "less is more" \[16\].
    MarginalGain,
}

/// The derived execution plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Source selection strategy.
    pub selection: SelectionStrategy,
    /// Fusion strategy for conflicting claims.
    pub fusion: Strategy,
    /// ER match threshold.
    pub er_threshold: f64,
    /// Fused values below this confidence are withheld (nulled); realizes
    /// Example 2's accuracy/completeness trade-off.
    pub min_value_confidence: f64,
    /// Numeric agreement tolerance for fusion claims.
    pub fusion_tolerance: f64,
}

impl Plan {
    /// Derive a plan from the user context.
    pub fn derive(user: &UserContext) -> Plan {
        let w_acc = user.weight(Criterion::Accuracy);
        let w_com = user.weight(Criterion::Completeness);
        let w_tim = user.weight(Criterion::Timeliness);
        let w_cost = user.weight(Criterion::Cost);
        let uniform = 1.0 / 6.0;

        // Cost- or accuracy-sensitive contexts prune sources; completeness-
        // dominant contexts take everything relevant.
        let selection = if w_com > 1.5 * uniform && w_com > w_acc && w_com > w_cost {
            SelectionStrategy::AllRelevant
        } else {
            SelectionStrategy::MarginalGain
        };

        // Timeliness-sensitive contexts fuse freshness-aware; otherwise
        // trust-weighted voting.
        let fusion = if w_tim > uniform {
            let half_life = if user.freshness_horizon == u64::MAX {
                10.0
            } else {
                (user.freshness_horizon as f64 / 2.0).max(1.0)
            };
            Strategy::TrustAndFreshness { half_life }
        } else {
            Strategy::TrustWeighted
        };

        // Accuracy-first contexts resolve entities and gate values strictly;
        // completeness-first contexts are permissive.
        let er_threshold = (0.75 + 0.6 * (w_acc - uniform)).clamp(0.6, 0.95);
        let min_value_confidence = user.min_confidence;

        Plan {
            selection,
            fusion,
            er_threshold,
            min_value_confidence,
            fusion_tolerance: 0.002,
        }
    }

    /// Describe the pipeline this plan drives as neutral [`PlanStep`]s for
    /// the determinism audit (`wrangler_lint::audit_steps`).
    ///
    /// The traits stated here are claims about the implementation in
    /// `Wrangler::wrangle`: selection sorts estimates by (gain, id);
    /// acquisition retries on a simulated clock; mapping generation fans out
    /// per source but merges by source index; blocking and fusion group via
    /// ordered maps. The audit holds the description to account — if a step
    /// regresses (say, a `HashMap` iteration leaks into output order), the
    /// honest fix is to flip the trait here and watch the gate object.
    pub fn describe(&self) -> Vec<PlanStep> {
        vec![
            PlanStep::deterministic("source-selection"),
            PlanStep::deterministic("acquisition"),
            PlanStep::deterministic("mapping-generation").with_parallelism(true),
            PlanStep::deterministic("entity-resolution").with_hash_iteration(true),
            PlanStep::deterministic("fusion").with_hash_iteration(true),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_first_prunes_and_gates() {
        let plan = Plan::derive(&UserContext::accuracy_first());
        assert_eq!(plan.selection, SelectionStrategy::MarginalGain);
        assert!(plan.min_value_confidence >= 0.55);
        assert!(plan.er_threshold > 0.75);
        assert!(matches!(plan.fusion, Strategy::TrustAndFreshness { .. }));
    }

    #[test]
    fn completeness_first_takes_everything() {
        let plan = Plan::derive(&UserContext::completeness_first());
        assert_eq!(plan.selection, SelectionStrategy::AllRelevant);
        assert!(plan.min_value_confidence <= 0.4);
        assert!(plan.er_threshold < 0.8);
    }

    #[test]
    fn balanced_context_gets_sane_defaults() {
        let plan = Plan::derive(&UserContext::balanced("x"));
        assert!(plan.er_threshold >= 0.6 && plan.er_threshold <= 0.95);
        assert!(plan.fusion_tolerance > 0.0);
    }

    #[test]
    fn horizon_shapes_half_life() {
        let user = UserContext::accuracy_first().with_freshness_horizon(8);
        match Plan::derive(&user).fusion {
            Strategy::TrustAndFreshness { half_life } => assert!((half_life - 4.0).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn described_plan_audits_clean() {
        let plan = Plan::derive(&UserContext::balanced("x"));
        let steps = plan.describe();
        assert!(steps.len() >= 4);
        let report = wrangler_lint::audit_steps(&steps);
        assert!(report.is_empty(), "{report:?}");
    }

    #[test]
    fn different_contexts_different_plans() {
        assert_ne!(
            Plan::derive(&UserContext::accuracy_first()),
            Plan::derive(&UserContext::completeness_first())
        );
    }
}
