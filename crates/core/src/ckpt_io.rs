//! Checkpoint serialization for the wrangling session.
//!
//! The checkpoint store ([`wrangler_ckpt`]) moves opaque byte payloads; this
//! module defines what those payloads *are* for a wrangle pass. Every seam
//! record has two parts:
//!
//! * a [`SessionState`] — the complete snapshot of everything the pass has
//!   mutated up to that seam: per-source trust beliefs and relevances, the
//!   acquisition engine (virtual clock, breaker fleet, retry totals), the
//!   ER pair-score cache, work counters, the containment report, and the
//!   acquisition summary. Restoring it puts a *fresh process* into exactly
//!   the state the crashed process had at the seam — quarantine discounts
//!   and breaker trips included, applied once, never re-derived;
//! * a stage output — the data the rest of the pipeline consumes (selected
//!   ids, degraded payloads, mappings, mapped tables, union rows, clusters,
//!   fused slots).
//!
//! All encodings ride on the canonical wire codec
//! ([`wrangler_table::wire`]): fixed-width little-endian integers,
//! length-prefixed UTF-8, and `f64::to_bits` for floats, so a round-trip is
//! bit-exact (including -0.0, subnormals and NaN payloads) and a resumed
//! pass can reproduce an uninterrupted run byte-for-byte. Decoders are
//! bounds-checked and return structured errors — a truncated or bit-flipped
//! payload that somehow passed the store's checksum still cannot panic the
//! session (the store treats a decode failure as a miss).
//!
//! Enum tags in this module are part of the durable format: append variants,
//! never renumber.

use wrangler_fusion::strategies::FusedValue;
use wrangler_mapping::Mapping;
use wrangler_sources::faults::{AcquireError, Degradation};
use wrangler_sources::SourceId;
use wrangler_table::wire::{self, Dec, Enc};
use wrangler_table::{Table, TableError, Value};
use wrangler_uncertainty::{Belief, EvidenceKind};

use crate::acquire::{
    AcquireOutcome, AcquisitionSummary, BreakerConfig, BreakerState, CircuitBreaker, Disposition,
};
use crate::contain::{ContainmentReport, Stage, StageTallies};
use crate::working::WorkCounters;

type Result<T> = std::result::Result<T, TableError>;

fn bad(what: &str) -> TableError {
    TableError::Invalid(format!("checkpoint payload: {what}"))
}

// ---------------------------------------------------------------------------
// Primitive helpers
// ---------------------------------------------------------------------------

fn enc_belief(e: &mut Enc, b: &Belief) {
    let (lo, prior, ledger) = b.to_parts();
    e.f64(lo).f64(prior).usize(ledger.len());
    for (kind, n) in ledger {
        e.u8(kind.tag()).u32(*n);
    }
}

fn dec_belief(d: &mut Dec) -> Result<Belief> {
    let lo = d.f64()?;
    let prior = d.f64()?;
    let n = d.usize()?;
    let mut ledger = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let kind = EvidenceKind::from_tag(d.u8()?).ok_or_else(|| bad("unknown evidence kind"))?;
        ledger.push((kind, d.u32()?));
    }
    Ok(Belief::from_parts(lo, prior, ledger))
}

fn stage_tag(s: Stage) -> u8 {
    match s {
        Stage::MapGenerate => 0,
        Stage::Preflight => 1,
        Stage::MapApply => 2,
        Stage::Union => 3,
        Stage::Er => 4,
        Stage::Fuse => 5,
        Stage::Assemble => 6,
    }
}

fn stage_from_tag(tag: u8) -> Result<Stage> {
    Ok(match tag {
        0 => Stage::MapGenerate,
        1 => Stage::Preflight,
        2 => Stage::MapApply,
        3 => Stage::Union,
        4 => Stage::Er,
        5 => Stage::Fuse,
        6 => Stage::Assemble,
        _ => return Err(bad("unknown stage tag")),
    })
}

fn enc_breaker(e: &mut Enc, b: &CircuitBreaker) {
    let (cfg, state, fails, probes) = b.to_parts();
    e.u32(cfg.failure_threshold)
        .u64(cfg.cooldown)
        .u32(cfg.half_open_successes);
    match state {
        BreakerState::Closed => {
            e.u8(0);
        }
        BreakerState::Open { until } => {
            e.u8(1).u64(until);
        }
        BreakerState::HalfOpen => {
            e.u8(2);
        }
    }
    e.u32(fails).u32(probes);
}

fn dec_breaker(d: &mut Dec) -> Result<CircuitBreaker> {
    let cfg = BreakerConfig {
        failure_threshold: d.u32()?,
        cooldown: d.u64()?,
        half_open_successes: d.u32()?,
    };
    let state = match d.u8()? {
        0 => BreakerState::Closed,
        1 => BreakerState::Open { until: d.u64()? },
        2 => BreakerState::HalfOpen,
        _ => return Err(bad("unknown breaker state")),
    };
    Ok(CircuitBreaker::from_parts(cfg, state, d.u32()?, d.u32()?))
}

fn enc_degradation(e: &mut Enc, deg: &Degradation) {
    match *deg {
        Degradation::Truncated { kept, total } => {
            e.u8(0).usize(kept).usize(total);
        }
        Degradation::CorruptCells { cells } => {
            e.u8(1).usize(cells);
        }
        Degradation::SchemaDrifted { dropped } => {
            e.u8(2).usize(dropped);
        }
        Degradation::TypePoisoned { cells } => {
            e.u8(3).usize(cells);
        }
        Degradation::Pathological { cells } => {
            e.u8(4).usize(cells);
        }
        Degradation::NonFinite { cells } => {
            e.u8(5).usize(cells);
        }
        Degradation::Oversized { rows } => {
            e.u8(6).usize(rows);
        }
    }
}

fn dec_degradation(d: &mut Dec) -> Result<Degradation> {
    Ok(match d.u8()? {
        0 => Degradation::Truncated {
            kept: d.usize()?,
            total: d.usize()?,
        },
        1 => Degradation::CorruptCells { cells: d.usize()? },
        2 => Degradation::SchemaDrifted { dropped: d.usize()? },
        3 => Degradation::TypePoisoned { cells: d.usize()? },
        4 => Degradation::Pathological { cells: d.usize()? },
        5 => Degradation::NonFinite { cells: d.usize()? },
        6 => Degradation::Oversized { rows: d.usize()? },
        _ => return Err(bad("unknown degradation tag")),
    })
}

fn enc_acquire_error(e: &mut Enc, err: &AcquireError) {
    match *err {
        AcquireError::UnknownSource(id) => {
            e.u8(0).u32(id.0);
        }
        AcquireError::Unavailable { source } => {
            e.u8(1).u32(source.0);
        }
        AcquireError::DeadlineExceeded {
            source,
            latency,
            deadline,
        } => {
            e.u8(2).u32(source.0).u64(latency).u64(deadline);
        }
        AcquireError::RateLimited {
            source,
            retry_after,
        } => {
            e.u8(3).u32(source.0).u64(retry_after);
        }
    }
}

fn dec_acquire_error(d: &mut Dec) -> Result<AcquireError> {
    Ok(match d.u8()? {
        0 => AcquireError::UnknownSource(SourceId(d.u32()?)),
        1 => AcquireError::Unavailable {
            source: SourceId(d.u32()?),
        },
        2 => AcquireError::DeadlineExceeded {
            source: SourceId(d.u32()?),
            latency: d.u64()?,
            deadline: d.u64()?,
        },
        3 => AcquireError::RateLimited {
            source: SourceId(d.u32()?),
            retry_after: d.u64()?,
        },
        _ => return Err(bad("unknown acquire-error tag")),
    })
}

fn enc_summary(e: &mut Enc, s: &AcquisitionSummary) {
    e.usize(s.outcomes.len());
    for o in &s.outcomes {
        e.u32(o.id.0).u32(o.attempts).u64(o.ticks);
        match &o.disposition {
            Disposition::Fresh => {
                e.u8(0);
            }
            Disposition::Degraded(deg) => {
                e.u8(1);
                enc_degradation(e, deg);
            }
            Disposition::Skipped(err) => {
                e.u8(2);
                enc_acquire_error(e, err);
            }
            Disposition::Quarantined => {
                e.u8(3);
            }
        }
    }
    e.usize(s.skipped.len());
    for (id, why) in &s.skipped {
        e.u32(id.0).str(why);
    }
    e.usize(s.degraded.len());
    for (id, deg) in &s.degraded {
        e.u32(id.0);
        enc_degradation(e, deg);
    }
    e.u64(s.attempts).u64(s.ticks);
}

fn dec_summary(d: &mut Dec) -> Result<AcquisitionSummary> {
    let n = d.usize()?;
    let mut outcomes = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let id = SourceId(d.u32()?);
        let attempts = d.u32()?;
        let ticks = d.u64()?;
        let disposition = match d.u8()? {
            0 => Disposition::Fresh,
            1 => Disposition::Degraded(dec_degradation(d)?),
            2 => Disposition::Skipped(dec_acquire_error(d)?),
            3 => Disposition::Quarantined,
            _ => return Err(bad("unknown disposition tag")),
        };
        outcomes.push(AcquireOutcome {
            id,
            attempts,
            ticks,
            disposition,
        });
    }
    let n = d.usize()?;
    let mut skipped = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        skipped.push((SourceId(d.u32()?), d.str()?));
    }
    let n = d.usize()?;
    let mut degraded = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        degraded.push((SourceId(d.u32()?), dec_degradation(d)?));
    }
    Ok(AcquisitionSummary {
        outcomes,
        skipped,
        degraded,
        attempts: d.u64()?,
        ticks: d.u64()?,
    })
}

fn enc_creport(e: &mut Enc, r: &ContainmentReport) {
    e.usize(r.quarantines.len());
    for q in &r.quarantines {
        e.u32(q.source.0).u8(stage_tag(q.stage)).str(&q.reason);
    }
    for stage in Stage::all() {
        let t = r.tallies(stage);
        e.u64(t.quarantined)
            .u64(t.dropped_rows)
            .u64(t.deadline_hits)
            .u64(t.panics_caught);
    }
}

fn dec_creport(d: &mut Dec) -> Result<ContainmentReport> {
    let mut r = ContainmentReport::default();
    let n = d.usize()?;
    for _ in 0..n {
        let source = SourceId(d.u32()?);
        let stage = stage_from_tag(d.u8()?)?;
        let reason = d.str()?;
        r.quarantines.push(crate::contain::QuarantineEvent {
            source,
            stage,
            reason,
        });
    }
    for stage in Stage::all() {
        let t = StageTallies {
            quarantined: d.u64()?,
            dropped_rows: d.u64()?,
            deadline_hits: d.u64()?,
            panics_caught: d.u64()?,
        };
        r.set_tallies(stage, t);
    }
    Ok(r)
}

fn enc_mapping(e: &mut Enc, m: &Mapping) {
    wire::encode_schema(e, &m.target);
    e.usize(m.bindings.len());
    for b in &m.bindings {
        match b {
            None => {
                e.u8(0);
            }
            Some(i) => {
                e.u8(1).usize(*i);
            }
        }
    }
    e.usize(m.binding_beliefs.len());
    for b in &m.binding_beliefs {
        enc_belief(e, b);
    }
    enc_belief(e, &m.belief);
}

fn dec_mapping(d: &mut Dec) -> Result<Mapping> {
    let target = wire::decode_schema(d)?;
    let n = d.usize()?;
    let mut bindings = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        bindings.push(match d.u8()? {
            0 => None,
            1 => Some(d.usize()?),
            _ => return Err(bad("unknown binding tag")),
        });
    }
    let n = d.usize()?;
    let mut binding_beliefs = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        binding_beliefs.push(dec_belief(d)?);
    }
    let belief = dec_belief(d)?;
    Ok(Mapping {
        target,
        bindings,
        binding_beliefs,
        belief,
    })
}

fn enc_fused(e: &mut Enc, f: &FusedValue) {
    wire::encode_value(e, &f.value);
    e.f64(f.weight).f64(f.total_weight).usize(f.supporters.len());
    for &s in &f.supporters {
        e.usize(s);
    }
    e.f64(f.freshness);
}

fn dec_fused(d: &mut Dec) -> Result<FusedValue> {
    let value = wire::decode_value(d)?;
    let weight = d.f64()?;
    let total_weight = d.f64()?;
    let n = d.usize()?;
    let mut supporters = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        supporters.push(d.usize()?);
    }
    Ok(FusedValue {
        value,
        weight,
        total_weight,
        supporters,
        freshness: d.f64()?,
    })
}

fn enc_ids(e: &mut Enc, ids: &[SourceId]) {
    e.usize(ids.len());
    for id in ids {
        e.u32(id.0);
    }
}

fn dec_ids(d: &mut Dec) -> Result<Vec<SourceId>> {
    let n = d.usize()?;
    let mut out = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        out.push(SourceId(d.u32()?));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Session state snapshot
// ---------------------------------------------------------------------------

/// Everything a wrangle pass has mutated up to a seam, in plain data form.
/// The session builds one of these at each seam (and applies one on a
/// checkpoint hit); the struct exists so serialization lives here while the
/// private `Wrangler` fields stay private.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionState {
    /// Session tick at pass start.
    pub now: u64,
    /// Source-access budget spent.
    pub access_spent: f64,
    /// Per-source trust beliefs, in registry order.
    pub trust: Vec<Belief>,
    /// Per-source data-context relevance, in registry order.
    pub relevance: Vec<f64>,
    /// Acquisition engine: virtual clock.
    pub acq_clock: u64,
    /// Acquisition engine: total attempts across the session.
    pub acq_total_attempts: u64,
    /// Acquisition engine: total backoff ticks across the session.
    pub acq_total_backoff: u64,
    /// Acquisition engine: the per-source breaker fleet.
    pub breakers: Vec<CircuitBreaker>,
    /// ER pair-score cache entries, in key order: key, score, and the
    /// source pair that produced the score (the partition-scoped eviction
    /// grain — see `PairScoreCache::evict_sources`).
    pub pair_entries: Vec<(String, f64, u32, u32)>,
    /// Pair-cache hit counter.
    pub pair_hits: u64,
    /// Pair-cache miss counter.
    pub pair_misses: u64,
    /// Work counters.
    pub work: WorkCounters,
    /// The containment report of the pass so far.
    pub creport: ContainmentReport,
    /// The acquisition summary of the pass (empty before the acquire seam).
    pub last_acquisition: AcquisitionSummary,
}

impl SessionState {
    /// Serialize to the canonical checkpoint payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.now).f64(self.access_spent);
        e.usize(self.trust.len());
        for b in &self.trust {
            enc_belief(&mut e, b);
        }
        e.usize(self.relevance.len());
        for &r in &self.relevance {
            e.f64(r);
        }
        e.u64(self.acq_clock)
            .u64(self.acq_total_attempts)
            .u64(self.acq_total_backoff);
        e.usize(self.breakers.len());
        for b in &self.breakers {
            enc_breaker(&mut e, b);
        }
        e.usize(self.pair_entries.len());
        for (k, v, a, b) in &self.pair_entries {
            e.str(k).f64(*v).u64(*a as u64).u64(*b as u64);
        }
        e.u64(self.pair_hits).u64(self.pair_misses);
        e.usize(self.work.extractions)
            .usize(self.work.mappings_generated)
            .usize(self.work.tables_mapped)
            .usize(self.work.er_pairs)
            .usize(self.work.slots_fused);
        enc_creport(&mut e, &self.creport);
        enc_summary(&mut e, &self.last_acquisition);
        e.into_bytes()
    }

    /// Decode a payload produced by [`encode`](Self::encode).
    pub fn decode(bytes: &[u8]) -> Result<SessionState> {
        let mut d = Dec::new(bytes);
        let now = d.u64()?;
        let access_spent = d.f64()?;
        let n = d.usize()?;
        let mut trust = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            trust.push(dec_belief(&mut d)?);
        }
        let n = d.usize()?;
        let mut relevance = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            relevance.push(d.f64()?);
        }
        let acq_clock = d.u64()?;
        let acq_total_attempts = d.u64()?;
        let acq_total_backoff = d.u64()?;
        let n = d.usize()?;
        let mut breakers = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            breakers.push(dec_breaker(&mut d)?);
        }
        let n = d.usize()?;
        let mut pair_entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let k = d.str()?;
            let score = d.f64()?;
            let a = d.u64()? as u32;
            let b = d.u64()? as u32;
            pair_entries.push((k, score, a, b));
        }
        let pair_hits = d.u64()?;
        let pair_misses = d.u64()?;
        let work = WorkCounters {
            extractions: d.usize()?,
            mappings_generated: d.usize()?,
            tables_mapped: d.usize()?,
            er_pairs: d.usize()?,
            slots_fused: d.usize()?,
        };
        let creport = dec_creport(&mut d)?;
        let last_acquisition = dec_summary(&mut d)?;
        Ok(SessionState {
            now,
            access_spent,
            trust,
            relevance,
            acq_clock,
            acq_total_attempts,
            acq_total_backoff,
            breakers,
            pair_entries,
            pair_hits,
            pair_misses,
            work,
            creport,
            last_acquisition,
        })
    }

    /// Stable hash of the decision-relevant state, mixed into downstream
    /// content keys: any divergence in trust, clock or breaker state forces
    /// a recompute instead of replaying a checkpoint from a different
    /// history.
    pub fn content_hash(&self) -> u64 {
        wire::hash64(&self.encode())
    }
}

// ---------------------------------------------------------------------------
// Stage output records
// ---------------------------------------------------------------------------

/// A full seam record: the session snapshot plus the stage's output bytes,
/// each length-prefixed.
pub fn encode_record(state: &SessionState, output: &[u8]) -> Vec<u8> {
    let mut e = Enc::new();
    e.bytes(&state.encode()).bytes(output);
    e.into_bytes()
}

/// Split a seam record back into `(state, output bytes)`.
pub fn decode_record(bytes: &[u8]) -> Result<(SessionState, Vec<u8>)> {
    let mut d = Dec::new(bytes);
    let state_bytes = d.bytes()?;
    let state = SessionState::decode(state_bytes)?;
    let output = d.bytes()?.to_vec();
    Ok((state, output))
}

/// Select-seam output: the chosen sources.
pub struct SelectOut {
    /// Selected source ids, in selection order.
    pub selected: Vec<SourceId>,
}

impl SelectOut {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        enc_ids(&mut e, &self.selected);
        e.into_bytes()
    }

    /// Decode.
    pub fn decode(bytes: &[u8]) -> Result<SelectOut> {
        let mut d = Dec::new(bytes);
        Ok(SelectOut {
            selected: dec_ids(&mut d)?,
        })
    }
}

/// Acquire-seam output: the surviving sources and any degraded payloads
/// (delivered tables that differ from the registry's).
pub struct AcquireOut {
    /// Survivors, in selection order.
    pub selected: Vec<SourceId>,
    /// `(source index, delivered table)` for degraded deliveries.
    pub degraded_tables: Vec<(usize, Table)>,
}

impl AcquireOut {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        enc_ids(&mut e, &self.selected);
        e.usize(self.degraded_tables.len());
        for (i, t) in &self.degraded_tables {
            e.usize(*i);
            wire::encode_table(&mut e, t);
        }
        e.into_bytes()
    }

    /// Decode.
    pub fn decode(bytes: &[u8]) -> Result<AcquireOut> {
        let mut d = Dec::new(bytes);
        let selected = dec_ids(&mut d)?;
        let n = d.usize()?;
        let mut degraded_tables = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            let i = d.usize()?;
            degraded_tables.push((i, wire::decode_table(&mut d)?));
        }
        Ok(AcquireOut {
            selected,
            degraded_tables,
        })
    }
}

/// Map-generate-seam output: every survivor's mapping (regenerated or
/// carried over) plus the surviving selection.
pub struct MapGenOut {
    /// Survivors after generation quarantines.
    pub selected: Vec<SourceId>,
    /// `(source index, mapping)` for every survivor.
    pub mappings: Vec<(usize, Mapping)>,
}

impl MapGenOut {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        enc_ids(&mut e, &self.selected);
        e.usize(self.mappings.len());
        for (i, m) in &self.mappings {
            e.usize(*i);
            enc_mapping(&mut e, m);
        }
        e.into_bytes()
    }

    /// Decode.
    pub fn decode(bytes: &[u8]) -> Result<MapGenOut> {
        let mut d = Dec::new(bytes);
        let selected = dec_ids(&mut d)?;
        let n = d.usize()?;
        let mut mappings = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            let i = d.usize()?;
            mappings.push((i, dec_mapping(&mut d)?));
        }
        Ok(MapGenOut { selected, mappings })
    }
}

/// Map-apply-seam output: every survivor's mapped table and filter tag.
pub struct MapApplyOut {
    /// Survivors after apply quarantines.
    pub selected: Vec<SourceId>,
    /// `(source index, mapped table, filter tag)` for every survivor.
    pub mapped: Vec<(usize, Table, Option<String>)>,
}

impl MapApplyOut {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        enc_ids(&mut e, &self.selected);
        e.usize(self.mapped.len());
        for (i, t, tag) in &self.mapped {
            e.usize(*i);
            wire::encode_table(&mut e, t);
            match tag {
                None => {
                    e.u8(0);
                }
                Some(s) => {
                    e.u8(1).str(s);
                }
            }
        }
        e.into_bytes()
    }

    /// Decode.
    pub fn decode(bytes: &[u8]) -> Result<MapApplyOut> {
        let mut d = Dec::new(bytes);
        let selected = dec_ids(&mut d)?;
        let n = d.usize()?;
        let mut mapped = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            let i = d.usize()?;
            let t = wire::decode_table(&mut d)?;
            let tag = match d.u8()? {
                0 => None,
                1 => Some(d.str()?),
                _ => return Err(bad("unknown filter-tag marker")),
            };
            mapped.push((i, t, tag));
        }
        Ok(MapApplyOut { selected, mapped })
    }
}

/// Union-seam output: the provenance-tagged union rows.
pub struct UnionOut {
    /// Survivors after union quarantines.
    pub selected: Vec<SourceId>,
    /// `(source index, row values)` in union order.
    pub union: Vec<(usize, Vec<Value>)>,
    /// Rows removed by the row filter (an obs counter the outcome reports).
    pub union_filtered: u64,
}

impl UnionOut {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        enc_ids(&mut e, &self.selected);
        e.u64(self.union_filtered);
        e.usize(self.union.len());
        for (i, row) in &self.union {
            e.usize(*i).usize(row.len());
            for v in row {
                wire::encode_value(&mut e, v);
            }
        }
        e.into_bytes()
    }

    /// Decode.
    pub fn decode(bytes: &[u8]) -> Result<UnionOut> {
        let mut d = Dec::new(bytes);
        let selected = dec_ids(&mut d)?;
        let union_filtered = d.u64()?;
        let n = d.usize()?;
        let mut union = Vec::with_capacity(n.min(1 << 22));
        for _ in 0..n {
            let i = d.usize()?;
            let cols = d.usize()?;
            let mut row = Vec::with_capacity(cols.min(4096));
            for _ in 0..cols {
                row.push(wire::decode_value(&mut d)?);
            }
            union.push((i, row));
        }
        Ok(UnionOut {
            selected,
            union,
            union_filtered,
        })
    }
}

/// ER-seam output: the clustering.
pub struct ErOut {
    /// Entity clusters (row indices into the union).
    pub clusters: Vec<Vec<usize>>,
    /// Entity id per union row.
    pub row_entity: Vec<usize>,
}

impl ErOut {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.usize(self.clusters.len());
        for c in &self.clusters {
            e.usize(c.len());
            for &r in c {
                e.usize(r);
            }
        }
        e.usize(self.row_entity.len());
        for &r in &self.row_entity {
            e.usize(r);
        }
        e.into_bytes()
    }

    /// Decode.
    pub fn decode(bytes: &[u8]) -> Result<ErOut> {
        let mut d = Dec::new(bytes);
        let n = d.usize()?;
        let mut clusters = Vec::with_capacity(n.min(1 << 22));
        for _ in 0..n {
            let m = d.usize()?;
            let mut c = Vec::with_capacity(m.min(1 << 22));
            for _ in 0..m {
                c.push(d.usize()?);
            }
            clusters.push(c);
        }
        let n = d.usize()?;
        let mut row_entity = Vec::with_capacity(n.min(1 << 22));
        for _ in 0..n {
            row_entity.push(d.usize()?);
        }
        Ok(ErOut {
            clusters,
            row_entity,
        })
    }
}

/// Fuse-seam output: the fused slots and the fusion-time source context.
/// Claims are *not* serialized — a hit rebuilds the claim set from the
/// (already restored) union, row→entity map and the removed-source list,
/// which is cheap and keeps the heavy `ClaimSet` out of the wire format.
pub struct FuseOut {
    /// Survivors after fuse-stage quarantines.
    pub selected: Vec<SourceId>,
    /// Source indices quarantined at the fuse seam (their claims are
    /// excluded from the rebuilt claim set).
    pub fuse_removed: Vec<usize>,
    /// Fusion-time per-source trust (truthfinder blend).
    pub trust: Vec<f64>,
    /// Fusion-time per-source age.
    pub age: Vec<u64>,
    /// Fused slots: `(entity, attr, value)`.
    pub fused: Vec<(usize, usize, FusedValue)>,
}

impl FuseOut {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        enc_ids(&mut e, &self.selected);
        e.usize(self.fuse_removed.len());
        for &i in &self.fuse_removed {
            e.usize(i);
        }
        e.usize(self.trust.len());
        for &t in &self.trust {
            e.f64(t);
        }
        e.usize(self.age.len());
        for &a in &self.age {
            e.u64(a);
        }
        e.usize(self.fused.len());
        for (ent, attr, f) in &self.fused {
            e.usize(*ent).usize(*attr);
            enc_fused(&mut e, f);
        }
        e.into_bytes()
    }

    /// Decode.
    pub fn decode(bytes: &[u8]) -> Result<FuseOut> {
        let mut d = Dec::new(bytes);
        let selected = dec_ids(&mut d)?;
        let n = d.usize()?;
        let mut fuse_removed = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            fuse_removed.push(d.usize()?);
        }
        let n = d.usize()?;
        let mut trust = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            trust.push(d.f64()?);
        }
        let n = d.usize()?;
        let mut age = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            age.push(d.u64()?);
        }
        let n = d.usize()?;
        let mut fused = Vec::with_capacity(n.min(1 << 22));
        for _ in 0..n {
            let ent = d.usize()?;
            let attr = d.usize()?;
            fused.push((ent, attr, dec_fused(&mut d)?));
        }
        Ok(FuseOut {
            selected,
            fuse_removed,
            trust,
            age,
            fused,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_table::{Schema, Value};
    use wrangler_uncertainty::Evidence;

    fn sample_state() -> SessionState {
        let mut trust = Belief::from_prior(0.6);
        trust.update(&Evidence::vote(EvidenceKind::Component, false, 0.8).discounted(0.9));
        let mut creport = ContainmentReport::default();
        creport.record_quarantine(SourceId(3), Stage::Union, "poison");
        creport.drop_rows(Stage::Union, 12);
        creport.caught_panic(Stage::MapGenerate);
        SessionState {
            now: 42,
            access_spent: 7.25,
            trust: vec![Belief::from_prior(0.6), trust],
            relevance: vec![1.0, 0.5],
            acq_clock: 99,
            acq_total_attempts: 17,
            acq_total_backoff: 31,
            breakers: vec![
                CircuitBreaker::new(BreakerConfig::default()),
                CircuitBreaker::from_parts(
                    BreakerConfig::default(),
                    BreakerState::Open { until: 123 },
                    3,
                    0,
                ),
                CircuitBreaker::from_parts(BreakerConfig::default(), BreakerState::HalfOpen, 0, 1),
            ],
            pair_entries: vec![
                ("5#a|b".into(), 0.875, 0, 2),
                ("9#x|y|z".into(), -0.0, 1, 1),
            ],
            pair_hits: 4,
            pair_misses: 9,
            work: WorkCounters {
                extractions: 1,
                mappings_generated: 2,
                tables_mapped: 3,
                er_pairs: 4,
                slots_fused: 5,
            },
            creport,
            last_acquisition: AcquisitionSummary {
                outcomes: vec![
                    AcquireOutcome {
                        id: SourceId(0),
                        attempts: 1,
                        ticks: 2,
                        disposition: Disposition::Fresh,
                    },
                    AcquireOutcome {
                        id: SourceId(1),
                        attempts: 3,
                        ticks: 9,
                        disposition: Disposition::Skipped(AcquireError::DeadlineExceeded {
                            source: SourceId(1),
                            latency: 30,
                            deadline: 8,
                        }),
                    },
                    AcquireOutcome {
                        id: SourceId(2),
                        attempts: 1,
                        ticks: 1,
                        disposition: Disposition::Degraded(Degradation::Truncated {
                            kept: 5,
                            total: 10,
                        }),
                    },
                    AcquireOutcome {
                        id: SourceId(3),
                        attempts: 0,
                        ticks: 0,
                        disposition: Disposition::Quarantined,
                    },
                ],
                skipped: vec![(SourceId(1), "deadline".into())],
                degraded: vec![(SourceId(2), Degradation::Truncated { kept: 5, total: 10 })],
                attempts: 5,
                ticks: 12,
            },
        }
    }

    #[test]
    fn session_state_roundtrips_bit_exact() {
        let s = sample_state();
        let bytes = s.encode();
        let back = SessionState::decode(&bytes).unwrap();
        assert_eq!(back, s);
        // Bit-exactness of the floats, not just PartialEq.
        assert_eq!(
            back.access_spent.to_bits(),
            s.access_spent.to_bits()
        );
        assert_eq!(back.encode(), bytes, "canonical: re-encode is identical");
    }

    #[test]
    fn record_framing_roundtrips() {
        let s = sample_state();
        let out = SelectOut {
            selected: vec![SourceId(0), SourceId(2)],
        }
        .encode();
        let rec = encode_record(&s, &out);
        let (s2, out2) = decode_record(&rec).unwrap();
        assert_eq!(s2, s);
        assert_eq!(out2, out);
        let sel = SelectOut::decode(&out2).unwrap();
        assert_eq!(sel.selected, vec![SourceId(0), SourceId(2)]);
    }

    #[test]
    fn truncated_state_errors_cleanly() {
        let bytes = sample_state().encode();
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                SessionState::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must error"
            );
        }
    }

    #[test]
    fn stage_outputs_roundtrip() {
        let schema = Schema::of_strs(&["name", "price"]);
        let mut t = Table::empty(schema.clone());
        t.push_row(vec![Value::Str("a".into()), Value::Float(-0.0)])
            .unwrap();
        let acq = AcquireOut {
            selected: vec![SourceId(1)],
            degraded_tables: vec![(1, t.clone())],
        };
        let back = AcquireOut::decode(&acq.encode()).unwrap();
        assert_eq!(back.selected, acq.selected);
        assert_eq!(
            wire::table_hash(&back.degraded_tables[0].1),
            wire::table_hash(&t)
        );

        let union = UnionOut {
            selected: vec![SourceId(0)],
            union: vec![
                (0, vec![Value::Str("x".into()), Value::Float(f64::NAN)]),
                (1, vec![Value::Null, Value::Int(-3)]),
            ],
            union_filtered: 2,
        };
        let back = UnionOut::decode(&union.encode()).unwrap();
        assert_eq!(back.union_filtered, 2);
        assert_eq!(back.union.len(), 2);
        match (&back.union[0].1[1], &union.union[0].1[1]) {
            (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
            other => panic!("expected floats, got {other:?}"),
        }

        let er = ErOut {
            clusters: vec![vec![0, 2], vec![1]],
            row_entity: vec![0, 1, 0],
        };
        let back = ErOut::decode(&er.encode()).unwrap();
        assert_eq!(back.clusters, er.clusters);
        assert_eq!(back.row_entity, er.row_entity);

        let fuse = FuseOut {
            selected: vec![SourceId(0), SourceId(1)],
            fuse_removed: vec![2],
            trust: vec![0.75, 0.5],
            age: vec![0, 9],
            fused: vec![(
                0,
                1,
                FusedValue {
                    value: Value::Float(1.5),
                    weight: 0.9,
                    total_weight: 1.2,
                    supporters: vec![0, 1],
                    freshness: 0.8,
                },
            )],
        };
        let back = FuseOut::decode(&fuse.encode()).unwrap();
        assert_eq!(back.fuse_removed, fuse.fuse_removed);
        assert_eq!(back.fused.len(), 1);
        assert_eq!(back.fused[0].2.supporters, vec![0, 1]);
    }

    #[test]
    fn mapping_roundtrips() {
        let target = Schema::of_strs(&["name", "price"]);
        let m = Mapping {
            target,
            bindings: vec![Some(1), None],
            binding_beliefs: vec![Belief::from_prior(0.8), Belief::uninformed()],
            belief: Belief::from_prior(0.7),
        };
        let gen = MapGenOut {
            selected: vec![SourceId(0)],
            mappings: vec![(0, m.clone())],
        };
        let back = MapGenOut::decode(&gen.encode()).unwrap();
        assert_eq!(back.mappings[0].1.bindings, m.bindings);
        assert_eq!(
            back.mappings[0].1.belief.log_odds().to_bits(),
            m.belief.log_odds().to_bits()
        );
    }

    #[test]
    fn corrupt_tags_error_not_panic() {
        let s = sample_state();
        let mut bytes = s.encode();
        // Flip every byte position one at a time; decode must never panic
        // (errors are fine, and a lucky flip may even decode to different
        // valid data — the store's checksum is what rejects those).
        for i in 0..bytes.len() {
            bytes[i] ^= 0xff;
            let _ = SessionState::decode(&bytes);
            bytes[i] ^= 0xff;
        }
    }
}
