//! Ground-truth evaluation against the synthetic fleet.
//!
//! Because the fleet generator knows the world it derived the sources from,
//! every experiment can score its output exactly: price accuracy, catalog
//! coverage, and their harmonic combination. The *system* never sees these
//! numbers during wrangling — they are the experimenter's oracle.

use std::collections::HashMap;

use wrangler_sources::GroundTruth;
use wrangler_table::{Table, Value};

/// Scores of a wrangled table against the ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scores {
    /// Fraction of catalog products represented by exactly one output row
    /// with the correct identity.
    pub coverage: f64,
    /// Among delivered (non-null) prices of identified products, the
    /// fraction within tolerance of the live true price.
    pub price_accuracy: f64,
    /// Fraction of catalog products with a delivered, correct price —
    /// the end-to-end yield ("did I learn the competitor's price?").
    pub correct_price_yield: f64,
    /// Harmonic mean of coverage and price accuracy.
    pub f1: f64,
}

/// Score a wrangled table (must expose `sku` and `price` columns) against
/// the truth. `tol` is the relative price tolerance.
pub fn score_against_truth(
    table: &Table,
    truth: &GroundTruth,
    tol: f64,
) -> wrangler_table::Result<Scores> {
    let sku_col = table.column_named("sku")?;
    let price_col = table.column_named("price")?;
    // First output row per recognized sku (duplicates penalize coverage
    // implicitly: they do not add new products).
    let mut seen: HashMap<&str, &Value> = HashMap::new();
    for (s, p) in sku_col.iter().zip(price_col.iter()) {
        if let Some(sku) = s.as_str() {
            if truth.index_of(sku).is_some() {
                seen.entry(sku).or_insert(p);
            }
        }
    }
    let found = seen.len();
    let total = truth.products.len().max(1);
    let mut delivered = 0usize;
    let mut correct = 0usize;
    for (sku, price) in &seen {
        if let Some(p) = price.as_f64() {
            delivered += 1;
            if truth.price_is_correct(sku, p, tol) {
                correct += 1;
            }
        }
    }
    let coverage = found as f64 / total as f64;
    let price_accuracy = if delivered == 0 {
        0.0
    } else {
        correct as f64 / delivered as f64
    };
    let correct_price_yield = correct as f64 / total as f64;
    let f1 = if coverage + price_accuracy == 0.0 {
        0.0
    } else {
        2.0 * coverage * price_accuracy / (coverage + price_accuracy)
    };
    Ok(Scores {
        coverage,
        price_accuracy,
        correct_price_yield,
        f1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_sources::FleetConfig;

    fn truth() -> GroundTruth {
        wrangler_sources::synthetic::generate_fleet(
            &FleetConfig {
                num_products: 10,
                num_sources: 1,
                now: 5,
                ..FleetConfig::default()
            },
            3,
        )
        .truth
    }

    #[test]
    fn perfect_table_scores_one() {
        let t = truth();
        let rows: Vec<Vec<Value>> = t
            .products
            .iter()
            .enumerate()
            .map(|(i, p)| vec![p.sku.clone().into(), Value::Float(t.price_at(i, t.now))])
            .collect();
        let table = Table::literal(&["sku", "price"], rows).unwrap();
        let s = score_against_truth(&table, &t, 1e-9).unwrap();
        assert_eq!(s.coverage, 1.0);
        assert_eq!(s.price_accuracy, 1.0);
        assert_eq!(s.correct_price_yield, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn wrong_and_missing_prices_counted() {
        let t = truth();
        let mut rows = Vec::new();
        for (i, p) in t.products.iter().enumerate().take(5) {
            let price = if i < 2 {
                Value::Float(t.price_at(i, t.now)) // correct
            } else if i < 4 {
                Value::Float(9999.0) // wrong
            } else {
                Value::Null // withheld
            };
            rows.push(vec![p.sku.clone().into(), price]);
        }
        let table = Table::literal(&["sku", "price"], rows).unwrap();
        let s = score_against_truth(&table, &t, 1e-6).unwrap();
        assert_eq!(s.coverage, 0.5);
        assert_eq!(s.price_accuracy, 0.5); // 2 of 4 delivered
        assert_eq!(s.correct_price_yield, 0.2); // 2 of 10
    }

    #[test]
    fn unknown_skus_do_not_inflate_coverage() {
        let t = truth();
        let table = Table::literal(
            &["sku", "price"],
            vec![vec!["GHOST-1".into(), Value::Float(1.0)]],
        )
        .unwrap();
        let s = score_against_truth(&table, &t, 1e-6).unwrap();
        assert_eq!(s.coverage, 0.0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn duplicate_rows_do_not_double_count() {
        let t = truth();
        let sku = t.products[0].sku.clone();
        let price = t.price_at(0, t.now);
        let table = Table::literal(
            &["sku", "price"],
            vec![
                vec![sku.clone().into(), Value::Float(price)],
                vec![sku.into(), Value::Float(9999.0)],
            ],
        )
        .unwrap();
        let s = score_against_truth(&table, &t, 1e-6).unwrap();
        assert_eq!(s.coverage, 0.1);
        assert_eq!(s.price_accuracy, 1.0); // first row wins
    }
}
