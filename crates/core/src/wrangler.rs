//! The end-to-end wrangling session.

use std::collections::{BTreeMap, HashMap}; // hash-ok: HashMap here is lookup-only (slot/feedback state); nothing iterates it into output

use wrangler_context::{Criterion, DataContext, QualityVector, UserContext};
use wrangler_feedback::router::ValueProvenance;
use wrangler_feedback::{
    route, FeedbackItem, FeedbackStore, FeedbackTarget, RoutedSignal, RoutingMode,
};
use wrangler_fusion::strategies::{fuse_attribute, FusedValue, SourceContext};
use wrangler_fusion::truthfinder::{truthfinder, TruthFinderConfig};
use wrangler_fusion::{ClaimSet, FuseKernel, MIN_SLOTS_PER_WORKER};
use wrangler_lint::{GateMode, Report as LintReport};
use wrangler_mapping::{generate_mapping, generate_mapping_with_profiles, Mapping};
use wrangler_match::{profile_table, MatchConfig};
use wrangler_obs::{MetricsReport, ObsMode, Telemetry};
use wrangler_quality::profile::{quality_vector, ExternalSignals, TableProfile};
use wrangler_resolve::learn::{refine_rule, LabeledPair};
use wrangler_resolve::{
    candidates_blocked, cluster_pairs, ErConfig, ErKernel, FieldSim, SimKind,
};
use wrangler_sources::faults::{Degradation, FaultConfig, FaultProfile};
use wrangler_sources::{
    select_greedy_utility, select_marginal_gain, Source, SourceEstimate, SourceId, SourceMeta,
    SourceRegistry,
};
use wrangler_plan::{FilterPlacement, OptMode, PlanProgram};
use wrangler_table::par;
use wrangler_table::{ops, DataType, Expr, Schema, Table, TableError, Value};
use wrangler_uncertainty::{Belief, Evidence, EvidenceKind};

use wrangler_ckpt::{CheckpointStore, ContentKey, CrashPolicy, CrashSite};
use wrangler_table::wire;

use crate::acquire::{Acquisition, AcquisitionSummary};
use crate::ckpt_io::{self, SessionState};
use crate::incr::{self, BlockMemo, ErMemo, FuseMemo, IncrEngine};
use crate::contain::{
    catch_quiet, poison_reason, ContainMode, ContainPolicy, ContainmentReport, Guarded, Stage,
    StageGuard,
};
use crate::lower::{self, LowerInput};
use crate::planner::{Plan, SelectionStrategy};
use crate::working::{Artifact, PairScoreCache, WorkingData};

/// Per-source wrangling state in the Working Data.
#[derive(Debug, Clone)]
struct SourceState {
    /// Feedback-updated trust in the source.
    trust: Belief,
    /// The current mapping, if generated.
    mapping: Option<Mapping>,
    /// The mapped (target-schema) table, if computed.
    mapped: Option<Table>,
    /// Which filter placement (and predicate) `mapped` was computed under:
    /// `None` for a plain mapping run, `Some("acquire|…")` /
    /// `Some("post-map|…")` when an early-placed filter already ran. A cached
    /// table is reusable only when the tag matches the current program's
    /// decision.
    filter_tag: Option<String>,
    /// Relevance to the data context in \[0, 1\].
    relevance: f64,
}

/// Caches from the last full wrangle, the substrate of incremental
/// recomputation.
#[derive(Debug, Clone)]
struct WrangleCache {
    /// Union rows: (source index, values aligned to the target schema).
    union: Vec<(usize, Vec<Value>)>,
    /// Entity id per union row.
    row_entity: Vec<usize>,
    /// Number of entities.
    entities: usize,
    /// The claim set.
    claims: ClaimSet,
    /// Source trust/age context used at fusion time.
    source_ctx: SourceContext,
    /// Fused slots.
    fused: HashMap<(usize, usize), FusedValue>, // hash-ok: keyed by slot, read via get()
    /// Selected sources.
    selected: Vec<SourceId>,
}

/// Output of the ER section of a wrangle (see [`Wrangler::er_stage`]).
struct ErStageOutcome {
    clusters: Vec<Vec<usize>>,
    row_entity: Vec<usize>,
}

/// Incremental-engine context threaded into [`Wrangler::er_stage`]: the
/// union's block layout and row→source map (pair-cache eviction grain),
/// the stage content key, and whether memo store / index remap are licensed
/// for this pass.
struct ErIncrCtx<'a> {
    /// `(source, block key, rows)` per union block; empty disables remap
    /// and layout-carrying memo storage.
    layout: &'a [(usize, u64, usize)],
    /// Source of every union row (tags fresh pair-cache inserts).
    union_srcs: &'a [usize],
    /// Full-stage content key to store the new memo under.
    er_key: u64,
    pass_fp: u64,
    prog_fp: u64,
    /// Store a fresh memo after computing (engine on, chaos off).
    store: bool,
    /// Consult the previous memo's packed scores via index remap.
    remap: bool,
}

/// The result of a wrangle.
#[derive(Debug, Clone)]
pub struct WrangleOutcome {
    /// One row per entity in the target schema, plus a `_confidence` column.
    pub table: Table,
    /// Quality vector of the result under the session's user context.
    pub quality: QualityVector,
    /// Multi-criteria utility of `quality` under the user context.
    pub utility: f64,
    /// Sources that were integrated.
    pub selected_sources: Vec<SourceId>,
    /// Number of entities produced.
    pub entities: usize,
    /// Budget spent so far (source access + feedback).
    pub cost_spent: f64,
    /// Selected sources that could not be acquired and were excluded from
    /// this result, with the reason (graceful degradation: the result covers
    /// the surviving subset only).
    pub skipped_sources: Vec<(SourceId, String)>,
    /// Sources integrated from degraded payloads (truncated / partially
    /// corrupted), with what was degraded.
    pub degraded_sources: Vec<(SourceId, Degradation)>,
    /// Acquisition attempts the last pass spent (the retry-cost axis).
    pub acquisition_attempts: u64,
    /// Virtual ticks the last acquisition pass spent (latency + backoff).
    pub acquisition_ticks: u64,
    /// Pre-flight static-analysis findings for this wrangle (merged across
    /// mappings and the plan audit); empty when the gate is off or everything
    /// was clean.
    pub lint: LintReport,
    /// Telemetry snapshot at delivery time: per-stage spans, counters and
    /// gauges aggregated over the session so far. Empty under
    /// [`ObsMode::Off`].
    pub metrics: MetricsReport,
    /// What stage-level containment did during this pass: sources
    /// quarantined mid-pipeline, rows dropped, budgets hit, panics caught.
    /// Clean (empty) when nothing went wrong past acquisition.
    pub containment: ContainmentReport,
}

/// A wrangling session: context + sources + working data + feedback loop.
#[derive(Debug, Clone)]
pub struct Wrangler {
    /// The declarative user context steering every decision.
    pub user: UserContext,
    /// The data context (ontology, master data, reference lists).
    pub data_ctx: DataContext,
    /// The feedback ledger.
    pub feedback: FeedbackStore,
    /// Working-data bookkeeping (dirtiness + work counters).
    pub working: WorkingData,
    /// How feedback is propagated (Shared is the paper's proposal; Siloed is
    /// the E4 baseline).
    pub routing: RoutingMode,
    /// The resilient acquisition engine: retry/backoff policy, per-source
    /// circuit breakers, and the failure-handling mode.
    pub acquisition: Acquisition,
    /// Stage-level fault containment: per-stage budgets, poison scanning,
    /// panic isolation, and the quarantine-vs-abort mode. Default
    /// [`ContainMode::Contain`] — a source that goes bad *mid-pipeline*
    /// degrades the pass instead of killing it.
    pub contain: ContainPolicy,
    /// The session's telemetry collector: hierarchical stage spans over the
    /// monotonic clock plus deterministic counters/gauges (see
    /// [`wrangler_obs`]). On by default; E13 puts the overhead under 5% of
    /// wall on the standard workload.
    pub obs: Telemetry,
    target: Schema,
    target_sample: Table,
    registry: SourceRegistry,
    states: Vec<SourceState>,
    er_cfg: ErConfig,
    /// Worker-count override for the ER scoring pool (`None` = hardware
    /// parallelism). Output is identical for any value; experiments pin it.
    er_workers: Option<usize>,
    /// Worker-count override for the fuse-slot pool (`None` = hardware
    /// parallelism). Output is identical for any value; experiments pin it.
    fuse_workers: Option<usize>,
    match_cfg: MatchConfig,
    now: u64,
    cache: Option<WrangleCache>,
    last_acquisition: AcquisitionSummary,
    access_spent: f64,
    fusion_override: Option<wrangler_fusion::Strategy>,
    /// Slot-level constraints from direct value feedback: values the user
    /// refuted (never deliver again) and values the user confirmed (pin).
    vetoes: HashMap<(usize, usize), Vec<Value>>, // hash-ok: point lookups only
    confirmations: HashMap<(usize, usize), Value>, // hash-ok: point lookups only
    /// Pre-flight gate mode: `Deny` (default) refuses to execute artifacts
    /// with error-grade findings, `Warn` records and proceeds, `Off` skips
    /// analysis entirely.
    lint_gate: GateMode,
    /// Findings of the last pre-flight pass, labelled by origin (`"plan"`,
    /// `"plan-ir"` or `"src{i}"`), kept for provenance export.
    last_lint: Vec<(String, LintReport)>,
    /// Containment report of the last full wrangle.
    last_containment: ContainmentReport,
    /// Optional row predicate over the target schema, applied before ER.
    /// Where it actually runs is the optimizer's decision (per-source
    /// pushdown when the facts allow it; the union loop otherwise).
    row_filter: Option<Expr>,
    /// Optional output projection (target column names). `None` delivers
    /// every target column. Drives dead-column elimination at fuse.
    output_columns: Option<Vec<String>>,
    /// Whether wrangles execute the optimized plan (default) or the naive
    /// one — the E16 comparison axis. Outputs are byte-identical.
    opt_mode: OptMode,
    /// The compiled plan program of the last wrangle (IR, analysis facts,
    /// findings, and the verified rewrite ledger).
    last_program: Option<PlanProgram>,
    /// Optional checkpoint store: with one attached, every wrangle persists
    /// each stage seam under a content key, and a fresh process pointed at
    /// the same store replays the deepest valid prefix instead of
    /// recomputing it (crash-resilient wrangling).
    ckpt: Option<CheckpointStore>,
    /// Optional crash-injection policy (test/bench harness): deterministic
    /// panic or process exit at one stage seam.
    crash: Option<CrashPolicy>,
    /// The incremental dataflow engine: per-source union block memos plus
    /// whole-stage ER/fuse memos, all content-keyed off the pass
    /// fingerprint (see [`crate::incr`]). On by default.
    incr: IncrEngine,
}

impl Wrangler {
    /// New session. `target_sample` carries the target schema *and* sample
    /// instances (typically the master catalog), which matching exploits.
    pub fn new(user: UserContext, data_ctx: DataContext, target_sample: Table) -> Wrangler {
        let target = target_sample.schema().clone();
        let plan = Plan::derive(&user);
        let er_cfg = build_er_config(&target, plan.er_threshold);
        Wrangler {
            user,
            data_ctx,
            feedback: FeedbackStore::new(),
            working: WorkingData::new(),
            routing: RoutingMode::Shared,
            acquisition: Acquisition::default(),
            contain: ContainPolicy::default(),
            obs: Telemetry::default(),
            target,
            target_sample,
            registry: SourceRegistry::new(),
            states: Vec::new(),
            er_cfg,
            er_workers: None,
            fuse_workers: None,
            match_cfg: MatchConfig::default(),
            now: 0,
            cache: None,
            last_acquisition: AcquisitionSummary::default(),
            access_spent: 0.0,
            fusion_override: None,
            vetoes: HashMap::new(), // hash-ok: see field declaration
            confirmations: HashMap::new(), // hash-ok: see field declaration
            lint_gate: GateMode::default(),
            last_lint: Vec::new(),
            last_containment: ContainmentReport::default(),
            row_filter: None,
            output_columns: None,
            opt_mode: OptMode::default(),
            last_program: None,
            ckpt: None,
            crash: None,
            incr: IncrEngine::new(),
        }
    }

    /// Install a row predicate over the target schema: only rows satisfying
    /// it enter ER and fusion. The predicate must be pure (no side channels —
    /// the analyzer checks) and is placed by the optimizer: at acquisition
    /// when every referenced binding is certified cell-exact, after mapping
    /// when the containment barrier is down, in the union loop otherwise.
    pub fn with_row_filter(mut self, predicate: Expr) -> Wrangler {
        self.row_filter = Some(predicate);
        self.invalidate_plan_shape();
        self
    }

    /// Project the delivered table onto `columns` (target names, in the
    /// given order; `_confidence` is always appended). Unprojected columns
    /// become dead at fuse and the optimizer skips fusing them.
    pub fn with_output_columns(mut self, columns: Vec<String>) -> Wrangler {
        self.output_columns = Some(columns);
        self.invalidate_plan_shape();
        self
    }

    /// Select naive or optimized plan execution (default:
    /// [`OptMode::Optimized`]). Outputs are byte-identical; naive is the E16
    /// cost baseline.
    pub fn with_opt_mode(mut self, mode: OptMode) -> Wrangler {
        self.opt_mode = mode;
        self.invalidate_plan_shape();
        self
    }

    /// The compiled plan program of the last wrangle: the typed IR, the
    /// analysis fact base, findings, and the verified rewrite ledger.
    pub fn plan_program(&self) -> Option<&PlanProgram> {
        self.last_program.as_ref()
    }

    /// A plan-shape knob changed (filter, projection, opt mode): cached
    /// mapped tables may embed a stale early-placed filter, and cached
    /// clusters/results were computed under the old shape.
    fn invalidate_plan_shape(&mut self) {
        for i in 0..self.states.len() {
            self.working.invalidate(Artifact::MappedTable(i));
        }
        self.working.invalidate(Artifact::Clusters);
        self.working.invalidate(Artifact::Result);
        self.cache = None;
        // Shape-keyed memos would miss anyway (the pass fingerprint covers
        // every shape knob); dropping them bounds memory to live content.
        self.incr.clear();
    }

    /// Enable/disable the incremental dataflow engine (default: on).
    /// Disabling drops every stage memo AND the content-keyed pair-score
    /// cache: the resulting session recomputes everything from scratch,
    /// making it the genuinely cold comparator the identity tests and the
    /// E18 timing baseline wrangle against.
    pub fn set_incr_enabled(&mut self, on: bool) {
        self.incr.set_enabled(on);
        if !on {
            self.working.pair_scores.clear();
        }
    }

    /// Is the incremental dataflow engine on?
    pub fn incr_enabled(&self) -> bool {
        self.incr.enabled()
    }

    /// Number of live incremental memos (union blocks + ER + fuse).
    pub fn incr_memo_count(&self) -> usize {
        self.incr.memo_count()
    }

    /// Deliver a fresh extraction of one source's payload — the
    /// pay-as-you-go update path. Diffs the content hash first: an
    /// identical payload is a no-op (nothing dirtied, every memo intact).
    /// A real change bumps the source's `last_updated` to the current tick,
    /// dirties exactly that source's derivation chain, evicts only the ER
    /// pair scores touching its rows, and forgets its union block memo —
    /// the next wrangle recomputes that partition and reuses the rest.
    /// Returns true if the payload actually changed; errors on an unknown
    /// id or a schema that no longer matches the registered payload's.
    pub fn update_source(&mut self, id: SourceId, table: Table) -> wrangler_table::Result<bool> {
        let i = id.0 as usize;
        let Some(existing) = self.registry.get(id) else {
            return Err(TableError::Unavailable(format!("{id}: not registered")));
        };
        if existing.table.schema() != table.schema() {
            return Err(TableError::Invalid(format!(
                "{id}: update changes the source schema; register a new source instead"
            )));
        }
        let new_hash = wire::table_hash(&table);
        let prev_hash = self
            .registry
            .update_table(id, table)
            .unwrap_or(new_hash ^ 1);
        if prev_hash == new_hash {
            return Ok(false);
        }
        if let Some(src) = self.registry.get_mut(id) {
            src.meta.last_updated = self.now;
        }
        // Dirty exactly this source's chain. Clusters/fusion recompute is
        // driven by the content keys (the union changes ⇒ the ER key
        // misses), not by a blanket invalidation — that is what lets the
        // other n−1 partitions replay.
        self.working.invalidate(Artifact::Extraction(i));
        self.working.invalidate(Artifact::Mapping(i));
        self.working.invalidate(Artifact::MappedTable(i));
        self.working.invalidate(Artifact::Result);
        self.working.work.extractions += 1;
        let (evicted, retained) = self.working.pair_scores.evict_sources(&[i]);
        self.obs.count("incr.pair_cache.evicted", evicted as u64);
        self.obs.count("incr.pair_cache.retained", retained as u64);
        self.incr.forget_source(i);
        self.cache = None;
        Ok(true)
    }

    /// Replace the stage-level containment policy (default:
    /// [`ContainPolicy::contain`]). [`ContainPolicy::abort`] turns the first
    /// mid-pipeline fault into a structured error (the E15 baseline);
    /// [`ContainPolicy::off`] disables scanning entirely (the overhead
    /// baseline).
    pub fn with_contain_policy(mut self, policy: ContainPolicy) -> Wrangler {
        self.contain = policy;
        self
    }

    /// The containment report of the last full wrangle: which sources were
    /// quarantined mid-pipeline, where, and why.
    pub fn containment_report(&self) -> &ContainmentReport {
        &self.last_containment
    }

    /// Force a fusion strategy regardless of the plan (ablation harness).
    pub fn with_fusion_strategy(mut self, strategy: wrangler_fusion::Strategy) -> Wrangler {
        self.fusion_override = Some(strategy);
        self
    }

    /// Replace the matcher configuration (e.g. the names-only baseline).
    pub fn with_match_config(mut self, cfg: MatchConfig) -> Wrangler {
        self.match_cfg = cfg;
        self
    }

    /// Pin the ER scoring pool to `workers` threads (default: hardware
    /// parallelism). Clusters and scores are byte-identical for any worker
    /// count — this knob trades wall-clock only (E14's sweep axis).
    pub fn with_er_workers(mut self, workers: usize) -> Wrangler {
        self.er_workers = Some(workers.max(1));
        self
    }

    /// Pin the fuse-slot pool to `workers` threads (default: hardware
    /// parallelism). Fused values are byte-identical for any worker count —
    /// this knob trades wall-clock only (E14's fuse sweep axis).
    pub fn with_fuse_workers(mut self, workers: usize) -> Wrangler {
        self.fuse_workers = Some(workers.max(1));
        self
    }

    /// Set the pre-flight static-analysis gate mode (default: `Deny`).
    pub fn with_lint_gate(mut self, mode: GateMode) -> Wrangler {
        self.lint_gate = mode;
        self
    }

    /// Set the telemetry mode (default: [`ObsMode::On`]). `Off` turns every
    /// record operation into a cheap branch — the E13 overhead baseline.
    pub fn with_obs_mode(mut self, mode: ObsMode) -> Wrangler {
        self.obs.set_mode(mode);
        self
    }

    /// Snapshot the session's metrics: stage timings (wall-clock,
    /// non-deterministic) segregated from counters and gauges
    /// (deterministic functions of the seeded data flow).
    pub fn metrics(&self) -> MetricsReport {
        self.obs.report()
    }

    /// The current pre-flight gate mode.
    pub fn lint_gate(&self) -> GateMode {
        self.lint_gate
    }

    /// The last wrangle's fusion inputs — claim set, source context and the
    /// planned strategy — for benchmarks and tests that drive the fuse
    /// kernel directly (E14's fuse scaling sweep). `None` before the first
    /// wrangle.
    pub fn fusion_inputs(
        &self,
    ) -> Option<(&ClaimSet, &SourceContext, wrangler_fusion::Strategy)> {
        let cache = self.cache.as_ref()?;
        Some((&cache.claims, &cache.source_ctx, self.plan().fusion))
    }

    /// Findings of the last pre-flight pass, labelled by origin (`"plan"` or
    /// `"src{i}"`).
    pub fn lint_findings(&self) -> &[(String, LintReport)] {
        &self.last_lint
    }

    /// The last pre-flight findings merged into a single canonical report.
    pub fn lint_report(&self) -> LintReport {
        let mut merged = LintReport::new();
        for (_, r) in &self.last_lint {
            merged.merge(r.clone());
        }
        merged.canonicalize();
        merged
    }

    /// Set the current tick (for timeliness computations).
    pub fn set_now(&mut self, tick: u64) {
        self.now = tick;
    }

    /// The current mapping for a source, if one has been generated or
    /// installed.
    pub fn mapping_of(&self, id: SourceId) -> Option<&Mapping> {
        self.states.get(id.0 as usize)?.mapping.as_ref()
    }

    /// Install a hand-authored (or corrected) mapping for a source,
    /// overriding the generated one. The mapping is treated as clean — the
    /// next wrangle will not regenerate it — but the mapped table is
    /// invalidated so execution (and the pre-flight gate) see the new
    /// artifact. Returns false if the source is unknown.
    pub fn override_mapping(&mut self, id: SourceId, mapping: Mapping) -> bool {
        let i = id.0 as usize;
        let Some(state) = self.states.get_mut(i) else {
            return false;
        };
        state.mapping = Some(mapping);
        state.mapped = None;
        self.working.mark_clean(Artifact::Mapping(i));
        self.working.invalidate(Artifact::MappedTable(i));
        self.working.invalidate(Artifact::Clusters);
        self.working.invalidate(Artifact::Result);
        true
    }

    /// Switch the user context mid-session (§2.1: "a single application may
    /// have different user contexts"). The plan is re-derived on the next
    /// wrangle; cached claims and clusters survive, so switching contexts is
    /// a re-selection + re-fusion, not a from-scratch run — unless the new
    /// plan needs a different ER threshold, which invalidates clustering.
    pub fn set_user_context(&mut self, user: UserContext) {
        let old_plan = self.plan();
        self.user = user;
        let new_plan = self.plan();
        if (new_plan.er_threshold - old_plan.er_threshold).abs() > 1e-12 {
            self.er_cfg = build_er_config(&self.target, new_plan.er_threshold);
            self.working.invalidate(Artifact::Clusters);
            // Pair scores survive: they are threshold-independent (only the
            // match filter moves), so the re-clustering pass replays them
            // from the content-keyed cache instead of re-scoring.
        }
        self.working.invalidate(Artifact::Result);
    }

    /// The derived plan for the current user context (with any ablation
    /// overrides applied).
    pub fn plan(&self) -> Plan {
        let mut plan = Plan::derive(&self.user);
        if let Some(s) = self.fusion_override {
            plan.fusion = s;
        }
        plan
    }

    /// The target schema.
    pub fn target(&self) -> &Schema {
        &self.target
    }

    /// Register a source (already extracted into a table).
    pub fn add_source(&mut self, meta: SourceMeta, table: Table) -> SourceId {
        let id = self.registry.register_with_meta(meta, table);
        self.states.push(SourceState {
            trust: Belief::from_prior(0.6),
            mapping: None,
            mapped: None,
            filter_tag: None,
            relevance: 1.0,
        });
        self.working.invalidate_source(id.0 as usize);
        self.working.work.extractions += 1;
        id
    }

    /// Number of registered sources.
    pub fn num_sources(&self) -> usize {
        self.registry.len()
    }

    /// Current trust in a source.
    pub fn source_trust(&self, source: SourceId) -> f64 {
        self.states[source.0 as usize].trust.probability()
    }

    /// Source by id, as a structured error instead of a panic when the id is
    /// stale (e.g. a cached selection referring to a re-built registry).
    fn source(&self, id: SourceId) -> wrangler_table::Result<&Source> {
        self.registry
            .get(id)
            .ok_or_else(|| TableError::Unavailable(format!("{id}: not registered")))
    }

    /// Attach a seeded fault layer to the fleet (robustness experiments).
    pub fn inject_faults(&mut self, cfg: &FaultConfig) {
        self.registry.inject_faults(cfg);
    }

    /// Override one source's fault profile.
    pub fn set_fault_profile(&mut self, id: SourceId, profile: FaultProfile) {
        self.registry.set_fault_profile(id, profile);
    }

    /// How the last wrangle's acquisition pass went: per-source
    /// dispositions, skips, degradations, and retry cost.
    pub fn acquisition_summary(&self) -> &AcquisitionSummary {
        &self.last_acquisition
    }

    /// Estimate every source's selection-relevant properties from profiling,
    /// master-data coverage and feedback-updated trust. Large sources are
    /// probed on a bounded sample rather than scanned (§4.3 scale
    /// independence: selection must not require touching all of every
    /// candidate source).
    pub fn estimates(&mut self) -> Vec<SourceEstimate> {
        let master_rows = self.target_sample.num_rows().max(1);
        let probe_cfg = wrangler_sources::ProbeConfig::default();
        let mut out = Vec::with_capacity(self.registry.len());
        for (i, src) in self.registry.iter().enumerate() {
            let relevance = if src.table.num_rows() > probe_cfg.sample_rows {
                wrangler_sources::probe_source(&src.table, &self.data_ctx, "product", &probe_cfg)
                    .ok()
                    .and_then(|p| p.relevance)
                    .unwrap_or(1.0)
            } else {
                wrangler_quality::profile::master_relevance(&src.table, &self.data_ctx, "product")
                    .unwrap_or(1.0)
            };
            self.states[i].relevance = relevance;
            let coverage =
                ((src.table.num_rows() as f64 / master_rows as f64) * relevance).min(1.0);
            out.push(SourceEstimate {
                id: src.meta.id,
                coverage,
                accuracy: self.states[i].trust.probability(),
                age: self.now.saturating_sub(src.meta.last_updated),
                cost: src.meta.access_cost,
                relevance,
                availability: self.acquisition.availability(i, self.now),
            });
        }
        out
    }

    /// Full wrangle: select → map → resolve → fuse → gate → report. Every
    /// stage past acquisition runs under the session's [`ContainPolicy`]:
    /// a source whose payload errors, panics, or blows a budget
    /// mid-pipeline is quarantined and the pass completes on survivors
    /// (mirroring acquisition degradation); the decisions land in
    /// [`WrangleOutcome::containment`] and the `contain.<stage>.*` counters.
    pub fn wrangle(&mut self) -> wrangler_table::Result<WrangleOutcome> {
        let mut creport = ContainmentReport::default();
        let mut out = self.wrangle_contained(&mut creport);
        creport.emit(&mut self.obs);
        if let Ok(o) = &mut out {
            o.containment = creport.clone();
            // Re-snapshot: the emit above added the contain.* counters.
            o.metrics = self.obs.report();
        }
        self.last_containment = creport;
        out
    }

    /// Mark source `i` quarantined mid-pipeline: discount its trust (same
    /// soft evidence as an acquisition skip), trip its breaker so the next
    /// acquisition pass sees it unavailable until the cooldown probes it,
    /// and invalidate its cached artifacts so a later (possibly clean)
    /// delivery is remapped from scratch.
    fn discount_quarantined(&mut self, i: usize) {
        if let Some(state) = self.states.get_mut(i) {
            state
                .trust
                .update(&Evidence::vote(EvidenceKind::Component, false, 0.8).discounted(0.9));
        }
        self.acquisition.record_pipeline_failure(i);
        self.working.invalidate(Artifact::Mapping(i));
        self.working.invalidate(Artifact::MappedTable(i));
    }

    // --- Crash-resilient checkpointing -----------------------------------

    /// Attach a checkpoint store: every subsequent wrangle persists each
    /// stage seam (select, acquire, map_generate, map_apply, union, er,
    /// fuse) under a content key derived from the source payload hashes,
    /// the compiled plan fingerprint and the chained upstream seam keys.
    /// A fresh process pointed at the same store replays the deepest valid
    /// prefix byte-identically instead of recomputing it — including
    /// quarantine, trust and breaker state, which travel inside each seam
    /// record. One caveat: the keys do not cover the data context (its
    /// debug rendering iterates an unordered map), so sessions that mutate
    /// the data context between runs must use a fresh store directory.
    pub fn with_checkpoint_store(mut self, store: CheckpointStore) -> Wrangler {
        self.ckpt = Some(store);
        self
    }

    /// Arm deterministic crash injection: the next wrangle panics (or
    /// exits) at the configured stage seam, *after* that seam's checkpoint
    /// persisted. The E17 harness and the resume proptests use this to
    /// interrupt a pass at every boundary.
    pub fn with_crash_policy(mut self, policy: CrashPolicy) -> Wrangler {
        self.crash = Some(policy);
        self
    }

    /// Disarm crash injection (the resume half of an in-process test).
    pub fn clear_crash_policy(&mut self) {
        self.crash = None;
    }

    /// The attached checkpoint store, if any.
    pub fn checkpoint_store(&self) -> Option<&CheckpointStore> {
        self.ckpt.as_ref()
    }

    /// Resume an interrupted wrangle from the attached checkpoint store.
    /// Replay is just re-running the pass: every seam whose content key has
    /// a valid record restores its snapshot and skips its compute; the
    /// first seam without one (where the crash hit) computes live. The
    /// outcome is byte-identical to an uninterrupted run.
    pub fn resume(&mut self) -> wrangler_table::Result<WrangleOutcome> {
        if self.ckpt.is_none() {
            return Err(TableError::Invalid(
                "resume requires an attached checkpoint store".into(),
            ));
        }
        self.wrangle()
    }

    fn crash_fire(&self, site: CrashSite) {
        if let Some(p) = &self.crash {
            p.fire(site);
        }
    }

    /// Snapshot everything this pass has mutated so far (see
    /// [`SessionState`]); stored inside every seam record.
    fn snapshot_state(&self, creport: &ContainmentReport) -> SessionState {
        SessionState {
            now: self.now,
            access_spent: self.access_spent,
            trust: self.states.iter().map(|s| s.trust.clone()).collect(),
            relevance: self.states.iter().map(|s| s.relevance).collect(),
            acq_clock: self.acquisition.clock(),
            acq_total_attempts: self.acquisition.total_attempts,
            acq_total_backoff: self.acquisition.total_backoff_ticks,
            breakers: self.acquisition.breakers().to_vec(),
            pair_entries: self
                .working
                .pair_scores
                .entries()
                .map(|(k, v, a, b)| (k.to_string(), v, a, b))
                .collect(),
            pair_hits: self.working.pair_scores.hits(),
            pair_misses: self.working.pair_scores.misses(),
            work: self.working.work,
            creport: creport.clone(),
            last_acquisition: self.last_acquisition.clone(),
        }
    }

    /// Apply a seam snapshot: the session (and the in-progress containment
    /// report) now look exactly as they did when the record was written, so
    /// side effects (trust discounts, breaker trips, quarantines) are never
    /// re-applied on replay.
    fn restore_state(&mut self, st: SessionState, creport: &mut ContainmentReport) {
        self.now = st.now;
        self.access_spent = st.access_spent;
        for (i, b) in st.trust.into_iter().enumerate() {
            if let Some(s) = self.states.get_mut(i) {
                s.trust = b;
            }
        }
        for (i, r) in st.relevance.into_iter().enumerate() {
            if let Some(s) = self.states.get_mut(i) {
                s.relevance = r;
            }
        }
        self.acquisition.total_attempts = st.acq_total_attempts;
        self.acquisition.total_backoff_ticks = st.acq_total_backoff;
        self.acquisition.restore_state(st.acq_clock, st.breakers);
        self.working.pair_scores =
            PairScoreCache::restore(st.pair_entries, st.pair_hits, st.pair_misses);
        self.working.work = st.work;
        *creport = st.creport;
        self.last_acquisition = st.last_acquisition;
    }

    /// Fingerprint of everything that shapes this pass besides the source
    /// payloads and runtime state: target schema + sample, user context,
    /// derived plan, ER/match/containment/acquisition configuration, filter
    /// and projection, and the value-feedback constraints (in sorted key
    /// order — their maps are lookup-only). Worker-count knobs are
    /// excluded: outputs are byte-identical for any pool width. The data
    /// context is excluded (see [`Self::with_checkpoint_store`]).
    fn pass_fingerprint(&self, plan: &Plan) -> u64 {
        let mut h = wire::Hasher64::new();
        let mut e = wire::Enc::new();
        wire::encode_schema(&mut e, &self.target);
        h.write(&e.into_bytes());
        h.write_u64(wire::table_hash(&self.target_sample));
        h.write_str(&format!("{:?}", self.user));
        h.write_str(&format!("{plan:?}"));
        h.write_str(&format!("{:?}", self.er_cfg));
        h.write_str(&format!("{:?}", self.match_cfg));
        h.write_str(&format!("{:?}", self.contain));
        h.write_str(&format!("{:?}", self.row_filter));
        h.write_str(&format!("{:?}", self.output_columns));
        h.write_str(&format!("{:?}", self.opt_mode));
        h.write_str(&format!("{:?}", self.lint_gate));
        h.write_str(&format!("{:?}", self.routing));
        h.write_str(&format!("{:?}", self.acquisition.mode));
        h.write_str(&format!("{:?}", self.acquisition.policy));
        h.write_str(&format!("{:?}", self.acquisition.breaker_cfg));
        for i in 0..self.registry.len() {
            h.write_str(&format!(
                "{:?}",
                self.registry.fault_profile(SourceId(i as u32))
            ));
        }
        let mut vetoes: Vec<_> = self.vetoes.iter().collect();
        vetoes.sort_by_key(|(k, _)| **k);
        for ((ent, attr), vals) in vetoes {
            h.write_u64(*ent as u64)
                .write_u64(*attr as u64)
                .write_str(&format!("{vals:?}"));
        }
        let mut confirms: Vec<_> = self.confirmations.iter().collect();
        confirms.sort_by_key(|(k, _)| **k);
        for ((ent, attr), v) in confirms {
            h.write_u64(*ent as u64)
                .write_u64(*attr as u64)
                .write_str(&format!("{v:?}"));
        }
        h.finish()
    }

    /// The first seam's key: the pass fingerprint plus everything the
    /// select stage reads — the session tick, every source's payload hash
    /// and pre-pass trust, and the acquisition engine's full state (clock,
    /// counters, breaker fleet). Two passes with any divergent history key
    /// differently, so a checkpoint can never replay across histories.
    fn seam_key_select(&self, pass_fp: u64) -> u64 {
        let mut k = ContentKey::stage("select", pass_fp).labelled("now", self.now);
        for i in 0..self.registry.len() {
            let id = SourceId(i as u32);
            k = k
                .input(self.registry.payload_hash(id).unwrap_or(0))
                .input(self.states[i].trust.to_parts().0.to_bits());
        }
        let acq = wire::hash64(format!("{:?}", self.acquisition).as_bytes());
        k.labelled("acq", acq).finish()
    }

    /// A downstream seam's key: chained through the previous seam's key, so
    /// a valid record implies every upstream seam matched — replaying the
    /// deepest valid prefix falls out of re-running the same sequence.
    fn seam_key(stage: &str, pass_fp: u64, chain: u64, extra: u64) -> u64 {
        ContentKey::stage(stage, pass_fp)
            .labelled("chain", chain)
            .input(extra)
            .finish()
    }

    /// Try to replay a seam. On a valid record the session state is
    /// restored and the stage's output payload returned; a miss, a torn
    /// record (checksum/framing failure — counted, unlinked, never loaded)
    /// or an undecodable payload returns `None` and the stage computes
    /// live.
    fn ckpt_load(
        &mut self,
        stage: &str,
        key: u64,
        creport: &mut ContainmentReport,
    ) -> Option<Vec<u8>> {
        let (raw, torn) = {
            let store = self.ckpt.as_ref()?;
            let before = store.stats().torn_detected;
            let raw = store.get(key);
            (raw, store.stats().torn_detected - before)
        };
        if torn > 0 {
            self.obs.count(&format!("ckpt.{stage}.torn_detected"), torn);
        }
        let Some(raw) = raw else {
            self.obs.inc(&format!("ckpt.{stage}.misses"));
            return None;
        };
        match ckpt_io::decode_record(&raw) {
            Ok((state, out)) if state.trust.len() == self.states.len() => {
                self.restore_state(state, creport);
                self.obs.inc(&format!("ckpt.{stage}.hits"));
                Some(out)
            }
            // Checksummed but undecodable, or from a different fleet shape:
            // never trust it, recompute.
            _ => {
                self.obs.inc(&format!("ckpt.{stage}.misses"));
                None
            }
        }
    }

    /// Persist a seam record (session snapshot + stage output). Atomic
    /// temp-file + rename inside the store; a failed write degrades to "no
    /// checkpoint at this seam", never to a torn record.
    fn ckpt_save(&mut self, stage: &str, key: u64, creport: &ContainmentReport, output: &[u8]) {
        let Some(store) = self.ckpt.as_ref() else {
            return;
        };
        let rec = ckpt_io::encode_record(&self.snapshot_state(creport), output);
        let wrote = store.put(key, &rec).is_ok();
        if wrote {
            self.obs
                .count(&format!("ckpt.{stage}.bytes_written"), rec.len() as u64);
        } else {
            self.obs.inc(&format!("ckpt.{stage}.write_failed"));
        }
    }

    /// The live map-generate stage: alignment budgets, chaos rolls, the
    /// blocked schema-matching fan-out, and per-source quarantine of
    /// panicking inputs. Factored out of `wrangle_contained` so the
    /// checkpoint seam around it stays readable.
    fn map_generate_stage(
        &mut self,
        policy: &ContainPolicy,
        creport: &mut ContainmentReport,
        selected: &mut Vec<SourceId>,
        degraded_tables: &BTreeMap<usize, Table>,
    ) -> wrangler_table::Result<()> {
        let need_mapping: Vec<usize> = selected
            .iter()
            .map(|id| id.0 as usize)
            .filter(|&i| {
                self.states[i].mapping.is_none() || self.working.is_dirty(Artifact::Mapping(i))
            })
            .collect();
        let mut gen_removed: Vec<usize> = Vec::new();
        if !need_mapping.is_empty() {
            let target = &self.target;
            let sample = &self.target_sample;
            let ontology = &self.data_ctx.ontology;
            let match_cfg = &self.match_cfg;
            let registry = &self.registry;
            // Resolve every input table before fanning out: workers then hold
            // plain references, and a stale id surfaces as a structured error
            // here instead of a panic inside a worker thread.
            let resolved: Vec<(usize, &Table)> = need_mapping
                .iter()
                .map(|&i| {
                    let table = match degraded_tables.get(&i) {
                        Some(t) => t,
                        None => {
                            &registry
                                .get(SourceId(i as u32))
                                .ok_or_else(|| {
                                    TableError::Unavailable(format!("src{i}: not registered"))
                                })?
                                .table
                        }
                    };
                    Ok((i, table))
                })
                .collect::<wrangler_table::Result<_>>()?;
            // Alignment budget: schema matching is quadratic-ish in cells,
            // so a pathologically oversized payload is ejected *before* it
            // can monopolize the pool — the logical-clock deadline for the
            // most expensive stage. Chaos rolls happen here too, on the
            // main thread, so worker count never changes which sources are
            // hit.
            let mut guard = StageGuard::new(Stage::MapGenerate, policy, creport);
            let mut inputs: Vec<(usize, &Table, bool)> = Vec::with_capacity(resolved.len());
            for (i, table) in resolved {
                let id = SourceId(i as u32);
                let cells = table.num_rows().saturating_mul(table.num_columns());
                if policy.scans_enabled() && cells > policy.max_align_cells {
                    if let Some(err) = guard.deadline_excess(id, "alignment budget", 0) {
                        return Err(err);
                    }
                    guard.flag(
                        id,
                        &format!(
                            "alignment budget exceeded ({cells} cells > {})",
                            policy.max_align_cells
                        ),
                    );
                    gen_removed.push(i);
                    continue;
                }
                let chaos_hit = !policy.is_off()
                    && policy
                        .chaos
                        .as_ref()
                        .is_some_and(|c| c.should_panic(Stage::MapGenerate, id));
                inputs.push((i, table, chaos_hit));
            }
            // Cross-source CSE: the target-sample column profiles are the
            // same for every source, so the optimized mode computes them
            // once here and shares them across workers (the
            // `share-target-profile` rewrite — recorded with its justifying
            // fact in the compiled program's ledger below). Naive mode
            // re-profiles the target per source: the E16 wall-clock
            // baseline. Profiling is deterministic, so the generated
            // mappings are identical either way.
            let shared_profiles = (self.opt_mode == OptMode::Optimized && inputs.len() >= 2)
                .then(|| profile_table(sample));
            let shared_profiles = shared_profiles.as_deref();
            type GenItem = (usize, Result<Mapping, String>);
            // Blocked fan-out (wrangler_table::par): contiguous chunks keep
            // each worker on adjacent sources and reassembly in chunk order
            // keeps the per-worker metrics and output deterministic. One
            // mapping generation is milliseconds of work, so the threshold
            // is 1 item per worker.
            let workers = par::effective_workers(par::available_parallelism(), inputs.len(), 1);
            let (chunks, worker_stats) = par::run_blocked(&inputs, workers, |_, chunk| {
                // Each item runs under its own catch: one poisonous source
                // quarantines itself, not its whole worker's chunk.
                chunk
                    .iter()
                    .map(|&(i, table, chaos_hit)| {
                        let res = catch_quiet(|| {
                            if chaos_hit {
                                panic!("chaos: injected map_generate panic"); // lint-allow: deterministic chaos injection, caught one line up
                            }
                            match shared_profiles {
                                Some(profiles) => generate_mapping_with_profiles(
                                    table,
                                    target,
                                    sample,
                                    profiles,
                                    Some(ontology),
                                    match_cfg,
                                ),
                                None => {
                                    generate_mapping(table, target, sample, Some(ontology), match_cfg)
                                }
                            }
                        });
                        (i, res)
                    })
                    .collect::<Vec<GenItem>>()
            })
            // Backstop: the per-item catch above means a worker thread can no
            // longer die mid-chunk, but if it somehow does, fail structured.
            .map_err(|msg| {
                TableError::Unavailable(format!("schema-matching worker panicked: {msg}"))
            })?;
            let generated: Vec<GenItem> = chunks.into_iter().flatten().collect();
            for (w, s) in worker_stats.iter().enumerate() {
                self.obs.count(&format!("map.worker{w}.items"), s.items);
                self.obs.record_nanos(&format!("worker{w}"), s.busy_nanos, 1);
            }
            let mut generated_ok = 0u64;
            for (i, res) in generated {
                match res {
                    Ok(mapping) => {
                        generated_ok += 1;
                        self.states[i].mapping = Some(mapping);
                        self.states[i].mapped = None;
                        self.working.work.mappings_generated += 1;
                        self.working.mark_clean(Artifact::Mapping(i));
                    }
                    Err(msg) => {
                        // The panicking source is *identified* and
                        // quarantined; survivors proceed (satellite fix for
                        // the old opaque all-or-nothing worker error).
                        creport.caught_panic(Stage::MapGenerate);
                        match policy.mode {
                            ContainMode::Contain => {
                                creport.record_quarantine(
                                    SourceId(i as u32),
                                    Stage::MapGenerate,
                                    format!("panicked: {msg}"),
                                );
                                gen_removed.push(i);
                            }
                            ContainMode::Abort | ContainMode::Off => {
                                return Err(TableError::Unavailable(format!(
                                    "src{i}: schema-matching worker panicked at map_generate: {msg}"
                                )));
                            }
                        }
                    }
                }
            }
            self.obs.count("map.generated", generated_ok);
        }
        if !gen_removed.is_empty() {
            selected.retain(|id| !gen_removed.contains(&(id.0 as usize)));
            for i in gen_removed {
                self.discount_quarantined(i);
            }
            if selected.is_empty() {
                self.obs.end();
                return Err(TableError::Unavailable(
                    "all sources quarantined at map_generate; no survivors".into(),
                ));
            }
        }
        Ok(())
    }

    fn wrangle_contained(
        &mut self,
        creport: &mut ContainmentReport,
    ) -> wrangler_table::Result<WrangleOutcome> {
        let plan = self.plan();
        let policy = self.contain.clone();
        // A pass that aborted with `?` leaves spans open; start clean. An
        // early error return below simply leaves this pass's spans
        // unrecorded — counters recorded up to the failure point persist.
        self.obs.start_pass();
        self.obs.begin("wrangle");
        self.obs.inc("pass.wrangle");

        // 1. Source selection under the user context. With a checkpoint
        // store attached, every stage seam below is content-keyed: a hit
        // restores the seam's session snapshot and installs its output
        // (side effects replay from the snapshot, never re-derive); a miss
        // computes live and persists. Keys chain, so a valid record implies
        // the whole upstream prefix matched.
        self.obs.begin("select");
        let ckpt_on = self.ckpt.is_some();
        // The incremental engine shares the checkpoint machinery's content
        // keys. It stands down for chaos passes wholesale: fault rolls are
        // stateful (each guarded region advances the chaos RNG), so skipping
        // a memoized region would change which sources later rolls hit.
        let incr_on = self.incr.enabled() && policy.chaos.is_none();
        let pass_fp = if ckpt_on || incr_on {
            self.pass_fingerprint(&plan)
        } else {
            0
        };
        let k_select = if ckpt_on { self.seam_key_select(pass_fp) } else { 0 };
        let selected: Vec<SourceId> = match self.ckpt_load("select", k_select, creport) {
            Some(out) => ckpt_io::SelectOut::decode(&out)?.selected,
            None => {
                let estimates = self.estimates();
                let selected: Vec<SourceId> = match plan.selection {
                    SelectionStrategy::MarginalGain => {
                        select_marginal_gain(&estimates, &self.user).0
                    }
                    SelectionStrategy::AllRelevant => {
                        let mut all = UserContext::balanced("all");
                        all.budget = self.user.budget;
                        all.max_sources = self.user.max_sources;
                        all.freshness_horizon = self.user.freshness_horizon;
                        select_greedy_utility(&estimates, &all)
                    }
                };
                self.obs.count("select.candidates", estimates.len() as u64);
                self.obs.count("select.selected", selected.len() as u64);
                let out = ckpt_io::SelectOut {
                    selected: selected.clone(),
                }
                .encode();
                self.ckpt_save("select", k_select, creport, &out);
                selected
            }
        };
        self.obs.end();
        self.crash_fire(CrashSite::AfterSelect);
        let mut chain = k_select;
        // 2. Acquisition: fallibly fetch every selected source through the
        // registry's (optional) fault layer under the session's resilience
        // policy. The pipeline then continues on the surviving subset:
        // skipped sources are recorded in the outcome and their trust
        // discounted, degraded payloads are integrated as delivered.
        self.obs.begin("acquire");
        let k_acquire = if ckpt_on {
            Self::seam_key("acquire", pass_fp, chain, 0)
        } else {
            0
        };
        let (mut selected, degraded_tables): (Vec<SourceId>, BTreeMap<usize, Table>) =
            match self.ckpt_load("acquire", k_acquire, creport) {
                Some(out) => {
                    let rec = ckpt_io::AcquireOut::decode(&out)?;
                    self.obs.end();
                    (rec.selected, rec.degraded_tables.into_iter().collect())
                }
                None => {
                    let mut report = self
                        .acquisition
                        .acquire_selected(&self.registry, &selected, self.now);
                    let skipped = report.skipped();
                    let degraded = report.degraded();
                    let survivors = report.survivors();
                    let degraded_payloads = std::mem::take(&mut report.degraded_tables);
                    self.obs.absorb("acquire", &report.events);
                    self.obs.count("acquire.attempts", report.attempts);
                    self.obs.count("acquire.virtual_ticks", report.ticks);
                    self.obs.count("acquire.skipped", skipped.len() as u64);
                    self.obs.count("acquire.degraded", degraded.len() as u64);
                    self.last_acquisition = AcquisitionSummary {
                        outcomes: report.outcomes,
                        skipped: skipped.clone(),
                        degraded: degraded.clone(),
                        attempts: report.attempts,
                        ticks: report.ticks,
                    };
                    self.obs.end();
                    if let Some(err) = report.aborted {
                        return Err(TableError::Unavailable(format!(
                            "acquisition aborted after {} attempts: {err}",
                            report.attempts
                        )));
                    }
                    for (id, _) in &skipped {
                        // An operational failure is (soft) evidence against
                        // the source; the discount keeps selection from
                        // re-picking serial offenders even after their
                        // breaker half-opens.
                        self.states[id.0 as usize].trust.update(
                            &Evidence::vote(EvidenceKind::Component, false, 0.8).discounted(0.9),
                        );
                    }
                    if survivors.is_empty() {
                        // `why` already names the source (AcquireError's
                        // Display does).
                        let reasons: Vec<String> =
                            skipped.iter().map(|(_, why)| why.clone()).collect();
                        return Err(TableError::Unavailable(format!(
                            "no sources could be acquired ({} selected, all failed: {})",
                            selected.len(),
                            reasons.join("; ")
                        )));
                    }
                    let selected = survivors;
                    let degraded_tables: BTreeMap<usize, Table> = degraded_payloads
                        .into_iter()
                        .map(|(id, t)| (id.0 as usize, t))
                        .collect();
                    self.access_spent = {
                        let mut total = 0.0;
                        for id in &selected {
                            total += self.source(*id)?.meta.access_cost;
                        }
                        total
                    };
                    let out = ckpt_io::AcquireOut {
                        selected: selected.clone(),
                        degraded_tables: degraded_tables
                            .iter()
                            .map(|(&i, t)| (i, t.clone()))
                            .collect(),
                    }
                    .encode();
                    self.ckpt_save("acquire", k_acquire, creport, &out);
                    (selected, degraded_tables)
                }
            };
        // Degraded payloads are transient: remap them from this delivery and
        // invalidate the cached artifacts so a later (possibly clean)
        // acquisition remaps again instead of reusing stale noise.
        for &i in degraded_tables.keys() {
            self.working.invalidate(Artifact::Mapping(i));
            self.working.invalidate(Artifact::MappedTable(i));
        }
        self.crash_fire(CrashSite::AfterAcquire);
        chain = k_acquire;

        // 3. Mapping generation + execution per acquired source. Generation
        // (schema matching) is the CPU-heavy step; fan it out across threads.
        self.obs.begin("map_generate");
        let k_mapgen = if ckpt_on {
            Self::seam_key("map_generate", pass_fp, chain, 0)
        } else {
            0
        };
        match self.ckpt_load("map_generate", k_mapgen, creport) {
            Some(out) => {
                let rec = ckpt_io::MapGenOut::decode(&out)?;
                selected = rec.selected;
                for (i, mapping) in rec.mappings {
                    if let Some(state) = self.states.get_mut(i) {
                        state.mapping = Some(mapping);
                        self.working.mark_clean(Artifact::Mapping(i));
                    }
                }
            }
            None => {
                self.map_generate_stage(&policy, creport, &mut selected, &degraded_tables)?;
                let out = ckpt_io::MapGenOut {
                    selected: selected.clone(),
                    mappings: selected
                        .iter()
                        .filter_map(|id| {
                            let i = id.0 as usize;
                            self.states[i].mapping.clone().map(|m| (i, m))
                        })
                        .collect(),
                }
                .encode();
                self.ckpt_save("map_generate", k_mapgen, creport, &out);
            }
        }
        self.obs.end();
        self.crash_fire(CrashSite::AfterMapGenerate);
        chain = k_mapgen;
        // 3b. Lower the pass into the typed plan IR and compile it: the
        // analyzer establishes the fact base, emits whole-plan findings
        // (L301+), and the optimizer's rewrite ledger is re-verified against
        // the facts. A forged or insufficient justification is rejected
        // *here*, with a typed L304 diagnostic, before anything executes.
        self.obs.begin("plan");
        self.last_lint.clear();
        let compiled = {
            let mut inputs: Vec<LowerInput<'_>> = Vec::with_capacity(selected.len());
            for id in &selected {
                let i = id.0 as usize;
                let table = match degraded_tables.get(&i) {
                    Some(t) => t,
                    None => {
                        &self
                            .registry
                            .get(*id)
                            .ok_or_else(|| TableError::Unavailable(format!("{id}: not registered")))?
                            .table
                    }
                };
                let mapping = self.states[i]
                    .mapping
                    .as_ref()
                    .ok_or_else(|| TableError::Invalid(format!("{id}: no mapping available")))?;
                inputs.push(LowerInput {
                    source: i,
                    name: format!("src{i}"),
                    table,
                    mapping,
                });
            }
            let ir = lower::lower(
                &inputs,
                &self.target,
                &plan,
                &policy,
                self.row_filter.as_ref(),
                self.output_columns.as_deref(),
                &self.er_cfg,
            );
            PlanProgram::compile(ir, self.opt_mode)
        };
        let program = match compiled {
            Ok(p) => p,
            Err(report) => {
                self.obs.inc("plan.rejected");
                let first = report
                    .errors()
                    .next()
                    .map(|d| d.to_string())
                    .unwrap_or_default();
                let summary = report.summary();
                self.last_lint.push(("plan-ir".to_string(), report));
                return Err(TableError::Invalid(format!(
                    "plan compilation rejected the wrangle ({summary}): {first}"
                )));
            }
        };
        self.obs.count("plan.nodes", program.ir.nodes.len() as u64);
        self.obs.count("plan.facts", program.facts.len() as u64);
        self.obs
            .count("plan.findings", program.report.diagnostics().len() as u64);
        self.obs.count("opt.rewrites", program.rewrites.len() as u64);
        for rw in &program.rewrites {
            self.obs.inc(&format!("opt.rewrite.{}", rw.kind.name()));
        }
        if self.lint_gate != GateMode::Off && !program.report.is_empty() {
            self.last_lint.push(("plan-ir".to_string(), program.report.clone()));
        }
        self.last_program = Some(program);
        self.obs.end();

        // 3c. Pre-flight static analysis: lint every (mapping, source schema)
        // pair plus the plan's determinism description *before* any mapping
        // executes. Under `Deny`, error-grade findings abort here with a
        // structured error instead of surfacing mid-run (or never). The
        // whole-plan findings from 3b participate in the same gate decision.
        self.obs.begin("preflight");
        if self.lint_gate != GateMode::Off {
            let audit = wrangler_lint::audit_steps(&plan.describe());
            if !audit.is_empty() {
                self.last_lint.push(("plan".to_string(), audit));
            }
            let mut pf_removed: Vec<usize> = Vec::new();
            for id in &selected {
                let i = id.0 as usize;
                let table = match degraded_tables.get(&i) {
                    Some(t) => t,
                    None => {
                        &self
                            .registry
                            .get(*id)
                            .ok_or_else(|| TableError::Unavailable(format!("{id}: not registered")))?
                            .table
                    }
                };
                let mapping = self.states[i]
                    .mapping
                    .as_ref()
                    .ok_or_else(|| TableError::Invalid(format!("{id}: no mapping available")))?;
                let report = wrangler_lint::check_mapping(mapping, table.schema());
                if !report.is_empty() {
                    // Opt-in containment at the gate: quarantine the one
                    // source whose artifact would be denied instead of
                    // refusing the whole wrangle. Findings stay recorded.
                    if policy.quarantine_preflight
                        && policy.mode == ContainMode::Contain
                        && report.blocks(self.lint_gate)
                    {
                        creport.record_quarantine(
                            *id,
                            Stage::Preflight,
                            "pre-flight lint blocked this source's mapping",
                        );
                        pf_removed.push(i);
                    }
                    self.last_lint.push((format!("src{i}"), report));
                }
            }
            // The gate decision covers the plan plus *surviving* sources;
            // quarantined sources keep their findings in `lint_findings`
            // but no longer block the pass.
            let mut merged = LintReport::new();
            for (origin, r) in &self.last_lint {
                let quarantined = origin
                    .strip_prefix("src")
                    .and_then(|s| s.parse::<usize>().ok())
                    .is_some_and(|i| pf_removed.contains(&i));
                if !quarantined {
                    merged.merge(r.clone());
                }
            }
            merged.canonicalize();
            self.obs
                .count("lint.findings", merged.diagnostics().len() as u64);
            if merged.blocks(self.lint_gate) {
                self.obs.inc("lint.gate_denials");
                let first = merged
                    .errors()
                    .next()
                    .map(|d| d.to_string())
                    .unwrap_or_default();
                return Err(TableError::Invalid(format!(
                    "pre-flight lint rejected the wrangle ({}): {first}",
                    merged.summary()
                )));
            }
            if !pf_removed.is_empty() {
                selected.retain(|id| !pf_removed.contains(&(id.0 as usize)));
                for i in pf_removed {
                    self.discount_quarantined(i);
                }
                if selected.is_empty() {
                    self.obs.end();
                    return Err(TableError::Unavailable(
                        "all sources quarantined at preflight; no survivors".into(),
                    ));
                }
            }
        }
        self.obs.end();
        self.obs.begin("map_apply");
        let prog_fp = if ckpt_on || incr_on {
            self.last_program.as_ref().map(|p| p.fingerprint()).unwrap_or(0)
        } else {
            0
        };
        let k_apply = if ckpt_on {
            Self::seam_key("map_apply", pass_fp, chain, prog_fp)
        } else {
            0
        };
        let track_scans = self.obs.is_on();
        let mut scan_filter_cells = 0u64;
        let mut scan_bytes = 0u64;
        match self.ckpt_load("map_apply", k_apply, creport) {
            Some(out) => {
                let rec = ckpt_io::MapApplyOut::decode(&out)?;
                selected = rec.selected;
                for (i, table, tag) in rec.mapped {
                    if let Some(state) = self.states.get_mut(i) {
                        state.mapped = Some(table);
                        state.filter_tag = tag;
                        self.working.mark_clean(Artifact::MappedTable(i));
                    }
                }
            }
            None => {
        let mut apply_removed: Vec<usize> = Vec::new();
        let mut scan_map_cells = 0u64;
        {
            let program = self.last_program.as_ref();
            let target = &self.target;
            let registry = &self.registry;
            let states = &mut self.states;
            let working = &mut self.working;
            let mut guard = StageGuard::new(Stage::MapApply, &policy, creport);
            for id in &selected {
                let i = id.0 as usize;
                let placement = program
                    .map(|p| p.placement_for(i))
                    .unwrap_or(FilterPlacement::Union);
                let predicate = program.and_then(|p| p.predicate());
                let desired_tag = match (placement, predicate) {
                    (FilterPlacement::Union, _) | (_, None) => None,
                    (p, Some(e)) => Some(format!("{}|{e:?}", p.name())),
                };
                if states[i].mapped.is_none()
                    || working.is_dirty(Artifact::MappedTable(i))
                    || states[i].filter_tag != desired_tag
                {
                    let table = match degraded_tables.get(&i) {
                        Some(t) => t,
                        None => {
                            &registry
                                .get(*id)
                                .ok_or_else(|| {
                                    TableError::Unavailable(format!("{id}: not registered"))
                                })?
                                .table
                        }
                    };
                    let mapping = states[i]
                        .mapping
                        .as_ref()
                        .ok_or_else(|| TableError::Invalid(format!("{id}: no mapping available")))?;
                    // Pushdown to acquisition: the verified ledger proved the
                    // predicate pure and every referenced binding cell-exact
                    // for this source, so filtering the *raw* payload (under
                    // the bound raw column names) keeps the union
                    // byte-identical while only surviving rows get mapped.
                    let filtered_raw: Option<Table> = match (placement, predicate) {
                        (FilterPlacement::Acquire, Some(pred)) => {
                            let pushed =
                                lower::pushdown_predicate(pred, table.schema(), target, mapping);
                            if track_scans {
                                let cols = wrangler_plan::predicate_columns(&pushed);
                                scan_filter_cells +=
                                    (table.num_rows() as u64) * cols.len() as u64;
                                scan_bytes += lower::columns_scan_bytes(table, &cols);
                            }
                            Some(ops::filter(table, &pushed)?)
                        }
                        _ => None,
                    };
                    let input = filtered_raw.as_ref().unwrap_or(table);
                    if track_scans {
                        scan_map_cells += (input.num_rows() as u64) * target.len() as u64;
                        scan_bytes += lower::table_scan_bytes(input);
                    }
                    // A mapping that errors against its own payload (e.g. an
                    // out-of-range binding, or a schema that drifted after
                    // the mapping was generated) condemns this source only.
                    let mut mapped = match guard.run(*id, || mapping.apply(input)) {
                        Guarded::Ok(m) => m,
                        Guarded::Quarantined => {
                            apply_removed.push(i);
                            continue;
                        }
                        Guarded::Fatal(e) => return Err(e),
                    };
                    // Post-map placement: the barrier is down but this
                    // source's bindings are not cell-exact, so filter the
                    // *mapped* rows before they reach the union.
                    if let (FilterPlacement::PostMap, Some(pred)) = (placement, predicate) {
                        if track_scans {
                            let cols = wrangler_plan::predicate_columns(pred);
                            scan_filter_cells += (mapped.num_rows() as u64) * cols.len() as u64;
                            scan_bytes += lower::columns_scan_bytes(&mapped, &cols);
                        }
                        mapped = ops::filter(&mapped, pred)?;
                    }
                    // Row budget: the logical deadline for an unbounded
                    // feed. Deterministic prefix keep. (Early filter
                    // placements require the barrier down, i.e. scans off,
                    // so the budget and the filter never both apply.)
                    if policy.scans_enabled() && mapped.num_rows() > policy.max_rows_per_source {
                        let excess = (mapped.num_rows() - policy.max_rows_per_source) as u64;
                        if let Some(err) = guard.deadline_excess(*id, "row budget", excess) {
                            return Err(err);
                        }
                        let keep = policy.max_rows_per_source;
                        mapped = mapped.retain_rows(|r| r < keep);
                    }
                    states[i].mapped = Some(mapped);
                    states[i].filter_tag = desired_tag;
                    working.work.tables_mapped += 1;
                    working.mark_clean(Artifact::MappedTable(i));
                }
            }
        }
        if !apply_removed.is_empty() {
            selected.retain(|id| !apply_removed.contains(&(id.0 as usize)));
            for i in apply_removed {
                self.discount_quarantined(i);
            }
            if selected.is_empty() {
                self.obs.end();
                return Err(TableError::Unavailable(
                    "all sources quarantined at map_apply; no survivors".into(),
                ));
            }
        }
        self.obs.count("map.applied", selected.len() as u64);
        self.obs.count("scan.map.cells", scan_map_cells);
        let out = ckpt_io::MapApplyOut {
            selected: selected.clone(),
            mapped: selected
                .iter()
                .filter_map(|id| {
                    let i = id.0 as usize;
                    self.states[i]
                        .mapped
                        .clone()
                        .map(|t| (i, t, self.states[i].filter_tag.clone()))
                })
                .collect(),
        }
        .encode();
        self.ckpt_save("map_apply", k_apply, creport, &out);
            }
        }
        self.obs.end();
        self.crash_fire(CrashSite::AfterMapApply);
        chain = k_apply;

        // 4. Union with provenance — and the poison firewall: every row is
        // scanned here, the last point where damage is still attributable
        // to one source, before rows from different sources interleave in
        // ER and fusion. Sources whose filter placement stayed `Union` have
        // the predicate fused into this loop, *after* the poison scan (the
        // `fuse-filter-into-union` rewrite) — a poison row is poison whether
        // or not it matches the filter, so containment decisions are
        // placement-independent.
        self.obs.begin("union");
        let k_union = if ckpt_on {
            Self::seam_key("union", pass_fp, chain, prog_fp)
        } else {
            0
        };
        // Union block layout of this pass: `(source, block key, rows)` per
        // contiguous block, in union order — the ER remap fast path's
        // coordinate system. Left empty when the engine is off or the union
        // replayed from a checkpoint (no keys to attest the blocks).
        let mut union_layout: Vec<(usize, u64, usize)> = Vec::new();
        let union: Vec<(usize, Vec<Value>)> = match self.ckpt_load("union", k_union, creport) {
            Some(out) => {
                let rec = ckpt_io::UnionOut::decode(&out)?;
                selected = rec.selected;
                self.obs.count("union.rows", rec.union.len() as u64);
                self.obs.count("union.filtered", rec.union_filtered);
                rec.union
            }
            None => {
        let inline_filter = match (&self.last_program, self.opt_mode) {
            (Some(p), OptMode::Optimized) => match p.predicate() {
                Some(e) => Some(e.bind(&self.target)?),
                None => None,
            },
            _ => None,
        };
        // Per-source block content keys: the pass/program fingerprints plus
        // everything this source's union block derives from — its effective
        // payload (the degraded delivery when there was one, the registry
        // content otherwise), its mapping, and the filter placement its
        // mapped table was computed under. Equal key ⇒ the live loop below
        // would reproduce the block byte-for-byte.
        let block_keys: BTreeMap<usize, u64> = if incr_on {
            selected
                .iter()
                .map(|id| {
                    let i = id.0 as usize;
                    let payload = match degraded_tables.get(&i) {
                        Some(t) => wire::table_hash(t),
                        None => self.registry.payload_hash(*id).unwrap_or(0),
                    };
                    let mapping =
                        wire::hash64(format!("{:?}", self.states[i].mapping).as_bytes());
                    let tag =
                        wire::hash64(format!("{:?}", self.states[i].filter_tag).as_bytes());
                    // Deliberately NOT the whole-program fingerprint: a dirty
                    // source's regenerated mapping changes its own Map node
                    // and with it the global IR hash, which would miss every
                    // clean block. The union loop reads only this source's
                    // slice of the program — its filter placement (the
                    // predicate text is pass_fp-covered) — so the key pins
                    // exactly that.
                    let place = self
                        .last_program
                        .as_ref()
                        .map(|p| format!("{:?}", p.placement_for(i)))
                        .unwrap_or_default();
                    let key = ContentKey::stage("union-block", pass_fp)
                        .labelled("place", wire::hash64(place.as_bytes()))
                        .labelled("src", i as u64)
                        .input(payload)
                        .input(mapping)
                        .input(tag)
                        .finish();
                    (i, key)
                })
                .collect()
        } else {
            BTreeMap::new()
        };
        let mut scan_union_cells = 0u64;
        let mut union_filtered = 0u64;
        let mut union: Vec<(usize, Vec<Value>)> = Vec::new();
        let mut union_removed: Vec<usize> = Vec::new();
        let mut blocks_reused = 0u64;
        let mut blocks_recomputed = 0u64;
        let mut rows_reused = 0u64;
        let mut cells_skipped = 0u64;
        let mut bytes_skipped = 0u64;
        {
            let program = self.last_program.as_ref();
            let states = &self.states;
            let incr_engine = &mut self.incr;
            let mut guard = StageGuard::new(Stage::Union, &policy, creport);
            for id in &selected {
                let i = id.0 as usize;
                let mapped = states[i]
                    .mapped
                    .as_ref()
                    .ok_or_else(|| TableError::Invalid(format!("{id}: not mapped")))?;
                // Early-placed sources arrive pre-filtered; only
                // `Union`-placed ones filter here.
                let filter_here = inline_filter.as_ref().filter(|_| {
                    program
                        .map(|p| p.placement_for(i) == FilterPlacement::Union)
                        .unwrap_or(true)
                });
                // Proof-carrying reuse: replay this source's memoized block
                // only under a matching content key AND the analyzer's
                // verified fact that the block is isolated to this source.
                let block_key = block_keys.get(&i).copied();
                let partition_isolated = program
                    .map(|p| p.holds(&wrangler_plan::Fact::PartitionIsolated { source: i }))
                    .unwrap_or(false);
                if let (Some(key), true) = (block_key, partition_isolated) {
                    if let Some(memo) = incr_engine.blocks.get(&i) {
                        if memo.key == key {
                            union_filtered += memo.filtered;
                            blocks_reused += 1;
                            rows_reused += memo.rows.len() as u64;
                            cells_skipped += memo.scan_cells;
                            bytes_skipped += memo.scan_bytes;
                            union_layout.push((i, key, memo.rows.len()));
                            union.extend(memo.rows.iter().map(|row| (i, row.clone())));
                            continue;
                        }
                    }
                }
                let mut this_cells = 0u64;
                let mut this_bytes = 0u64;
                if track_scans {
                    this_cells = (mapped.num_rows() as u64) * mapped.num_columns() as u64;
                    this_bytes = lower::table_scan_bytes(mapped);
                    scan_union_cells += this_cells;
                    scan_bytes += this_bytes;
                }
                let mut poison = 0u64;
                let mut filtered_out = 0u64;
                let abort_scan = policy.mode != ContainMode::Contain;
                let rows = guard.run(*id, || {
                    let mut out: Vec<(usize, Vec<Value>)> = Vec::with_capacity(mapped.num_rows());
                    for row in mapped.iter_rows() {
                        if policy.scans_enabled() {
                            if let Some(reason) = poison_reason(&row, &policy) {
                                if abort_scan {
                                    return Err(TableError::Unavailable(format!(
                                        "src{i}: {reason}"
                                    )));
                                }
                                poison += 1;
                                continue;
                            }
                        }
                        if let Some(bound) = filter_here {
                            if !bound.eval_predicate(&row)? {
                                filtered_out += 1;
                                continue;
                            }
                        }
                        out.push((i, row));
                    }
                    Ok(out)
                });
                if track_scans && filter_here.is_some() {
                    let cols = program
                        .and_then(|p| p.predicate())
                        .map(|e| wrangler_plan::predicate_columns(e).len() as u64)
                        .unwrap_or(0);
                    scan_filter_cells += (mapped.num_rows() as u64) * cols;
                }
                union_filtered += filtered_out;
                match rows {
                    Guarded::Ok(rows) => {
                        if poison > 0 {
                            guard.report_mut().drop_rows(Stage::Union, poison);
                            if poison as usize >= policy.poison_row_threshold {
                                // Repeated poison is a condemned feed, not
                                // line noise: eject the source entirely.
                                guard.flag(
                                    *id,
                                    &format!(
                                        "{poison} poison rows (threshold {})",
                                        policy.poison_row_threshold
                                    ),
                                );
                                union_removed.push(i);
                                continue;
                            }
                        }
                        blocks_recomputed += 1;
                        if let Some(key) = block_key {
                            union_layout.push((i, key, rows.len()));
                            // Memoize only clean blocks: a poisoned one must
                            // recompute live so its row-drop side effects land
                            // in every pass's containment report. Store only
                            // under the isolation fact — an unprovable block
                            // would never be eligible for replay anyway.
                            if partition_isolated && poison == 0 {
                                incr_engine.blocks.insert(
                                    i,
                                    BlockMemo {
                                        key,
                                        rows: rows.iter().map(|(_, r)| r.clone()).collect(),
                                        filtered: filtered_out,
                                        scan_cells: this_cells,
                                        scan_bytes: this_bytes,
                                    },
                                );
                            }
                        }
                        union.extend(rows);
                    }
                    Guarded::Quarantined => {
                        union_removed.push(i);
                    }
                    Guarded::Fatal(e) => return Err(e),
                }
            }
        }
        if !union_removed.is_empty() {
            selected.retain(|id| !union_removed.contains(&(id.0 as usize)));
            for i in union_removed {
                self.discount_quarantined(i);
            }
            if selected.is_empty() {
                self.obs.end();
                return Err(TableError::Unavailable(
                    "all sources quarantined at union; no survivors".into(),
                ));
            }
        }
        // Naive execution runs the filter as its own pass over the
        // materialized union — the extra full scan the optimizer's
        // placements avoid. Both modes feed ER the identical filtered union:
        // poison/budget decisions happened before either filter site.
        if self.opt_mode == OptMode::Naive {
            if let Some(pred) = &self.row_filter {
                let bound = pred.bind(&self.target)?;
                if track_scans {
                    let cols: Vec<usize> = wrangler_plan::predicate_columns(pred)
                        .iter()
                        .map(|n| self.target.index_of(n))
                        .collect::<wrangler_table::Result<_>>()?;
                    scan_filter_cells += (union.len() as u64) * cols.len() as u64;
                    for (_, row) in &union {
                        for &c in &cols {
                            scan_bytes += lower::value_bytes(&row[c]);
                        }
                    }
                }
                let mut kept = Vec::with_capacity(union.len());
                for (src, row) in union {
                    if bound.eval_predicate(&row)? {
                        kept.push((src, row));
                    } else {
                        union_filtered += 1;
                    }
                }
                union = kept;
                // The post-union filter just shifted row indices out from
                // under the block layout; ER falls back to the content-keyed
                // pair cache (always sound) instead of index remapping.
                union_layout.clear();
            }
        }
        self.obs.count("union.rows", union.len() as u64);
        self.obs.count("union.filtered", union_filtered);
        self.obs.count("scan.union.cells", scan_union_cells);
        self.obs.count("scan.filter.cells", scan_filter_cells);
        self.obs.count("scan.bytes", scan_bytes);
        if incr_on {
            self.obs.count("incr.union.reused", blocks_reused);
            self.obs.count("incr.union.recomputed", blocks_recomputed);
            self.obs.count("incr.union.rows_reused", rows_reused);
            self.obs.count("incr.union.cells_skipped", cells_skipped);
            self.obs.count("incr.union.bytes_skipped", bytes_skipped);
        }
        let out = ckpt_io::UnionOut {
            selected: selected.clone(),
            union: union.clone(),
            union_filtered,
        }
        .encode();
        self.ckpt_save("union", k_union, creport, &out);
        union
            }
        };
        self.crash_fire(CrashSite::AfterUnion);
        chain = k_union;

        // 5. Entity resolution over the union.
        let union_table = {
            let mut t = Table::empty(self.target.clone());
            for (_, row) in &union {
                t.push_row(row.clone())?;
            }
            t
        };
        self.obs.end();
        let union_srcs: Vec<usize> = union.iter().map(|(s, _)| *s).collect();
        let union_hash = if incr_on {
            wire::table_hash(&union_table)
        } else {
            0
        };
        let er_key = if incr_on {
            ContentKey::stage("incr-er", pass_fp)
                .labelled("prog", prog_fp)
                .input(union_hash)
                .finish()
        } else {
            0
        };
        // An explicitly dirtied clustering (ER rule refined, plan shape
        // changed, a test forcing recompute) must run live — both the
        // whole-stage replay and the index-remap fast path stand down.
        let er_reusable = incr_on && !self.working.is_dirty(Artifact::Clusters);
        let er_hit = er_reusable && self.incr.er.as_ref().is_some_and(|m| m.key == er_key);
        let k_er = if ckpt_on {
            Self::seam_key("er", pass_fp, chain, prog_fp)
        } else {
            0
        };
        let er = if er_hit {
            // Whole-stage replay: the union content is unchanged, so the
            // memoized clustering is byte-identical to a recompute. No "er"
            // span is opened — a zero-duration span would deflate the
            // stage's share in `stage_shares` — the reuse surfaces as an
            // explicit counter, and the replay's own (tiny) cost gets its
            // own honestly-named span.
            self.obs.begin("er_replay");
            let memo = self.incr.er.as_ref().expect("er_hit checked above"); // lint-allow: guarded by er_hit
            let er = ErStageOutcome {
                clusters: memo.clusters.clone(),
                row_entity: memo.row_entity.clone(),
            };
            self.working.mark_clean(Artifact::Clusters);
            self.obs.inc("incr.er.reused");
            if ckpt_on {
                let out = ckpt_io::ErOut {
                    clusters: er.clusters.clone(),
                    row_entity: er.row_entity.clone(),
                }
                .encode();
                self.ckpt_save("er", k_er, creport, &out);
            }
            self.obs.end();
            er
        } else {
            self.obs.begin("er");
            // ER has no per-source partition (rows from every source
            // interleave in the candidate pairs), so a panic here cannot be
            // pinned on one source and quarantined — but it can still be
            // *caught* and turned into a structured error instead of
            // unwinding through the session.
            let er = match self.ckpt_load("er", k_er, creport) {
                Some(out) => {
                    let rec = ckpt_io::ErOut::decode(&out)?;
                    self.working.mark_clean(Artifact::Clusters);
                    self.obs.count("er.entities", rec.clusters.len() as u64);
                    ErStageOutcome {
                        clusters: rec.clusters,
                        row_entity: rec.row_entity,
                    }
                }
                None => {
                    let er_ctx = ErIncrCtx {
                        layout: &union_layout,
                        union_srcs: &union_srcs,
                        er_key,
                        pass_fp,
                        prog_fp,
                        store: incr_on,
                        remap: er_reusable,
                    };
                    let er = if policy.is_off() {
                        self.er_stage(&union_table, &er_ctx)?
                    } else {
                        match catch_quiet(|| self.er_stage(&union_table, &er_ctx)) {
                            Ok(r) => r?,
                            Err(msg) => {
                                creport.caught_panic(Stage::Er);
                                self.obs.end();
                                return Err(TableError::Unavailable(format!(
                                    "er stage panicked: {msg}"
                                )));
                            }
                        }
                    };
                    let out = ckpt_io::ErOut {
                        clusters: er.clusters.clone(),
                        row_entity: er.row_entity.clone(),
                    }
                    .encode();
                    self.ckpt_save("er", k_er, creport, &out);
                    er
                }
            };
            self.obs.end();
            er
        };
        let ErStageOutcome {
            clusters,
            row_entity,
        } = er;
        self.crash_fire(CrashSite::AfterEr);
        chain = k_er;

        // 6. Claims + trust. Fuse-stage chaos rolls first: a source whose
        // partition "panics" here is quarantined before its claims enter
        // the claim set, so its values cannot influence fusion.
        //
        // The fuse content key covers every input that can ripple into a
        // fused value beyond the pass/program fingerprints: the union and
        // clustering content, every source's belief trust (feedback moves
        // it), every source's age (fusion decays stale claims), and the
        // master catalog (anchors steer truthfinder). A 1-source data
        // update legitimately misses here — its claims shift everyone's
        // estimated trust — so fusion recomputes; pure replays hit.
        let fuse_key = if incr_on {
            let mut h = wire::Hasher64::new();
            h.write_u64(pass_fp).write_u64(prog_fp).write_u64(union_hash);
            for &e in &row_entity {
                h.write_u64(e as u64);
            }
            for s in &self.states {
                h.write_u64(s.trust.probability().to_bits());
            }
            for s in self.registry.iter() {
                h.write_u64(self.now.saturating_sub(s.meta.last_updated));
            }
            match self.data_ctx.master("product") {
                Some(m) => {
                    h.write_u64(wire::table_hash(&m.table));
                    h.write_str(&m.key_column);
                }
                None => {
                    h.write_u64(0);
                }
            }
            h.write_u64(self.registry.len() as u64);
            h.finish()
        } else {
            0
        };
        let fuse_hit = incr_on && self.incr.fuse.as_ref().is_some_and(|m| m.key == fuse_key);
        let k_fuse = if ckpt_on {
            Self::seam_key("fuse", pass_fp, chain, prog_fp)
        } else {
            0
        };
        #[allow(clippy::type_complexity)]
        let (claims, source_ctx, fused): (
            ClaimSet,
            SourceContext,
            HashMap<(usize, usize), FusedValue>, // hash-ok: keyed by slot, read via get()
        ) = if fuse_hit {
            // Whole-stage replay. No "fuse" span is opened — a near-zero
            // span would deflate the stage's share in `stage_shares` — but
            // the replay's own cost (rebuilding claims from the union) is
            // honestly attributed to its own span. The memo only ever
            // stores passes where no source was quarantined at fuse, so no
            // exclusions apply.
            self.obs.begin("fuse_replay");
            let memo = self.incr.fuse.as_ref().expect("fuse_hit checked above"); // lint-allow: guarded by fuse_hit
            let source_ctx = SourceContext {
                trust: memo.trust.clone(),
                age: memo.age.clone(),
            };
            let fused: HashMap<(usize, usize), FusedValue> = memo // hash-ok: keyed by slot, read via get()
                .fused
                .iter()
                .map(|(e, a, f)| ((*e, *a), f.clone()))
                .collect();
            let memo_fused = memo.fused.clone();
            let mut claims = ClaimSet::new(self.registry.len());
            claims.rel_tol = plan.fusion_tolerance;
            for (r, (src, row)) in union.iter().enumerate() {
                for (a, v) in row.iter().enumerate() {
                    claims.add(row_entity[r], a, v.clone(), *src);
                }
            }
            for (e, a) in claims.slots() {
                self.working.mark_clean(Artifact::FusedSlot(e, a));
            }
            self.obs.inc("incr.fuse.reused");
            if ckpt_on {
                let out = ckpt_io::FuseOut {
                    selected: selected.clone(),
                    fuse_removed: Vec::new(),
                    trust: source_ctx.trust.clone(),
                    age: source_ctx.age.clone(),
                    fused: memo_fused,
                }
                .encode();
                self.ckpt_save("fuse", k_fuse, creport, &out);
            }
            self.obs.end();
            (claims, source_ctx, fused)
        } else {
            self.obs.begin("fuse");
            let result = match self.ckpt_load("fuse", k_fuse, creport) {
            Some(out) => {
                let rec = ckpt_io::FuseOut::decode(&out)?;
                selected = rec.selected;
                // Claims are rebuilt live from the (already restored) union
                // and clustering — cheap, and it keeps the heavy claim set
                // out of the wire format. Quarantined-at-fuse sources are
                // excluded exactly as the cold run excluded them; their
                // trust/breaker discounts replayed from the snapshot.
                let mut claims = ClaimSet::new(self.registry.len());
                claims.rel_tol = plan.fusion_tolerance;
                for (r, (src, row)) in union.iter().enumerate() {
                    if rec.fuse_removed.contains(src) {
                        continue;
                    }
                    for (a, v) in row.iter().enumerate() {
                        claims.add(row_entity[r], a, v.clone(), *src);
                    }
                }
                for (e, a) in claims.slots() {
                    self.working.mark_clean(Artifact::FusedSlot(e, a));
                }
                let source_ctx = SourceContext {
                    trust: rec.trust,
                    age: rec.age,
                };
                let fused: HashMap<(usize, usize), FusedValue> = // hash-ok: keyed by slot, read via get()
                    rec.fused.into_iter().map(|(e, a, f)| ((e, a), f)).collect();
                (claims, source_ctx, fused)
            }
            None => {
        let mut fuse_removed: Vec<usize> = Vec::new();
        {
            let mut guard = StageGuard::new(Stage::Fuse, &policy, creport);
            for id in &selected {
                match guard.run(*id, || Ok(())) {
                    Guarded::Ok(()) => {}
                    Guarded::Quarantined => fuse_removed.push(id.0 as usize),
                    Guarded::Fatal(e) => return Err(e),
                }
            }
        }
        if !fuse_removed.is_empty() {
            selected.retain(|id| !fuse_removed.contains(&(id.0 as usize)));
            if selected.is_empty() {
                for i in fuse_removed {
                    self.discount_quarantined(i);
                }
                self.obs.end();
                return Err(TableError::Unavailable(
                    "all sources quarantined at fuse; no survivors".into(),
                ));
            }
        }
        let mut claims = ClaimSet::new(self.registry.len());
        claims.rel_tol = plan.fusion_tolerance;
        for (r, (src, row)) in union.iter().enumerate() {
            if fuse_removed.contains(src) {
                continue;
            }
            for (a, v) in row.iter().enumerate() {
                claims.add(row_entity[r], a, v.clone(), *src);
            }
        }
        for &i in &fuse_removed {
            self.discount_quarantined(i);
        }
        // Master-data anchors for the attributes the catalog knows.
        let anchors = self.master_anchors(&claims, &clusters, &union);
        let tf = truthfinder(&claims, &TruthFinderConfig::default(), &anchors);
        // Blend data-driven trust with feedback-driven belief trust.
        let trust: Vec<f64> = (0..self.registry.len())
            .map(|i| 0.5 * tf.trust[i] + 0.5 * self.states[i].trust.probability())
            .collect();
        let age: Vec<u64> = self
            .registry
            .iter()
            .map(|s| self.now.saturating_sub(s.meta.last_updated))
            .collect();
        let source_ctx = SourceContext { trust, age };
        self.obs.count("fuse.claims", claims.claims.len() as u64);
        self.obs.count("fuse.anchors", anchors.len() as u64);

        // 7. Fuse every slot (honouring value-level feedback constraints).
        // Columns the projection never reads are dead at fuse: the
        // `skip-dead-fusion` rewrites (each citing its `DeadAtFuse` fact)
        // license skipping their fusion work entirely. Their claims stayed
        // in the claim set above, so trust estimation — and therefore every
        // *live* fused value — is unchanged.
        let live_mask: Option<Vec<bool>> = self
            .last_program
            .as_ref()
            .and_then(|p| p.live_mask().map(|m| m.to_vec()));
        // hash-ok: populated per sorted slot, consumed via get()
        let mut fused: HashMap<(usize, usize), FusedValue> = HashMap::new();
        let mut slots_fused = 0u64;
        let mut slots_skipped = 0u64;
        // Partition the slots: dead columns are skipped outright (the
        // `skip-dead-fusion` rewrite), slots pinned by a confirmation or
        // constrained by vetoes take the feedback-aware serial path, and
        // the plain majority go through the precompiled FuseKernel over the
        // blocked worker pool.
        let mut special_slots: Vec<(usize, usize)> = Vec::new();
        let mut plain_slots: Vec<(usize, usize)> = Vec::new();
        for (e, a) in claims.slots() {
            if live_mask.as_ref().is_some_and(|m| !m[a]) {
                slots_skipped += 1;
                self.working.mark_clean(Artifact::FusedSlot(e, a));
            } else if self.confirmations.contains_key(&(e, a)) || self.vetoes.contains_key(&(e, a))
            {
                special_slots.push((e, a));
            } else {
                plain_slots.push((e, a));
            }
        }
        for &(e, a) in &special_slots {
            // Per-slot isolation: a fusion strategy that panics on one
            // pathological slot costs that slot (delivered as Null), not
            // the pass.
            let slot_value = if policy.is_off() {
                self.fuse_slot(&claims, e, a, plan.fusion, &source_ctx)
            } else {
                match catch_quiet(|| self.fuse_slot(&claims, e, a, plan.fusion, &source_ctx)) {
                    Ok(v) => v,
                    Err(msg) => {
                        creport.caught_panic(Stage::Fuse);
                        if policy.mode != ContainMode::Contain {
                            self.obs.end();
                            return Err(TableError::Unavailable(format!(
                                "fuse slot ({e},{a}) panicked: {msg}"
                            )));
                        }
                        None
                    }
                }
            };
            if let Some(f) = slot_value {
                fused.insert((e, a), f);
            }
            slots_fused += 1;
            self.working.work.slots_fused += 1;
            self.working.mark_clean(Artifact::FusedSlot(e, a));
        }
        // Plain slots: per-source weights/decays are compiled once per pass,
        // then slots fuse in contiguous blocked chunks — bit-identical to
        // the serial fuse_attribute path for any worker count. Worker panics
        // surface per slot (catch inside the chunk) so one pathological slot
        // cannot take down its chunk; a panic escaping the pool itself is
        // the structured-error backstop, as in the ER kernel.
        let fuse_kernel = FuseKernel::compile(&claims, plan.fusion, &source_ctx);
        let requested = self.fuse_workers.unwrap_or_else(par::available_parallelism);
        let workers = par::effective_workers(requested, plain_slots.len(), MIN_SLOTS_PER_WORKER);
        let contained = !policy.is_off();
        let (chunks, fuse_worker_stats) = par::run_blocked(&plain_slots, workers, |_, chunk| {
            chunk
                .iter()
                .map(|&(e, a)| {
                    if contained {
                        catch_quiet(|| fuse_kernel.fuse_slot(e, a))
                    } else {
                        Ok(fuse_kernel.fuse_slot(e, a))
                    }
                })
                .collect::<Vec<Result<Option<FusedValue>, String>>>()
        })
        .map_err(|msg| TableError::Unavailable(format!("fuse worker panicked: {msg}")))?;
        for (&(e, a), res) in plain_slots.iter().zip(chunks.into_iter().flatten()) {
            match res {
                Ok(Some(f)) => {
                    fused.insert((e, a), f);
                }
                Ok(None) => {}
                Err(msg) => {
                    creport.caught_panic(Stage::Fuse);
                    if policy.mode != ContainMode::Contain {
                        self.obs.end();
                        return Err(TableError::Unavailable(format!(
                            "fuse slot ({e},{a}) panicked: {msg}"
                        )));
                    }
                }
            }
            slots_fused += 1;
            self.working.work.slots_fused += 1;
            self.working.mark_clean(Artifact::FusedSlot(e, a));
        }
        for (w, st) in fuse_worker_stats.iter().enumerate() {
            self.obs.count(&format!("fuse.worker{w}.items"), st.items);
            self.obs.record_nanos(&format!("worker{w}"), st.busy_nanos, 1);
        }
        self.obs.count("fuse.slots", slots_fused);
        self.obs.count("fuse.slots_skipped", slots_skipped);
        let mut sorted: Vec<(usize, usize, FusedValue)> = fused
            .iter()
            .map(|(&(e, a), f)| (e, a, f.clone()))
            .collect();
        sorted.sort_unstable_by_key(|&(e, a, _)| (e, a));
        // Memoize the stage for the next pass — only a pass with no
        // fuse-stage quarantine (chaos is off whenever `incr_on` holds, and
        // chaos rolls are the only quarantine source here, but be explicit).
        if incr_on && fuse_removed.is_empty() {
            self.incr.fuse = Some(FuseMemo {
                key: fuse_key,
                trust: source_ctx.trust.clone(),
                age: source_ctx.age.clone(),
                fused: sorted.clone(),
            });
        }
        let out = ckpt_io::FuseOut {
            selected: selected.clone(),
            fuse_removed: fuse_removed.clone(),
            trust: source_ctx.trust.clone(),
            age: source_ctx.age.clone(),
            fused: sorted,
        }
        .encode();
        self.ckpt_save("fuse", k_fuse, creport, &out);
        (claims, source_ctx, fused)
            }
            };
            self.obs.end();
            result
        };
        self.crash_fire(CrashSite::AfterFuse);

        self.cache = Some(WrangleCache {
            union,
            row_entity,
            entities: clusters.len(),
            claims,
            source_ctx,
            fused,
            selected: selected.clone(),
        });
        self.working.mark_clean(Artifact::Result);
        let mut outcome = if policy.is_off() {
            self.assemble(&plan)?
        } else {
            // Assembly panics (like ER panics) have no per-source partition
            // to quarantine; they become structured errors.
            match catch_quiet(|| self.assemble(&plan)) {
                Ok(r) => r?,
                Err(msg) => {
                    creport.caught_panic(Stage::Assemble);
                    return Err(TableError::Unavailable(format!(
                        "assemble stage panicked: {msg}"
                    )));
                }
            }
        };
        self.obs.end(); // close the "wrangle" root span
        outcome.metrics = self.obs.report();
        Ok(outcome)
    }

    /// The ER section of a wrangle: candidate generation (blocked on name +
    /// key), kernel scoring through the content-keyed pair cache, match
    /// filtering and clustering. Factored out so `wrangle_contained` can run
    /// it under panic isolation.
    fn er_stage(
        &mut self,
        union_table: &Table,
        ctx: &ErIncrCtx<'_>,
    ) -> wrangler_table::Result<ErStageOutcome> {
        // Block on the name-ish column AND the key column: rows whose name is
        // null or typo-prefixed still meet their duplicates through the key.
        let block_col = blocking_column(&self.target);
        let key_col = self.target.fields()[0].name.clone();
        let mut candidates = candidates_blocked(union_table, &block_col)?;
        if key_col != block_col {
            candidates.extend(wrangler_resolve::candidates_blocked_exact(
                union_table,
                &key_col,
            )?);
            candidates.sort_unstable();
            candidates.dedup();
        }
        self.working.work.er_pairs += candidates.len();
        // Mid-stage crash site: after candidate generation, before scoring —
        // the worst place to die (ER dominates wall-clock), which is exactly
        // why the harness injects here. No seam has persisted for this
        // stage yet, so resume replays up to the union and re-runs ER.
        self.crash_fire(CrashSite::MidEr);
        // Score through the precompiled kernel: the ER config is compiled
        // once against the union schema (an unknown column errors before any
        // scoring), per-row renderings/token sets are cached, and only pairs
        // whose row content the session has not scored before reach the
        // worker pool — the rest come from the content-keyed pair-score
        // cache. Clusters and scores are byte-identical to the serial path
        // for any worker count.
        let kernel = ErKernel::compile(union_table, &self.er_cfg)?;
        let keys = kernel.content_keys();
        let mut scores = vec![0.0f64; candidates.len()];
        let mut miss_pairs: Vec<(usize, usize)> = Vec::new();
        let mut miss_slots: Vec<(usize, String)> = Vec::new();
        // The index-remap fast path: when the previous pass's memo was built
        // under the same fingerprints and both layouts cover their unions,
        // rows of unchanged blocks map old→new by offset, and a clean-clean
        // candidate pair replays its score through an integer binary search —
        // no string content key is rendered, and the pair cache's hit/miss
        // statistics stay untouched. Pairs touching changed rows fall
        // through to the content-keyed cache path, which is always sound.
        let layout_rows: usize = ctx.layout.iter().map(|&(_, _, n)| n).sum();
        let rowmap: Option<Vec<Option<usize>>> = if ctx.remap
            && layout_rows == union_table.num_rows()
        {
            self.incr.er.as_ref().and_then(|m| {
                let old_rows: usize = m.layout.iter().map(|&(_, _, n)| n).sum();
                // pass_fp pins the scoring config; the per-block keys in the
                // layout pin row content. The whole-program fingerprint is
                // deliberately not required — a dirty source's regenerated
                // mapping shifts it without touching any clean row.
                (m.pass_fp == ctx.pass_fp && old_rows == m.row_entity.len())
                    .then(|| incr::remap_rows(&m.layout, ctx.layout))
            })
        } else {
            None
        };
        let mut remapped = 0u64;
        for (k, &(i, j)) in candidates.iter().enumerate() {
            if let Some(map) = &rowmap {
                if let Some((oi, oj)) = wrangler_resolve::blocking::remap_candidate((i, j), map) {
                    if let Some(s) = self
                        .incr
                        .er
                        .as_ref()
                        .and_then(|m| m.score_of(incr::pack_pair(oi, oj)))
                    {
                        scores[k] = s;
                        remapped += 1;
                        continue;
                    }
                }
            }
            let ck = PairScoreCache::pair_key(&keys[i], &keys[j]);
            match self.working.pair_scores.lookup(&ck) {
                Some(s) => scores[k] = s,
                None => {
                    miss_pairs.push((i, j));
                    miss_slots.push((k, ck));
                }
            }
        }
        // The kernel's pool-sizing policy (cores cap + MIN_PAIRS_PER_WORKER)
        // applies on top of the requested width.
        let workers = self.er_workers.unwrap_or_else(par::available_parallelism);
        let (miss_scores, worker_stats) = kernel.score_pairs_parallel(&miss_pairs, workers)?;
        for (((k, ck), &(i, j)), &s) in miss_slots
            .into_iter()
            .zip(miss_pairs.iter())
            .zip(&miss_scores)
        {
            scores[k] = s;
            let tag = (
                ctx.union_srcs.get(i).copied().unwrap_or(0),
                ctx.union_srcs.get(j).copied().unwrap_or(0),
            );
            self.working.pair_scores.insert(ck, s, tag);
        }
        let pairs = kernel.filter_matches(&candidates, &scores);
        let clusters = cluster_pairs(union_table.num_rows(), pairs.iter().map(|p| (p.i, p.j)));
        let mut row_entity = vec![0usize; union_table.num_rows()];
        for (e, cluster) in clusters.iter().enumerate() {
            for &r in cluster {
                row_entity[r] = e;
            }
        }
        self.working.mark_clean(Artifact::Clusters);
        if ctx.store {
            let mut packed: Vec<(u64, f64)> = candidates
                .iter()
                .zip(&scores)
                .map(|(&(i, j), &s)| (incr::pack_pair(i, j), s))
                .collect();
            packed.sort_unstable_by_key(|&(key, _)| key);
            let layout = if layout_rows == union_table.num_rows() {
                ctx.layout.to_vec()
            } else {
                Vec::new()
            };
            self.incr.er = Some(ErMemo {
                key: ctx.er_key,
                pass_fp: ctx.pass_fp,
                prog_fp: ctx.prog_fp,
                clusters: clusters.clone(),
                row_entity: row_entity.clone(),
                layout,
                scores: packed,
            });
        }
        for (w, st) in worker_stats.iter().enumerate() {
            self.obs.count(&format!("er.worker{w}.items"), st.items);
            self.obs.record_nanos(&format!("worker{w}"), st.busy_nanos, 1);
        }
        self.obs.count(
            "er.cache.hits",
            (candidates.len() - miss_pairs.len()) as u64 - remapped,
        );
        self.obs.count("er.cache.misses", miss_pairs.len() as u64);
        self.obs.count("incr.er.pairs_remapped", remapped);
        self.obs.count("er.candidates", candidates.len() as u64);
        self.obs.count("er.match_pairs", pairs.len() as u64);
        self.obs.count("er.entities", clusters.len() as u64);
        Ok(ErStageOutcome {
            clusters,
            row_entity,
        })
    }

    /// Incrementally re-wrangle after feedback: re-fuse only dirty slots with
    /// the updated trust. Falls back to a full wrangle when structural
    /// artifacts (mappings, clusters) are dirty or no cache exists.
    pub fn rewrangle(&mut self) -> wrangler_table::Result<WrangleOutcome> {
        let structural_dirty = self.cache.is_none()
            || self.working.is_dirty(Artifact::Clusters)
            || self.cache.as_ref().is_some_and(|c| {
                c.selected.iter().any(|id| {
                    let i = id.0 as usize;
                    self.working.is_dirty(Artifact::Mapping(i))
                        || self.working.is_dirty(Artifact::MappedTable(i))
                })
            });
        if structural_dirty {
            return self.wrangle();
        }
        let plan = self.plan();
        self.obs.start_pass();
        self.obs.begin("rewrangle");
        self.obs.inc("pass.rewrangle");
        // Refresh the trust vector from beliefs (feedback may have moved it).
        let mut cache = self.cache.take().expect("checked above"); // lint-allow: presence checked by the guard above
        for i in 0..self.registry.len() {
            let blended =
                0.5 * cache.source_ctx.trust[i].min(1.0) + 0.5 * self.states[i].trust.probability();
            cache.source_ctx.trust[i] = blended;
        }
        self.obs.begin("refuse");
        let mut refused = 0u64;
        for (e, a) in self.working.dirty_slots() {
            match self.fuse_slot(&cache.claims, e, a, plan.fusion, &cache.source_ctx) {
                Some(f) => {
                    cache.fused.insert((e, a), f);
                }
                // All claims vetoed: the slot has no deliverable value left.
                None => {
                    cache.fused.remove(&(e, a));
                }
            }
            refused += 1;
            self.working.work.slots_fused += 1;
            self.working.mark_clean(Artifact::FusedSlot(e, a));
        }
        self.obs.count("refuse.slots", refused);
        self.obs.end();
        self.cache = Some(cache);
        self.working.mark_clean(Artifact::Result);
        let mut outcome = self.assemble(&plan)?;
        self.obs.end(); // close the "rewrangle" root span
        outcome.metrics = self.obs.report();
        // An incremental pass re-fuses cached artifacts; the containment
        // picture is still the one from the last full wrangle.
        outcome.containment = self.last_containment.clone();
        Ok(outcome)
    }

    /// Fuse one slot, honouring confirmed and vetoed values from direct
    /// feedback: a confirmed value is pinned at full confidence; a vetoed
    /// value can never win again (its supporting claims are excluded).
    fn fuse_slot(
        &self,
        claims: &ClaimSet,
        e: usize,
        a: usize,
        strategy: wrangler_fusion::Strategy,
        ctx: &SourceContext,
    ) -> Option<FusedValue> {
        if let Some(v) = self.confirmations.get(&(e, a)) {
            return Some(FusedValue {
                value: v.clone(),
                weight: 1.0,
                total_weight: 1.0,
                supporters: Vec::new(),
                freshness: 1.0,
            });
        }
        match self.vetoes.get(&(e, a)) {
            None => fuse_attribute(claims, e, a, strategy, ctx),
            Some(vetoed) => {
                // Rebuild the slot without claims agreeing with any veto.
                let mut filtered = ClaimSet::new(claims.num_sources);
                filtered.rel_tol = claims.rel_tol;
                for c in claims.slot(e, a) {
                    let banned = vetoed
                        .iter()
                        .any(|v| wrangler_fusion::values_agree(v, &c.value, claims.rel_tol));
                    if !banned {
                        filtered.add(c.entity, c.attr, c.value.clone(), c.source);
                    }
                }
                fuse_attribute(&filtered, e, a, strategy, ctx)
            }
        }
    }

    /// Master-data anchors: for entities whose key is in the catalog, the
    /// catalog's values of shared attributes are known-true.
    fn master_anchors(
        &self,
        _claims: &ClaimSet,
        clusters: &[Vec<usize>],
        union: &[(usize, Vec<Value>)],
    ) -> Vec<(usize, usize, Value)> {
        let Some(master) = self.data_ctx.master("product") else {
            return Vec::new();
        };
        let Ok(key_idx) = self.target.index_of(&master.key_column) else {
            return Vec::new();
        };
        let mut anchors = Vec::new();
        for (e, cluster) in clusters.iter().enumerate() {
            // The entity's key: first non-null key claim found in the master.
            let key = cluster.iter().find_map(|&r| {
                let v = &union[r].1[key_idx];
                if !v.is_null() && master.contains_key(v) {
                    Some(v.clone())
                } else {
                    None
                }
            });
            let Some(key) = key else { continue };
            for (a, field) in self.target.fields().iter().enumerate() {
                if field.name == master.key_column {
                    continue;
                }
                if let Some(truth) = master.lookup(&key, &field.name) {
                    if !truth.is_null() {
                        anchors.push((e, a, truth));
                    }
                }
            }
        }
        anchors
    }

    /// Assemble the wrangled table and its quality report from the cache.
    fn assemble(&mut self, plan: &Plan) -> wrangler_table::Result<WrangleOutcome> {
        self.obs.begin("assemble");
        let cache = self.cache.as_ref().expect("assemble requires a cache"); // lint-allow: wrangle() populates the cache before assemble()
        // The delivered attributes are the plan's output projection (all
        // target columns when none was requested). Both execution modes
        // iterate the same projected set, so `_confidence` — the mean over
        // delivered projected values — is byte-identical across modes.
        let output_attrs: Vec<usize> = match self
            .last_program
            .as_ref()
            .and_then(|p| p.output_columns())
            .or_else(|| self.output_columns.clone())
        {
            Some(names) => names
                .iter()
                .map(|n| self.target.index_of(n))
                .collect::<wrangler_table::Result<_>>()?,
            None => (0..self.target.len()).collect(),
        };
        let mut fields: Vec<wrangler_table::Field> = output_attrs
            .iter()
            .map(|&a| self.target.fields()[a].clone())
            .collect();
        fields.push(wrangler_table::Field::new("_confidence", DataType::Float));
        let out_schema = Schema::new(fields)?;
        let mut table = Table::empty(out_schema);
        let mut conflict_free = 0usize;
        let mut slot_count = 0usize;
        let mut conf_sum = 0.0;
        let mut delivered = 0u64;
        let mut withheld = 0u64;
        for e in 0..cache.entities {
            let mut row = Vec::with_capacity(output_attrs.len() + 1);
            let mut row_conf = Vec::new();
            for &a in &output_attrs {
                match cache.fused.get(&(e, a)) {
                    Some(f) => {
                        let conf = f.confidence();
                        slot_count += 1;
                        conf_sum += conf;
                        if (conf - 1.0).abs() < 1e-12 {
                            conflict_free += 1;
                        }
                        // Confidence gating (Example 2's trade-off).
                        if conf >= plan.min_value_confidence {
                            row.push(f.value.clone());
                            row_conf.push(conf);
                            delivered += 1;
                        } else {
                            row.push(Value::Null);
                            withheld += 1;
                        }
                    }
                    None => row.push(Value::Null),
                }
            }
            let mean_conf = if row_conf.is_empty() {
                0.0
            } else {
                row_conf.iter().sum::<f64>() / row_conf.len() as f64
            };
            row.push(Value::Float(mean_conf));
            table.push_row(row)?;
        }
        table.reinfer_types();

        // Quality report.
        let profile = TableProfile::of(&table)?;
        let accuracy = if slot_count == 0 {
            0.0
        } else {
            conf_sum / slot_count as f64
        };
        let consistency = if slot_count == 0 {
            1.0
        } else {
            conflict_free as f64 / slot_count as f64
        };
        let mean_age = {
            let sel = &cache.selected;
            if sel.is_empty() {
                0
            } else {
                let mut total = 0u64;
                for id in sel {
                    total += self
                        .now
                        .saturating_sub(self.source(*id)?.meta.last_updated);
                }
                total / sel.len() as u64
            }
        };
        let relevance =
            wrangler_quality::profile::master_relevance(&table, &self.data_ctx, "product");
        let cost_spent = self.access_spent + self.feedback.total_cost();
        let cost_fraction = if self.user.budget.is_infinite() || self.user.budget <= 0.0 {
            0.0
        } else {
            (cost_spent / self.user.budget).min(1.0)
        };
        let mut quality = quality_vector(
            &profile,
            &self.user,
            &ExternalSignals {
                age: mean_age,
                violation_rate: 1.0 - consistency,
                accuracy: Some(accuracy),
                relevance,
                cost_fraction,
            },
        );
        // Completeness should be judged against the catalog: entities found /
        // entities wanted, blended with field completeness.
        if let Some(master) = self.data_ctx.master("product") {
            let entity_cov = (cache.entities as f64 / master.len().max(1) as f64).min(1.0);
            let field_com = quality.get(Criterion::Completeness);
            quality = quality.with(Criterion::Completeness, 0.5 * entity_cov + 0.5 * field_com);
        }
        let utility = self.user.utility(&quality);
        self.obs.count("out.rows", table.num_rows() as u64);
        self.obs.count("out.entities", cache.entities as u64);
        self.obs.count("out.values_delivered", delivered);
        self.obs.count("out.values_withheld", withheld);
        self.obs.gauge("out.accuracy", accuracy);
        self.obs.gauge("out.consistency", consistency);
        self.obs.gauge("out.utility", utility);
        self.obs.end();
        Ok(WrangleOutcome {
            table,
            quality,
            utility,
            selected_sources: cache.selected.clone(),
            entities: cache.entities,
            cost_spent,
            skipped_sources: self.last_acquisition.skipped.clone(),
            degraded_sources: self.last_acquisition.degraded.clone(),
            acquisition_attempts: self.last_acquisition.attempts,
            acquisition_ticks: self.last_acquisition.ticks,
            lint: self.lint_report(),
            metrics: MetricsReport::default(),
            containment: ContainmentReport::default(),
        })
    }

    /// Receive one feedback item: record it, route it, apply the signals.
    /// Returns the number of component signals applied.
    pub fn give_feedback(&mut self, item: FeedbackItem) -> usize {
        // Provenance for value/tuple feedback from the cache.
        let provenance = match (&item.target, &self.cache) {
            (FeedbackTarget::Value { entity, attr, .. }, Some(cache)) => {
                match cache.fused.get(&(*entity, *attr)) {
                    Some(f) => {
                        let slot = cache.claims.slot(*entity, *attr);
                        let dissenters: Vec<usize> = slot
                            .iter()
                            .map(|c| c.source)
                            .filter(|s| !f.supporters.contains(s))
                            .collect();
                        ValueProvenance {
                            supporters: f.supporters.clone(),
                            dissenters,
                        }
                    }
                    None => ValueProvenance::default(),
                }
            }
            (FeedbackTarget::Tuple { entity }, Some(cache)) => {
                let mut supporters: Vec<usize> = cache
                    .claims
                    .claims
                    .iter()
                    .filter(|c| c.entity == *entity)
                    .map(|c| c.source)
                    .collect();
                supporters.sort_unstable();
                supporters.dedup();
                ValueProvenance {
                    supporters,
                    dissenters: Vec::new(),
                }
            }
            _ => ValueProvenance::default(),
        };
        // Direct slot constraints from reliable value feedback (both routing
        // modes: this is the minimal effect even the siloed regime applies).
        if item.reliability >= 0.8 {
            if let FeedbackTarget::Value {
                entity,
                attr,
                value,
            } = &item.target
            {
                let judged = value.clone().or_else(|| {
                    self.cache
                        .as_ref()
                        .and_then(|c| c.fused.get(&(*entity, *attr)))
                        .map(|f| f.value.clone())
                });
                if let Some(v) = judged {
                    if item.verdict.is_positive() {
                        self.confirmations.insert((*entity, *attr), v);
                    } else {
                        self.confirmations.remove(&(*entity, *attr));
                        self.vetoes.entry((*entity, *attr)).or_default().push(v);
                    }
                }
            }
        }
        let signals = route(&item, &provenance, self.routing);
        self.feedback.add(item);
        let n = signals.len();
        for s in signals {
            self.apply_signal(s);
        }
        self.obs.inc("feedback.items");
        self.obs.count("feedback.signals", n as u64);
        n
    }

    fn apply_signal(&mut self, signal: RoutedSignal) {
        match signal {
            RoutedSignal::SourceTrust {
                source,
                positive,
                reliability,
            } => {
                if let Some(state) = self.states.get_mut(source) {
                    let kind = if reliability >= 1.0 {
                        EvidenceKind::UserFeedback
                    } else {
                        EvidenceKind::CrowdFeedback
                    };
                    state
                        .trust
                        .update(&Evidence::vote(kind, positive, 0.85).discounted(reliability));
                    // Trust moved: slots this source claims need re-fusion.
                    if let Some(cache) = &self.cache {
                        let slots: Vec<(usize, usize)> = cache
                            .claims
                            .claims
                            .iter()
                            .filter(|c| c.source == source)
                            .map(|c| (c.entity, c.attr))
                            .collect();
                        for (e, a) in slots {
                            self.working.invalidate(Artifact::FusedSlot(e, a));
                        }
                    }
                    self.working.invalidate(Artifact::Result);
                }
            }
            RoutedSignal::MappingBelief {
                source,
                positive,
                reliability,
            } => {
                if let Some(state) = self.states.get_mut(source) {
                    if let Some(m) = &mut state.mapping {
                        wrangler_mapping::refine::record_feedback(m, positive, reliability);
                        // A collapsed mapping must be regenerated next time.
                        if m.belief.probability() < 0.15 {
                            self.working.invalidate(Artifact::Mapping(source));
                        }
                    }
                }
            }
            RoutedSignal::RefuseSlot { entity, attr } => {
                self.working.invalidate(Artifact::FusedSlot(entity, attr));
                self.working.invalidate(Artifact::Result);
            }
            RoutedSignal::ErLabel { .. } => {
                // Labels accumulate in the feedback store (added by caller);
                // `refine_er` consumes them on demand.
            }
            RoutedSignal::RecheckWrapper { source } => {
                self.working.invalidate(Artifact::Mapping(source));
                self.working.invalidate(Artifact::MappedTable(source));
                self.working.invalidate(Artifact::Clusters);
            }
            RoutedSignal::TupleRelevance { .. } => {
                // Relevance feedback currently informs source trust via
                // routing; a per-entity relevance model is future work.
            }
        }
    }

    /// The current entity-resolution rule (learnable via [`Self::refine_er`]).
    pub fn er_config(&self) -> &ErConfig {
        &self.er_cfg
    }

    /// Explain a delivered slot: the winning value, its supporters and
    /// dissenters (with their names and current trust), confidence, and any
    /// feedback constraints in force. `None` before the first wrangle or for
    /// claim-less slots.
    pub fn explain(&self, entity: usize, attr: usize) -> Option<SlotExplanation> {
        let cache = self.cache.as_ref()?;
        let fused = cache.fused.get(&(entity, attr))?;
        let slot = cache.claims.slot(entity, attr);
        let describe = |s: usize| SourceClaim {
            source: SourceId(s as u32),
            name: self
                .registry
                .get(SourceId(s as u32))
                .map(|x| x.meta.name.clone())
                .unwrap_or_default(),
            trust: cache.source_ctx.trust.get(s).copied().unwrap_or(0.5),
            value: slot
                .iter()
                .find(|c| c.source == s)
                .map(|c| c.value.clone())
                .unwrap_or(Value::Null),
        };
        let supporters: Vec<SourceClaim> = fused.supporters.iter().map(|&s| describe(s)).collect();
        let dissenters: Vec<SourceClaim> = slot
            .iter()
            .map(|c| c.source)
            .filter(|s| !fused.supporters.contains(s))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .map(describe)
            .collect();
        Some(SlotExplanation {
            value: fused.value.clone(),
            confidence: fused.confidence(),
            freshness: fused.freshness,
            supporters,
            dissenters,
            confirmed: self.confirmations.contains_key(&(entity, attr)),
            vetoed_values: self
                .vetoes
                .get(&(entity, attr))
                .cloned()
                .unwrap_or_default(),
        })
    }

    /// Number of union rows in the last wrangle (duplicate-pair feedback is
    /// expressed in union-row indices).
    pub fn union_len(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.union.len())
    }

    /// Entity id a union row was clustered into, if a wrangle has run.
    pub fn entity_of_union_row(&self, row: usize) -> Option<usize> {
        self.cache
            .as_ref()
            .and_then(|c| c.row_entity.get(row).copied())
    }

    /// Refine the ER rule from accumulated duplicate-pair labels (Corleone
    /// loop). Returns the achieved F1 on the labels, or `None` without a
    /// cache or labels.
    pub fn refine_er(&mut self) -> Option<f64> {
        let cache = self.cache.as_ref()?;
        let labels: Vec<LabeledPair> = self
            .feedback
            .duplicate_labels()
            .into_iter()
            .map(|(a, b, m, _)| LabeledPair {
                i: a,
                j: b,
                is_match: m,
            })
            .collect();
        if labels.is_empty() {
            return None;
        }
        let mut union_table = Table::empty(self.target.clone());
        for (_, row) in &cache.union {
            union_table.push_row(row.clone()).ok()?;
        }
        let old_f1 = wrangler_resolve::learn::evaluate(&union_table, &labels, &self.er_cfg)
            .ok()?
            .f1;
        let (cfg, f1) = refine_rule(&union_table, &labels, &self.er_cfg, 3).ok()?;
        // Adopt only a strict improvement on the labels...
        if f1.f1 <= old_f1 + 1e-9 {
            return Some(old_f1);
        }
        // ...that also passes a system-level sanity check: a handful of noisy
        // labels must not collapse or shatter the entity space. Re-cluster
        // with the candidate rule and require the entity count to stay within
        // a factor of the current one.
        let block_col = blocking_column(&self.target);
        let key_col = self.target.fields()[0].name.clone();
        let mut candidates = candidates_blocked(&union_table, &block_col).ok()?;
        if key_col != block_col {
            candidates
                .extend(wrangler_resolve::candidates_blocked_exact(&union_table, &key_col).ok()?);
            candidates.sort_unstable();
            candidates.dedup();
        }
        let pairs = ErKernel::compile(&union_table, &cfg)
            .ok()?
            .match_pairs(&candidates)
            .ok()?;
        let new_entities =
            cluster_pairs(union_table.num_rows(), pairs.iter().map(|p| (p.i, p.j))).len();
        let old_entities = cache.entities.max(1);
        let ratio = new_entities as f64 / old_entities as f64;
        if !(0.6..=1.67).contains(&ratio) {
            return Some(old_f1);
        }
        self.er_cfg = cfg;
        self.working.invalidate(Artifact::Clusters);
        // The rule changed, so every cached pair score is stale: the cache
        // is invalidated alongside the clusters it fed. (This is the one
        // site where a *full* clear is right — data updates go through the
        // partition-scoped `evict_sources` in `update_source` instead.)
        self.working.pair_scores.clear();
        self.incr.clear();
        Some(f1.f1)
    }

    /// The union table of the last wrangle (the ER kernel's input), rebuilt
    /// from the cache. `None` before the first wrangle. Experiment harnesses
    /// use this to benchmark the measured hot path on the real workload.
    pub fn union_table(&self) -> Option<Table> {
        let cache = self.cache.as_ref()?;
        let mut t = Table::empty(self.target.clone());
        for (_, row) in &cache.union {
            t.push_row(row.clone()).ok()?;
        }
        Some(t)
    }
}

/// One source's stance on an explained slot.
#[derive(Debug, Clone)]
pub struct SourceClaim {
    /// Source id.
    pub source: SourceId,
    /// Source name.
    pub name: String,
    /// Current (blended) trust in the source.
    pub trust: f64,
    /// The value it claimed for the slot.
    pub value: Value,
}

/// Why a delivered value is what it is (see [`Wrangler::explain`]).
#[derive(Debug, Clone)]
pub struct SlotExplanation {
    /// The winning value.
    pub value: Value,
    /// Delivered confidence.
    pub confidence: f64,
    /// Freshness factor of the winning evidence.
    pub freshness: f64,
    /// Sources supporting the winner.
    pub supporters: Vec<SourceClaim>,
    /// Sources claiming something else.
    pub dissenters: Vec<SourceClaim>,
    /// True if the user confirmed this value.
    pub confirmed: bool,
    /// Values the user refuted for this slot.
    pub vetoed_values: Vec<Value>,
}

/// ER configuration derived from the target schema: exact match on key-ish
/// columns, text similarity on strings (names weighted up), numerics
/// excluded (prices legitimately differ across sources).
fn build_er_config(target: &Schema, threshold: f64) -> ErConfig {
    let mut fields = Vec::new();
    for (i, f) in target.fields().iter().enumerate() {
        let lname = f.name.to_lowercase();
        let key_like = i == 0
            || lname == "sku"
            || lname == "id"
            || lname.ends_with("_id")
            || lname == "url"
            || lname == "code";
        if key_like {
            fields.push(FieldSim {
                column: f.name.clone(),
                weight: 2.0,
                kind: SimKind::Exact,
            });
        } else if f.dtype == DataType::Str || f.dtype == DataType::Null {
            let weight = if lname.contains("name") || lname.contains("title") {
                3.0
            } else {
                1.0
            };
            fields.push(FieldSim {
                column: f.name.clone(),
                weight,
                kind: SimKind::Text,
            });
        }
        // Numeric columns intentionally excluded.
    }
    ErConfig { fields, threshold }
}

/// The column ER blocks on: a name-ish string column, else the first column.
fn blocking_column(target: &Schema) -> String {
    for f in target.fields() {
        let l = f.name.to_lowercase();
        if l.contains("name") || l.contains("title") {
            return f.name.clone();
        }
    }
    target.fields()[0].name.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_context::Ontology;
    use wrangler_feedback::Verdict;
    use wrangler_sources::{FleetConfig, SyntheticFleet};

    fn small_fleet() -> SyntheticFleet {
        wrangler_sources::synthetic::generate_fleet(
            &FleetConfig {
                num_products: 40,
                num_sources: 6,
                now: 10,
                coverage: (0.5, 0.9),
                error_rate: (0.02, 0.15),
                null_rate: (0.0, 0.05),
                staleness: (0, 4),
                ..FleetConfig::default()
            },
            42,
        )
    }

    fn session(fleet: &SyntheticFleet, user: UserContext) -> Wrangler {
        let mut ctx = DataContext::with_ontology(Ontology::ecommerce());
        ctx.add_master("product", fleet.truth.master_catalog(), "sku")
            .unwrap();
        // Target: catalog schema + price (what the company wants to learn).
        let mut sample = fleet.truth.master_catalog();
        sample = wrangler_table::ops::project_exprs(
            &sample,
            &[
                ("sku".into(), wrangler_table::Expr::col("sku")),
                ("name".into(), wrangler_table::Expr::col("name")),
                ("brand".into(), wrangler_table::Expr::col("brand")),
                ("category".into(), wrangler_table::Expr::col("category")),
                ("price".into(), wrangler_table::Expr::lit(Value::Null)),
            ],
        )
        .unwrap();
        // Give price a numeric type hint from a handful of plausible values.
        let mut w = Wrangler::new(user, ctx, retype_price(sample));
        w.set_now(fleet.truth.now);
        for s in fleet.registry.iter() {
            w.add_source(s.meta.clone(), s.table.clone());
        }
        w
    }

    /// The all-null price column types as Null; hint it as Float so mapping
    /// normalization and ER config treat it numerically.
    fn retype_price(sample: Table) -> Table {
        let mut fields = sample.schema().fields().to_vec();
        for f in &mut fields {
            if f.name == "price" {
                f.dtype = DataType::Float;
            }
        }
        let schema = Schema::new(fields).unwrap();
        let cols = (0..sample.num_columns())
            .map(|i| sample.column(i).unwrap().to_vec())
            .collect();
        Table::from_columns(schema, cols).unwrap()
    }

    #[test]
    fn end_to_end_wrangle_produces_entities_with_prices() {
        let fleet = small_fleet();
        let mut w = session(
            &fleet,
            UserContext::balanced("t").with_required_columns(&["sku", "price"]),
        );
        let out = w.wrangle().unwrap();
        assert!(out.entities >= 30, "entities {}", out.entities);
        assert!(
            out.entities <= 60,
            "over-merged or under-merged: {}",
            out.entities
        );
        assert!(!out.selected_sources.is_empty());
        // Most entities should carry a price.
        let priced = (0..out.table.num_rows())
            .filter(|&i| !out.table.get_named(i, "price").unwrap().is_null())
            .count();
        assert!(
            priced as f64 >= 0.6 * out.entities as f64,
            "{priced}/{}",
            out.entities
        );
        assert!(out.utility > 0.0);
    }

    #[test]
    fn accuracy_context_trades_completeness_for_accuracy() {
        let fleet = small_fleet();
        let mut acc = session(&fleet, UserContext::accuracy_first());
        let mut com = session(&fleet, UserContext::completeness_first());
        let out_acc = acc.wrangle().unwrap();
        let out_com = com.wrangle().unwrap();
        let nulls = |t: &Table| {
            let mut n = 0;
            for r in 0..t.num_rows() {
                for c in 0..t.num_columns() - 1 {
                    n += usize::from(t.get(r, c).unwrap().is_null());
                }
            }
            n as f64 / (t.num_rows() * (t.num_columns() - 1)) as f64
        };
        // The accuracy-first context withholds more uncertain values.
        assert!(
            nulls(&out_acc.table) >= nulls(&out_com.table),
            "acc nulls {} vs com nulls {}",
            nulls(&out_acc.table),
            nulls(&out_com.table)
        );
    }

    #[test]
    fn feedback_moves_source_trust_and_is_cheap_to_apply() {
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        let out = w.wrangle().unwrap();
        let full_work = w.working.work;
        let trust_before: Vec<f64> = out
            .selected_sources
            .iter()
            .map(|id| w.source_trust(*id))
            .collect();
        // Tuple feedback: moves the supporting sources' trust, no structural
        // invalidation.
        let signals = w.give_feedback(FeedbackItem::expert(
            FeedbackTarget::Tuple { entity: 0 },
            Verdict::Negative,
            1.0,
        ));
        assert!(signals >= 2, "shared routing reaches supporters");
        let moved = out
            .selected_sources
            .iter()
            .zip(&trust_before)
            .any(|(id, before)| w.source_trust(*id) < *before);
        assert!(moved, "some supporter's trust must drop");
        // Incremental rewrangle after the trust ripple: no remapping, no
        // re-ER (structural artifacts untouched).
        let before_work = w.working.work;
        let _ = w.rewrangle().unwrap();
        let delta = w.working.work - before_work;
        assert_eq!(delta.mappings_generated, 0);
        assert_eq!(delta.er_pairs, 0);
        assert!(delta.slots_fused <= full_work.slots_fused);

        // Siloed value feedback refuses exactly one slot: the strictly
        // bounded reprocessing Example 5 demands.
        let mut siloed = session(&fleet, UserContext::balanced("t"));
        siloed.routing = RoutingMode::Siloed;
        siloed.wrangle().unwrap();
        siloed.give_feedback(FeedbackItem::expert(
            FeedbackTarget::Value {
                entity: 0,
                attr: 4,
                value: None,
            },
            Verdict::Negative,
            1.0,
        ));
        let before_work = siloed.working.work;
        let _ = siloed.rewrangle().unwrap();
        let delta = siloed.working.work - before_work;
        assert_eq!(delta.mappings_generated, 0);
        assert_eq!(delta.er_pairs, 0);
        assert_eq!(delta.slots_fused, 1, "exactly the judged slot is refused");
    }

    #[test]
    fn negative_source_feedback_triggers_structural_rework_when_shared() {
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        let out = w.wrangle().unwrap();
        let sid = out.selected_sources[0];
        w.give_feedback(FeedbackItem::expert(
            FeedbackTarget::Extraction {
                source: sid.0 as usize,
            },
            Verdict::Negative,
            1.0,
        ));
        assert!(w.working.is_dirty(Artifact::Mapping(sid.0 as usize)));
        // Rewrangle falls back to the full path. Structural rework shows up
        // either as a regenerated mapping for the judged source, or — when
        // the trust hit is severe enough — as that source being dropped from
        // the selection entirely.
        let before = w.working.work;
        let out2 = w.rewrangle().unwrap();
        let delta = w.working.work - before;
        assert!(delta.mappings_generated >= 1 || !out2.selected_sources.contains(&sid));
    }

    #[test]
    fn siloed_routing_produces_fewer_signals() {
        let fleet = small_fleet();
        let mut shared = session(&fleet, UserContext::balanced("t"));
        let mut siloed = session(&fleet, UserContext::balanced("t"));
        siloed.routing = RoutingMode::Siloed;
        shared.wrangle().unwrap();
        siloed.wrangle().unwrap();
        let item = |_: &Wrangler| {
            FeedbackItem::expert(
                FeedbackTarget::Value {
                    entity: 1,
                    attr: 4,
                    value: None,
                },
                Verdict::Negative,
                1.0,
            )
        };
        let n_shared = shared.give_feedback(item(&shared));
        let n_siloed = siloed.give_feedback(item(&siloed));
        assert!(n_shared >= n_siloed);
    }

    #[test]
    fn value_feedback_vetoes_and_confirms() {
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        let out = w.wrangle().unwrap();
        let price_attr = w.target().index_of("price").unwrap();
        // Find an entity with a delivered price.
        let entity = (0..out.table.num_rows())
            .find(|&r| !out.table.get_named(r, "price").unwrap().is_null())
            .expect("some delivered price");
        let old_value = out.table.get_named(entity, "price").unwrap().clone();
        // Refute it: the same value must never be delivered again.
        w.give_feedback(FeedbackItem::expert(
            FeedbackTarget::Value {
                entity,
                attr: price_attr,
                value: Some(old_value.clone()),
            },
            Verdict::Negative,
            1.0,
        ));
        let out2 = w.rewrangle().unwrap();
        let new_value = out2.table.get_named(entity, "price").unwrap().clone();
        assert_ne!(new_value, old_value, "vetoed value re-delivered");
        // If every claim agreed with the vetoed value, the slot is now empty
        // (Null) and unexplainable; otherwise the explanation records the veto.
        if let Some(exp) = w.explain(entity, price_attr) {
            assert!(exp.vetoed_values.contains(&old_value));
        } else {
            assert!(new_value.is_null());
        }
        // Confirm the new value: pinned at full confidence.
        if !new_value.is_null() {
            w.give_feedback(FeedbackItem::expert(
                FeedbackTarget::Value {
                    entity,
                    attr: price_attr,
                    value: Some(new_value.clone()),
                },
                Verdict::Positive,
                1.0,
            ));
            let out3 = w.rewrangle().unwrap();
            assert_eq!(out3.table.get_named(entity, "price").unwrap(), &new_value);
            let exp = w.explain(entity, price_attr).unwrap();
            assert!(exp.confirmed);
            assert_eq!(exp.confidence, 1.0);
        }
    }

    #[test]
    fn explain_names_supporters_and_dissenters() {
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        w.wrangle().unwrap();
        let price_attr = w.target().index_of("price").unwrap();
        let exp = (0..30)
            .find_map(|e| w.explain(e, price_attr))
            .expect("explainable slot");
        assert!(!exp.supporters.is_empty());
        for s in exp.supporters.iter().chain(&exp.dissenters) {
            assert!(
                s.name.starts_with("shop"),
                "source name propagated: {}",
                s.name
            );
            assert!((0.0..=1.0).contains(&s.trust));
        }
        assert!(w.explain(9999, price_attr).is_none());
    }

    #[test]
    fn er_refinement_consumes_duplicate_labels() {
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        w.wrangle().unwrap();
        assert_eq!(w.refine_er(), None, "no labels yet");
        // Label two union rows as duplicates (indices are union rows).
        w.give_feedback(FeedbackItem::expert(
            FeedbackTarget::DuplicatePair { row_a: 0, row_b: 1 },
            Verdict::Negative,
            0.5,
        ));
        let f1 = w.refine_er();
        assert!(f1.is_some());
    }

    #[test]
    fn wrangle_completes_on_surviving_subset() {
        use wrangler_sources::FaultProfile;
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        // Half the fleet hard-down: the resilient default must still deliver.
        for i in [0u32, 2, 4] {
            w.set_fault_profile(SourceId(i), FaultProfile::HardDown);
        }
        let out = w.wrangle().expect("graceful degradation, not an error");
        assert!(out.entities > 0);
        assert!(!out.skipped_sources.is_empty(), "the downed sources skipped");
        assert!(out
            .skipped_sources
            .iter()
            .all(|(id, _)| [0, 2, 4].contains(&id.0)));
        assert!(out
            .selected_sources
            .iter()
            .all(|id| ![0u32, 2, 4].contains(&id.0)));
        assert!(out.acquisition_attempts > out.selected_sources.len() as u64);
    }

    #[test]
    fn all_sources_down_is_a_clean_structured_error() {
        use wrangler_sources::FaultProfile;
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        for i in 0..w.num_sources() {
            w.set_fault_profile(SourceId(i as u32), FaultProfile::HardDown);
        }
        match w.wrangle() {
            Err(wrangler_table::TableError::Unavailable(msg)) => {
                assert!(msg.contains("no sources could be acquired"), "{msg}");
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }
    }

    #[test]
    fn degraded_payloads_are_integrated_and_reported() {
        use wrangler_sources::FaultProfile;
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        let healthy = w.wrangle().unwrap();
        let victim = healthy.selected_sources[0];
        w.set_fault_profile(victim, FaultProfile::Truncated { keep_fraction: 0.5 });
        // Force re-selection + re-acquisition.
        w.working.invalidate(Artifact::Result);
        w.cache = None;
        let out = w.wrangle().unwrap();
        if out.selected_sources.contains(&victim) {
            assert!(out
                .degraded_sources
                .iter()
                .any(|(id, _)| *id == victim));
        }
        assert!(out.entities > 0);
    }

    #[test]
    fn abort_mode_turns_any_failure_into_an_error() {
        use crate::acquire::AcquisitionMode;
        use wrangler_sources::FaultProfile;
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        w.acquisition.mode = AcquisitionMode::AbortOnFailure;
        w.set_fault_profile(SourceId(1), FaultProfile::HardDown);
        // src1 has decent quality in this fleet, so it gets selected; the
        // naive mode then aborts the whole wrangle.
        match w.wrangle() {
            Err(wrangler_table::TableError::Unavailable(msg)) => {
                assert!(msg.contains("aborted"), "{msg}");
            }
            Ok(out) => {
                // Only acceptable if the downed source was never selected.
                assert!(!out.selected_sources.contains(&SourceId(1)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn breaker_quarantine_feeds_selection_availability() {
        use wrangler_sources::FaultProfile;
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        w.set_fault_profile(SourceId(0), FaultProfile::HardDown);
        let first = w.wrangle().unwrap();
        let src0_was_tried = first
            .skipped_sources
            .iter()
            .any(|(id, _)| *id == SourceId(0));
        if src0_was_tried {
            // Its breaker is now open: selection sees availability 0 and the
            // next wrangle doesn't waste attempts on it.
            let est = w.estimates();
            assert_eq!(est[0].availability, 0.0);
            w.working.invalidate(Artifact::Result);
            w.cache = None;
            let second = w.wrangle().unwrap();
            assert!(!second.selected_sources.contains(&SourceId(0)));
            assert!(second
                .skipped_sources
                .iter()
                .all(|(id, _)| *id != SourceId(0)));
        }
    }

    #[test]
    fn acquisition_failures_discount_source_trust() {
        use wrangler_sources::FaultProfile;
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        let before = w.source_trust(SourceId(0));
        w.set_fault_profile(SourceId(0), FaultProfile::HardDown);
        let out = w.wrangle().unwrap();
        if out.skipped_sources.iter().any(|(id, _)| *id == SourceId(0)) {
            assert!(w.source_trust(SourceId(0)) < before);
        }
    }

    #[test]
    fn faultless_fleet_reports_clean_acquisition() {
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        let out = w.wrangle().unwrap();
        assert!(out.skipped_sources.is_empty());
        assert!(out.degraded_sources.is_empty());
        assert_eq!(
            out.acquisition_attempts,
            out.selected_sources.len() as u64,
            "one attempt per source, no retries"
        );
    }

    #[test]
    fn clean_pipeline_passes_deny_gate() {
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        assert_eq!(w.lint_gate(), wrangler_lint::GateMode::Deny);
        let out = w.wrangle().unwrap();
        // Generated mappings may carry advisory warnings (lossy messy-number
        // normalization is real), but never error-grade findings: the gate
        // must not block the seed pipeline.
        assert!(out.lint.is_clean(), "{:?}", out.lint);
    }

    #[test]
    fn deny_gate_blocks_corrupted_mapping_before_execution() {
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        let out = w.wrangle().unwrap();
        let victim = out.selected_sources[0];
        let mut bad = w.mapping_of(victim).expect("mapping generated").clone();
        *bad
            .bindings
            .iter_mut()
            .find(|b| b.is_some())
            .expect("some binding") = Some(999);
        assert!(w.override_mapping(victim, bad));
        let err = w.wrangle().unwrap_err();
        assert!(err.to_string().contains("pre-flight lint"), "{err}");
        // Findings survive the refusal, so callers can inspect why.
        assert!(!w.lint_report().is_clean());
        assert!(w
            .lint_findings()
            .iter()
            .any(|(origin, _)| origin == &format!("src{}", victim.0)));
    }

    #[test]
    fn warn_gate_records_findings_and_containment_quarantines_the_bad_source() {
        let fleet = small_fleet();
        let mut w =
            session(&fleet, UserContext::balanced("t")).with_lint_gate(wrangler_lint::GateMode::Warn);
        let out = w.wrangle().unwrap();
        let victim = out.selected_sources[0];
        let mut bad = w.mapping_of(victim).expect("mapping generated").clone();
        *bad
            .bindings
            .iter_mut()
            .find(|b| b.is_some())
            .expect("some binding") = Some(999);
        assert!(w.override_mapping(victim, bad));
        // Under the default Contain policy the defect no longer kills the
        // pass: the source erroring at map_apply is quarantined and the run
        // completes on survivors.
        let out = w.wrangle().unwrap();
        let q: Vec<_> = out
            .containment
            .quarantines
            .iter()
            .filter(|e| e.source == victim && e.stage == Stage::MapApply)
            .collect();
        assert_eq!(q.len(), 1, "victim quarantined exactly once: {out:?}");
        assert!(q[0].reason.contains("out of bounds"), "{}", q[0].reason);
        assert!(!out.selected_sources.contains(&victim));
        assert!(!w.lint_report().is_clean(), "findings still recorded");
    }

    #[test]
    fn warn_gate_abort_policy_restores_runtime_error() {
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"))
            .with_lint_gate(wrangler_lint::GateMode::Warn)
            .with_contain_policy(ContainPolicy::abort());
        let out = w.wrangle().unwrap();
        let victim = out.selected_sources[0];
        let mut bad = w.mapping_of(victim).expect("mapping generated").clone();
        *bad
            .bindings
            .iter_mut()
            .find(|b| b.is_some())
            .expect("some binding") = Some(999);
        assert!(w.override_mapping(victim, bad));
        // Abort mode reproduces the legacy behavior: the same defect
        // surfaces as a runtime table error mid-run, not a lint block.
        let err = w.wrangle().unwrap_err();
        assert!(!err.to_string().contains("pre-flight lint"), "{err}");
        assert!(!w.lint_report().is_clean(), "findings still recorded");
    }

    /// Regression for the opaque "schema-matching worker panicked" failure:
    /// a panic inside one source's mapping generation must identify and
    /// quarantine that source, and the pass must complete on survivors.
    #[test]
    fn map_generate_panic_quarantines_the_source_and_pass_completes() {
        use crate::contain::ChaosPolicy;
        let fleet = small_fleet();
        // seed=2 rate=0.3 deterministically hits sources 3 and 5 at
        // map_generate and no others.
        let chaos = ChaosPolicy::new(0.3, 2).at_stage(Stage::MapGenerate);
        let mut w = session(&fleet, UserContext::balanced("t"))
            .with_contain_policy(ContainPolicy::contain().with_chaos(chaos));
        let out = w.wrangle().unwrap();
        let quarantined = out.containment.quarantined_sources();
        assert_eq!(quarantined, vec![SourceId(3), SourceId(5)], "{out:?}");
        for e in &out.containment.quarantines {
            assert_eq!(e.stage, Stage::MapGenerate);
            assert!(e.reason.contains("panicked"), "{}", e.reason);
        }
        let t = out.containment.tallies(Stage::MapGenerate);
        assert_eq!(t.quarantined, 2);
        assert_eq!(t.panics_caught, 2);
        // Survivors complete the pass.
        assert!(!out.selected_sources.is_empty());
        assert!(!out.selected_sources.contains(&SourceId(3)));
        assert!(!out.selected_sources.contains(&SourceId(5)));
        assert!(out.entities > 0);
        // Identical session, identical report — containment is deterministic.
        let chaos2 = ChaosPolicy::new(0.3, 2).at_stage(Stage::MapGenerate);
        let mut w2 = session(&fleet, UserContext::balanced("t"))
            .with_contain_policy(ContainPolicy::contain().with_chaos(chaos2));
        let out2 = w2.wrangle().unwrap();
        assert_eq!(out.containment.render(), out2.containment.render());
    }

    #[test]
    fn map_generate_panic_in_abort_mode_names_the_source() {
        use crate::contain::ChaosPolicy;
        let fleet = small_fleet();
        let chaos = ChaosPolicy::new(0.3, 2).at_stage(Stage::MapGenerate);
        let mut w = session(&fleet, UserContext::balanced("t"))
            .with_contain_policy(ContainPolicy::abort().with_chaos(chaos));
        let err = w.wrangle().unwrap_err();
        let msg = err.to_string();
        // Not the old opaque message: the failing source is identified.
        assert!(msg.contains("src"), "{msg}");
        assert!(msg.contains("map_generate"), "{msg}");
    }

    /// A type-poisoned source is caught at the union firewall: its poison
    /// rows are dropped, and past the threshold the whole source is ejected.
    #[test]
    fn type_poisoned_source_is_quarantined_at_union() {
        use wrangler_sources::FaultProfile;
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        w.set_fault_profile(SourceId(0), FaultProfile::TypePoison { cell_rate: 0.6 });
        let out = w.wrangle().unwrap();
        let q: Vec<_> = out
            .containment
            .quarantines
            .iter()
            .filter(|e| e.source == SourceId(0))
            .collect();
        assert_eq!(q.len(), 1, "{out:?}");
        assert_eq!(q[0].stage, Stage::Union);
        assert!(q[0].reason.contains("poison rows"), "{}", q[0].reason);
        assert!(out.containment.tallies(Stage::Union).dropped_rows > 0);
        assert!(!out.selected_sources.contains(&SourceId(0)));
        assert!(out.entities > 0, "survivors still produce output");
    }

    /// Quarantine feeds the acquisition breaker: a source poisonous
    /// mid-pipeline is discounted at the next acquisition, and recovers
    /// through half-open once healed and past the cooldown.
    #[test]
    fn quarantine_trips_breaker_then_half_open_recovery_after_heal() {
        use wrangler_sources::FaultProfile;
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        w.set_fault_profile(SourceId(0), FaultProfile::NonFinite { cell_rate: 0.9 });
        let out = w.wrangle().unwrap();
        assert!(
            out.containment.quarantined_sources().contains(&SourceId(0)),
            "{out:?}"
        );
        // The pipeline failure tripped src0's breaker immediately.
        assert_eq!(w.estimates()[0].availability, 0.0);
        assert!(matches!(
            w.acquisition.breaker_state(0),
            Some(crate::acquire::BreakerState::Open { .. })
        ));
        // Heal the source and move well past the cooldown (the acquisition
        // clock advanced during the first pass, so leave a margin): the
        // breaker becomes half-open eligible.
        w.set_fault_profile(SourceId(0), FaultProfile::Healthy);
        let cooldown = w.acquisition.breaker_cfg.cooldown;
        w.set_now(fleet.truth.now + 2 * cooldown);
        assert_eq!(w.estimates()[0].availability, 0.5);
        // A fresh pass completes; if selection re-admits the healed source
        // (its trust was discounted by the quarantine, so it may not make
        // the marginal-gain cut), it comes back clean.
        w.working.invalidate(Artifact::Result);
        w.cache = None;
        let second = w.wrangle().unwrap();
        assert!(second.entities > 0);
        assert!(!second
            .containment
            .quarantined_sources()
            .contains(&SourceId(0)));
        if second.selected_sources.contains(&SourceId(0)) {
            // The probe succeeded: the breaker is half-open or closed, never
            // re-opened.
            assert!(w.estimates()[0].availability >= 0.5);
        }
    }

    #[test]
    fn off_gate_skips_analysis() {
        let fleet = small_fleet();
        let mut w =
            session(&fleet, UserContext::balanced("t")).with_lint_gate(wrangler_lint::GateMode::Off);
        let out = w.wrangle().unwrap();
        assert!(out.lint.is_empty());
        assert!(w.lint_findings().is_empty());
    }

    #[test]
    fn metrics_cover_every_stage_and_every_worker() {
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        let out = w.wrangle().unwrap();
        let m = &out.metrics;
        // Every pipeline stage shows up as a direct child span of the root.
        for stage in [
            "select",
            "acquire",
            "map_generate",
            "preflight",
            "map_apply",
            "union",
            "er",
            "fuse",
            "assemble",
        ] {
            let path = format!("wrangle/{stage}");
            assert!(m.timings.contains_key(&path), "missing span {path}");
        }
        // Per-worker item counts from the strided fan-out sum to the total,
        // and with >= 2 inputs no recorded worker sat idle.
        let worker_items: Vec<u64> = m
            .counts
            .iter()
            .filter(|(k, _)| k.starts_with("map.worker") && k.ends_with(".items"))
            .map(|(_, v)| *v)
            .collect();
        assert!(!worker_items.is_empty());
        assert_eq!(
            worker_items.iter().sum::<u64>(),
            m.counts["map.generated"],
            "per-worker items must sum to map.generated"
        );
        assert!(
            worker_items.iter().all(|&n| n > 0),
            "no worker may be idle: {worker_items:?}"
        );
        // Output counters agree with the outcome.
        assert_eq!(m.counts["out.entities"], out.entities as u64);
        assert_eq!(m.counts["out.rows"], out.table.num_rows() as u64);
        assert_eq!(m.counts["pass.wrangle"], 1);
        // Stage spans attribute (nearly) all of the root's wall clock.
        let cov = m.stage_coverage("wrangle");
        assert!(cov > 0.9, "stage coverage {cov}");
        // An incremental rewrangle records its own pass + refuse stage.
        w.give_feedback(FeedbackItem::expert(
            FeedbackTarget::Tuple { entity: 0 },
            Verdict::Negative,
            1.0,
        ));
        let out2 = w.rewrangle().unwrap();
        let m2 = &out2.metrics;
        assert_eq!(m2.counts["pass.rewrangle"], 1);
        assert_eq!(m2.counts["feedback.items"], 1);
        assert!(m2.counts["refuse.slots"] > 0);
        assert!(m2.timings.contains_key("rewrangle/refuse"));
        assert!(m2.timings.contains_key("rewrangle/assemble"));
    }

    #[test]
    fn er_worker_counters_cover_candidates_and_cache_replays_unchanged_rows() {
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t")).with_er_workers(3);
        let out = w.wrangle().unwrap();
        let m = &out.metrics;
        // Per-worker ER items sum to the candidate count; with a fresh cache
        // every candidate is a miss and no worker sits idle.
        let worker_items: Vec<u64> = m
            .counts
            .iter()
            .filter(|(k, _)| k.starts_with("er.worker") && k.ends_with(".items"))
            .map(|(_, v)| *v)
            .collect();
        assert!(!worker_items.is_empty());
        assert_eq!(worker_items.iter().sum::<u64>(), m.counts["er.candidates"]);
        assert!(
            worker_items.iter().all(|&n| n > 0),
            "no worker may be idle: {worker_items:?}"
        );
        assert_eq!(m.counts["er.cache.misses"], m.counts["er.candidates"]);
        // Zero-valued counters are never recorded, so a cold cache leaves no
        // hits entry at all.
        assert!(!m.counts.contains_key("er.cache.hits"));
        // Force the structural path with unchanged rows: every pair score
        // must come from the content-keyed cache, and the output must be
        // identical to the first pass. Counters are cumulative across
        // passes, so compare the second pass as a delta over the first.
        w.working.invalidate(Artifact::Clusters);
        let out2 = w.rewrangle().unwrap();
        let m2 = &out2.metrics;
        let per_pass = m.counts["er.candidates"];
        assert_eq!(m2.counts["er.candidates"], 2 * per_pass);
        assert_eq!(m2.counts["er.cache.hits"], per_pass);
        assert_eq!(m2.counts["er.cache.misses"], per_pass, "no new misses");
        assert_eq!(out2.entities, out.entities);
        assert_eq!(out2.table, out.table);
    }

    #[test]
    fn er_output_is_identical_for_any_worker_count() {
        let fleet = small_fleet();
        let mut one = session(&fleet, UserContext::balanced("t")).with_er_workers(1);
        let mut five = session(&fleet, UserContext::balanced("t")).with_er_workers(5);
        let a = one.wrangle().unwrap();
        let b = five.wrangle().unwrap();
        assert_eq!(a.entities, b.entities);
        assert_eq!(a.table, b.table);
        assert_eq!(
            a.metrics.counts["er.match_pairs"],
            b.metrics.counts["er.match_pairs"]
        );
    }

    #[test]
    fn fuse_output_is_identical_for_any_worker_count() {
        let fleet = small_fleet();
        let mut one = session(&fleet, UserContext::balanced("t")).with_fuse_workers(1);
        let mut five = session(&fleet, UserContext::balanced("t")).with_fuse_workers(5);
        let a = one.wrangle().unwrap();
        let b = five.wrangle().unwrap();
        assert_eq!(a.entities, b.entities);
        assert_eq!(a.table, b.table);
        assert_eq!(a.metrics.counts["fuse.slots"], b.metrics.counts["fuse.slots"]);
        // Per-worker fuse counters sum to the slots the kernel fused (no
        // confirmations/vetoes here, so every live slot is a kernel slot).
        for m in [&a.metrics, &b.metrics] {
            let worker_items: Vec<u64> = m
                .counts
                .iter()
                .filter(|(k, _)| k.starts_with("fuse.worker") && k.ends_with(".items"))
                .map(|(_, v)| *v)
                .collect();
            assert!(!worker_items.is_empty());
            assert_eq!(worker_items.iter().sum::<u64>(), m.counts["fuse.slots"]);
            assert!(
                worker_items.iter().all(|&n| n > 0),
                "no worker may be idle: {worker_items:?}"
            );
        }
    }

    /// PR 5 semantics survive the parallel fuse kernel: a fuse-stage chaos
    /// panic quarantines the rolled source *by name* before its claims enter
    /// the claim set, and the pass completes on survivors — with the slot
    /// pool running multi-worker.
    #[test]
    fn fuse_chaos_panic_is_contained_and_names_the_source_with_parallel_kernel() {
        use crate::contain::ChaosPolicy;
        let fleet = small_fleet();
        let chaos = ChaosPolicy::new(0.3, 2).at_stage(Stage::Fuse);
        let mut w = session(&fleet, UserContext::balanced("t"))
            .with_fuse_workers(5)
            .with_contain_policy(ContainPolicy::contain().with_chaos(chaos));
        let out = w.wrangle().unwrap();
        let quarantined = out.containment.quarantined_sources();
        assert!(!quarantined.is_empty(), "chaos must hit at this seed/rate");
        for e in &out.containment.quarantines {
            assert_eq!(e.stage, Stage::Fuse);
            assert!(e.reason.contains("panicked"), "{}", e.reason);
        }
        assert!(out.containment.tallies(Stage::Fuse).panics_caught > 0);
        // Survivors complete the pass; the quarantined sources are named
        // and excluded.
        assert!(!out.selected_sources.is_empty());
        for id in &quarantined {
            assert!(!out.selected_sources.contains(id), "{id:?} still selected");
        }
        assert!(out.entities > 0);
        // A clean run with the same worker count delivers identical output
        // minus the quarantined sources' claims — and a chaos-free session
        // is byte-deterministic.
        let chaos2 = ChaosPolicy::new(0.3, 2).at_stage(Stage::Fuse);
        let mut w2 = session(&fleet, UserContext::balanced("t"))
            .with_fuse_workers(5)
            .with_contain_policy(ContainPolicy::contain().with_chaos(chaos2));
        let out2 = w2.wrangle().unwrap();
        assert_eq!(out.containment.render(), out2.containment.render());
        assert_eq!(out.table, out2.table);
    }

    #[test]
    fn obs_off_records_nothing_and_changes_no_output() {
        let fleet = small_fleet();
        let mut on = session(&fleet, UserContext::balanced("t"));
        let mut off =
            session(&fleet, UserContext::balanced("t")).with_obs_mode(wrangler_obs::ObsMode::Off);
        let a = on.wrangle().unwrap();
        let b = off.wrangle().unwrap();
        assert!(b.metrics.counts.is_empty());
        assert!(b.metrics.timings.is_empty());
        // Telemetry is observation only: the wrangled data is unchanged.
        assert_eq!(a.entities, b.entities);
        assert_eq!(a.table.num_rows(), b.table.num_rows());
        assert!((a.utility - b.utility).abs() < 1e-12);
    }

    /// Bit-exact table fingerprint: floats via `to_bits`, everything else
    /// via its debug rendering.
    fn table_fingerprint(t: &Table) -> String {
        let mut s = String::new();
        for r in 0..t.num_rows() {
            for c in 0..t.num_columns() {
                match t.get(r, c).unwrap() {
                    Value::Float(f) => s.push_str(&format!("f{:016x};", f.to_bits())),
                    v => s.push_str(&format!("{v:?};")),
                }
            }
            s.push('\n');
        }
        s
    }

    fn category_filter() -> Expr {
        Expr::col("category")
            .eq(Expr::lit("electronics"))
            .or(Expr::col("category").eq(Expr::lit("home")))
    }

    fn projection() -> Vec<String> {
        vec!["sku".into(), "name".into(), "price".into()]
    }

    #[test]
    fn optimized_and_naive_are_byte_identical_with_barrier_up() {
        // Default containment: the scan barrier is up, so the filter stays
        // fused in the union loop; CSE and dead-fusion still apply.
        let fleet = small_fleet();
        let mut opt = session(&fleet, UserContext::balanced("t"))
            .with_row_filter(category_filter())
            .with_output_columns(projection());
        let mut naive = session(&fleet, UserContext::balanced("t"))
            .with_row_filter(category_filter())
            .with_output_columns(projection())
            .with_opt_mode(OptMode::Naive);
        let a = opt.wrangle().unwrap();
        let b = naive.wrangle().unwrap();
        assert_eq!(table_fingerprint(&a.table), table_fingerprint(&b.table));
        assert_eq!(a.entities, b.entities);
        let program = opt.plan_program().expect("optimized program");
        let kinds: Vec<&str> = program.rewrites.iter().map(|r| r.kind.name()).collect();
        assert!(kinds.contains(&"fuse-filter-into-union"), "{kinds:?}");
        assert!(kinds.contains(&"skip-dead-fusion"), "{kinds:?}");
        assert!(naive.plan_program().unwrap().rewrites.is_empty());
    }

    #[test]
    fn optimized_and_naive_are_byte_identical_with_pushdown() {
        // Containment off drops the scan barrier: cell-exact sources get
        // the filter pushed all the way into acquisition, and the result
        // must still match the naive materialize-then-filter pass bit for
        // bit.
        let fleet = small_fleet();
        let mut opt = session(&fleet, UserContext::balanced("t"))
            .with_contain_policy(ContainPolicy::off())
            .with_row_filter(category_filter())
            .with_output_columns(projection());
        let mut naive = session(&fleet, UserContext::balanced("t"))
            .with_contain_policy(ContainPolicy::off())
            .with_row_filter(category_filter())
            .with_output_columns(projection())
            .with_opt_mode(OptMode::Naive);
        let a = opt.wrangle().unwrap();
        let b = naive.wrangle().unwrap();
        assert_eq!(table_fingerprint(&a.table), table_fingerprint(&b.table));
        let program = opt.plan_program().expect("optimized program");
        // At least one source's filter left the union loop.
        let early = (0..opt.num_sources())
            .any(|i| program.placement_for(i) != wrangler_plan::FilterPlacement::Union);
        assert!(early, "no early placement despite barrier down");
        // And the optimized pass scanned strictly fewer bytes.
        assert!(
            a.metrics.counts["scan.bytes"] < b.metrics.counts["scan.bytes"],
            "opt {} vs naive {}",
            a.metrics.counts["scan.bytes"],
            b.metrics.counts["scan.bytes"]
        );
    }

    #[test]
    fn projection_delivers_only_requested_columns() {
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"))
            .with_output_columns(projection());
        let out = w.wrangle().unwrap();
        assert_eq!(
            out.table.schema().names(),
            vec!["sku", "name", "price", "_confidence"]
        );
        // brand/category are dead at fuse and their slots were skipped.
        assert!(out.metrics.counts["fuse.slots_skipped"] > 0);
    }

    // -----------------------------------------------------------------
    // The incremental dataflow engine: partition-scoped reuse must be
    // byte-identical to cold recomputation, stale reuse must be
    // structurally impossible, and every reuse must surface in telemetry.
    // -----------------------------------------------------------------

    /// Deterministically perturb a source payload: bump the first numeric
    /// cell (or rewrite the first string) so the content hash moves while
    /// the schema stays put.
    fn perturbed(table: &Table) -> Table {
        let schema = table.schema().clone();
        let mut cols: Vec<Vec<Value>> = (0..table.num_columns())
            .map(|i| table.column(i).unwrap().to_vec())
            .collect();
        let mut done = false;
        'outer: for col in cols.iter_mut() {
            for v in col.iter_mut() {
                match v {
                    Value::Float(f) => {
                        *f += 1.0;
                        done = true;
                        break 'outer;
                    }
                    Value::Int(n) => {
                        *n += 1;
                        done = true;
                        break 'outer;
                    }
                    Value::Str(s) => {
                        s.push_str(" v2");
                        done = true;
                        break 'outer;
                    }
                    _ => {}
                }
            }
        }
        assert!(done, "no perturbable cell");
        Table::from_columns(schema, cols).unwrap()
    }

    /// Fingerprint of a full outcome: bit-exact table plus the shape facts
    /// a reader would notice.
    fn outcome_fingerprint(out: &WrangleOutcome) -> String {
        format!(
            "{}|e{}|sel{:?}|skip{:?}",
            table_fingerprint(&out.table),
            out.entities,
            out.selected_sources,
            out.skipped_sources
        )
    }

    /// Run the warm (incremental) session and a cold comparator cloned from
    /// the *same* state with the engine disabled; both must deliver
    /// byte-identical outcomes. Returns the warm outcome for further
    /// assertions.
    fn assert_incremental_matches_cold(w: &mut Wrangler) -> WrangleOutcome {
        let mut cold = w.clone();
        cold.set_incr_enabled(false);
        assert_eq!(cold.incr_memo_count(), 0, "cold comparator starts bare");
        let warm_out = w.wrangle().unwrap();
        let cold_out = cold.wrangle().unwrap();
        assert_eq!(
            outcome_fingerprint(&warm_out),
            outcome_fingerprint(&cold_out),
            "incremental reuse must be byte-identical to cold recompute"
        );
        warm_out
    }

    #[test]
    fn one_source_update_reuses_every_clean_partition_byte_identically() {
        let fleet = small_fleet();
        // Completeness-dominant context: AllRelevant selection, so the
        // freshness bump of the updated source cannot reshuffle the
        // selected set out from under the partition comparison. (With
        // marginal-gain selection a fresher source legitimately changes the
        // chosen subset — and then the plan, and then every partition.)
        let mut w = session(&fleet, UserContext::completeness_first());
        let first = w.wrangle().unwrap();
        let victim = first.selected_sources[0];
        let n_selected = first.selected_sources.len() as u64;
        assert!(n_selected >= 4, "fixture needs a fleet-wide selection");
        let new_payload = perturbed(&fleet.registry.get(victim).unwrap().table);
        assert!(w.update_source(victim, new_payload).unwrap());
        let out = assert_incremental_matches_cold(&mut w);
        let m = out.metrics;
        // Exactly the dirty partition recomputed (counters are cumulative:
        // the cold first pass computed every block once); every other
        // selected source's union block replayed.
        assert_eq!(m.counts["incr.union.recomputed"], n_selected + 1, "{m:?}");
        assert_eq!(
            m.counts["incr.union.reused"],
            n_selected - 1,
            "clean partitions must replay: {m:?}"
        );
        // The union changed, so ER ran — but through the index-remap fast
        // path for clean-clean pairs, not a cold rescore.
        assert!(
            m.counts["incr.er.pairs_remapped"] > 0,
            "clean-clean pairs must remap: {m:?}"
        );
        // The pair cache was evicted partition-scoped, not wiped.
        assert!(m.counts["incr.pair_cache.evicted"] > 0);
        assert!(
            m.counts["incr.pair_cache.retained"] > m.counts["incr.pair_cache.evicted"],
            "a 1-source update must keep most pair scores: {m:?}"
        );
    }

    #[test]
    fn identical_update_is_a_no_op_that_keeps_every_memo() {
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        let first = w.wrangle().unwrap();
        let memos = w.incr_memo_count();
        assert!(memos > 0);
        let victim = first.selected_sources[0];
        let same = fleet.registry.get(victim).unwrap().table.clone();
        assert!(!w.update_source(victim, same).unwrap());
        assert_eq!(w.incr_memo_count(), memos, "no-op update must not evict");
        // Unknown source and schema drift are structured errors.
        assert!(w.update_source(SourceId(999), first.table.clone()).is_err());
        // Dropping a column from the source's own schema is a schema drift.
        let src = &fleet.registry.get(victim).unwrap().table;
        let keep = src.schema().field(0).unwrap().name.clone();
        let dropped =
            wrangler_table::ops::project_exprs(src, &[(keep.clone(), Expr::col(&keep))]).unwrap();
        assert!(w.update_source(victim, dropped).is_err());
    }

    #[test]
    fn pure_replay_reuses_er_and_fuse_without_fake_spans() {
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        let first = w.wrangle().unwrap();
        let er_passes = first.metrics.timings["wrangle/er"].calls;
        let fuse_passes = first.metrics.timings["wrangle/fuse"].calls;
        // Nothing changed: the second pass replays union blocks, ER and
        // fuse wholesale, byte-identically.
        w.working.invalidate(Artifact::Result);
        w.cache = None;
        let out = assert_incremental_matches_cold(&mut w);
        let m = out.metrics;
        // Counters are cumulative across passes: compare against the first
        // (cold) pass's snapshot to isolate what the replay pass did.
        let delta = |key: &str| {
            m.counts.get(key).copied().unwrap_or(0)
                - first.metrics.counts.get(key).copied().unwrap_or(0)
        };
        assert_eq!(delta("incr.er.reused"), 1, "{m:?}");
        assert_eq!(delta("incr.fuse.reused"), 1, "{m:?}");
        assert_eq!(delta("incr.union.recomputed"), 0, "{m:?}");
        assert!(delta("incr.union.reused") > 0);
        // Metrics attribution: a reused stage records NO span at all (a
        // zero-duration span would skew stage_shares); the replay cost is
        // attributed to its own explicitly-named span instead.
        assert_eq!(m.timings["wrangle/er"].calls, er_passes);
        assert_eq!(m.timings["wrangle/fuse"].calls, fuse_passes);
        assert!(m.timings.contains_key("wrangle/er_replay"));
        assert!(m.timings.contains_key("wrangle/fuse_replay"));
    }

    #[test]
    fn all_sources_dirty_is_equivalent_to_cold() {
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        let first = w.wrangle().unwrap();
        for id in &first.selected_sources {
            let t = perturbed(&fleet.registry.get(*id).unwrap().table);
            assert!(w.update_source(*id, t).unwrap());
        }
        let out = assert_incremental_matches_cold(&mut w);
        assert_eq!(
            out.metrics.counts.get("incr.union.rows_reused").copied().unwrap_or(0),
            0,
            "nothing clean to reuse"
        );
    }

    #[test]
    fn dirty_source_quarantined_mid_pass_matches_cold() {
        use wrangler_sources::FaultProfile;
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        let first = w.wrangle().unwrap();
        let victim = first.selected_sources[0];
        let t = perturbed(&fleet.registry.get(victim).unwrap().table);
        assert!(w.update_source(victim, t).unwrap());
        // The updated source now also delivers poison: it gets quarantined
        // mid-pass, and the warm session must agree with cold about both
        // the survivors' output and the containment record.
        w.set_fault_profile(victim, FaultProfile::TypePoison { cell_rate: 0.6 });
        let mut cold = w.clone();
        cold.set_incr_enabled(false);
        let warm_out = w.wrangle().unwrap();
        let cold_out = cold.wrangle().unwrap();
        assert_eq!(outcome_fingerprint(&warm_out), outcome_fingerprint(&cold_out));
        assert_eq!(
            warm_out.containment.render(),
            cold_out.containment.render()
        );
        // The freshness bump can legitimately drop the victim from the
        // marginal-gain selection; if it was selected, the poison must have
        // quarantined it.
        assert!(
            warm_out.containment.quarantined_sources().contains(&victim)
                || !warm_out.selected_sources.contains(&victim),
            "a selected poison source must be quarantined"
        );
    }

    #[test]
    fn dirty_update_heals_a_tripped_breaker_and_matches_cold() {
        use wrangler_sources::FaultProfile;
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        w.set_fault_profile(SourceId(0), FaultProfile::HardDown);
        let first = w.wrangle().unwrap();
        if !first.skipped_sources.iter().any(|(id, _)| *id == SourceId(0)) {
            return; // src0 never selected at this seed; nothing to heal
        }
        assert_eq!(w.estimates()[0].availability, 0.0, "breaker open");
        // The provider ships a fixed payload: heal the fault, deliver the
        // update, and move past the cooldown.
        w.set_fault_profile(SourceId(0), FaultProfile::Healthy);
        let t = perturbed(&fleet.registry.get(SourceId(0)).unwrap().table);
        assert!(w.update_source(SourceId(0), t).unwrap());
        let cooldown = w.acquisition.breaker_cfg.cooldown;
        w.set_now(fleet.truth.now + 2 * cooldown);
        let out = assert_incremental_matches_cold(&mut w);
        assert!(out.entities > 0);
        assert!(!out
            .containment
            .quarantined_sources()
            .contains(&SourceId(0)));
    }

    /// The fingerprint audit, input by input: every knob that changes a
    /// stage's output must flow into the content keys, so a warm session
    /// that mutates the knob mid-flight must land byte-identical to a cold
    /// session that never memoized anything. A stale reuse would diverge.
    #[test]
    fn no_stale_reuse_after_any_covered_input_changes() {
        let fleet = small_fleet();
        type Mutation = (
            &'static str,
            fn(&mut Wrangler, &SyntheticFleet, &WrangleOutcome),
        );
        let mutations: &[Mutation] = &[
            ("trust ripple via tuple feedback", |w, _, _| {
                w.give_feedback(FeedbackItem::expert(
                    FeedbackTarget::Tuple { entity: 0 },
                    Verdict::Negative,
                    1.0,
                ));
            }),
            ("value veto", |w, _, first| {
                let price_attr = w.target().index_of("price").unwrap();
                let entity = (0..first.table.num_rows())
                    .find(|&r| !first.table.get_named(r, "price").unwrap().is_null())
                    .unwrap();
                let old = first.table.get_named(entity, "price").unwrap().clone();
                w.give_feedback(FeedbackItem::expert(
                    FeedbackTarget::Value {
                        entity,
                        attr: price_attr,
                        value: Some(old),
                    },
                    Verdict::Negative,
                    1.0,
                ));
            }),
            ("source ages via clock advance", |w, fleet, _| {
                w.set_now(fleet.truth.now + 3);
                w.working.invalidate(Artifact::Result);
                w.cache = None;
            }),
            ("master data update", |w, fleet, _| {
                let catalog = perturbed(&fleet.truth.master_catalog());
                w.data_ctx.add_master("product", catalog, "sku").unwrap();
                w.working.invalidate(Artifact::Result);
                w.cache = None;
            }),
            ("fault profile degrades a payload", |w, _, _| {
                use wrangler_sources::FaultProfile;
                w.set_fault_profile(
                    SourceId(1),
                    FaultProfile::Truncated { keep_fraction: 0.5 },
                );
                w.working.invalidate(Artifact::Result);
                w.cache = None;
            }),
        ];
        for (name, mutate) in mutations {
            let mut w = session(&fleet, UserContext::balanced("t"));
            let first = w.wrangle().unwrap();
            assert!(w.incr_memo_count() > 0, "{name}: warm session memoized");
            mutate(&mut w, &fleet, &first);
            let mut cold = w.clone();
            cold.set_incr_enabled(false);
            let warm_out = w.rewrangle().unwrap();
            let cold_out = cold.rewrangle().unwrap();
            assert_eq!(
                outcome_fingerprint(&warm_out),
                outcome_fingerprint(&cold_out),
                "stale reuse after: {name}"
            );
        }
        // Plan-shape knobs clear the memos outright — the builder setters
        // call invalidate_plan_shape.
        let mut w = session(&fleet, UserContext::balanced("t"));
        w.wrangle().unwrap();
        assert!(w.incr_memo_count() > 0);
        let mut w = w.with_row_filter(category_filter());
        assert_eq!(w.incr_memo_count(), 0, "plan shape change drops memos");
        w.wrangle().unwrap();
        assert!(w.incr_memo_count() > 0);
        let w = w.with_output_columns(projection());
        assert_eq!(w.incr_memo_count(), 0, "projection change drops memos");
        // ER refinement: when the refined rule is adopted, memos and pair
        // scores are dropped outright; when it is rejected the config is
        // unchanged. Either way the next warm pass must match cold (the ER
        // config is itself fingerprint-covered).
        let mut w = session(&fleet, UserContext::balanced("t"));
        w.wrangle().unwrap();
        w.give_feedback(FeedbackItem::expert(
            FeedbackTarget::DuplicatePair { row_a: 0, row_b: 1 },
            Verdict::Negative,
            0.5,
        ));
        let _ = w.refine_er();
        w.working.invalidate(Artifact::Result);
        w.cache = None;
        assert_incremental_matches_cold(&mut w);
    }

    #[test]
    fn chaos_mode_stands_the_engine_down() {
        use crate::contain::ChaosPolicy;
        let fleet = small_fleet();
        let chaos = ChaosPolicy::new(0.0, 7); // rate 0: rolls never fire,
                                              // but the RNG is still stateful
        let mut w = session(&fleet, UserContext::balanced("t"))
            .with_contain_policy(ContainPolicy::contain().with_chaos(chaos));
        let out = w.wrangle().unwrap();
        assert_eq!(w.incr_memo_count(), 0, "chaos passes must not memoize");
        assert!(!out
            .metrics
            .counts
            .keys()
            .any(|k| k.starts_with("incr.union")));
    }

    #[test]
    fn pair_cache_survives_one_source_update_and_replays_bit_identically() {
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"));
        let first = w.wrangle().unwrap();
        let entries_before = w.working.pair_scores.entries().count();
        assert!(entries_before > 0);
        let victim = first.selected_sources[0];
        let t = perturbed(&fleet.registry.get(victim).unwrap().table);
        assert!(w.update_source(victim, t).unwrap());
        let remaining = w.working.pair_scores.entries().count();
        // Partition-scoped eviction: only entries touching the victim go.
        assert!(remaining > 0, "eviction must not wipe the cache");
        assert!(
            w.working
                .pair_scores
                .entries()
                .all(|(_, _, a, b)| a != victim.0 && b != victim.0),
            "every surviving entry avoids the updated source"
        );
        // On a fleet this small a third of the pairs can touch the victim;
        // the E18 harness checks the >= 0.90 retention bound at 40 sources.
        let retention = remaining as f64 / entries_before as f64;
        assert!(retention >= 0.5, "retention {retention} collapsed");
        // And the surviving scores replay bit-identically: the next pass's
        // clean-partition pairs hit cache/remap and the output matches cold.
        assert_incremental_matches_cold(&mut w);
    }

    #[test]
    fn plan_program_carries_verified_justifications() {
        let fleet = small_fleet();
        let mut w = session(&fleet, UserContext::balanced("t"))
            .with_row_filter(category_filter())
            .with_output_columns(projection());
        let out = w.wrangle().unwrap();
        let program = w.plan_program().expect("program recorded");
        assert!(program.verification.is_clean());
        assert!(!program.rewrites.is_empty());
        for rw in &program.rewrites {
            assert!(!rw.justification.is_empty(), "{:?}", rw.kind);
        }
        // Every rewrite is attributed in telemetry and the plan counters ran.
        assert!(out.metrics.counts["plan.nodes"] > 0);
        assert!(out.metrics.counts["plan.facts"] > 0);
        assert_eq!(
            out.metrics.counts["opt.rewrites"],
            program.rewrites.len() as u64
        );
        let attributed: u64 = out
            .metrics
            .counts
            .iter()
            .filter(|(k, _)| k.starts_with("opt.rewrite."))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(attributed, program.rewrites.len() as u64);
    }
}
