//! Template-driven page generation and drift.
//!
//! A [`Template`] deterministically renders a table of records into a page,
//! the way a site's server-side template would; [`Template::drift`] produces
//! the "site redesign" mutations that break deployed wrappers — the Velocity
//! failure mode §2.2 and \[29\] address.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wrangler_table::Table;

use crate::doc::Doc;
use crate::wrapper::{FieldRule, Selector, Wrapper};

/// How one column renders inside a record subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldSpec {
    /// Source column name.
    pub column: String,
    /// Element tag.
    pub tag: String,
    /// Element class.
    pub class: String,
    /// Literal label prefix rendered before the value (e.g. `"Price: "`).
    pub prefix: String,
}

/// A page template.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    /// Tag of record elements.
    pub record_tag: String,
    /// Class of record elements.
    pub record_class: String,
    /// Per-column rendering, in layout order.
    pub fields: Vec<FieldSpec>,
    /// Number of decorative wrapper divs around the record list.
    pub decoration: usize,
    /// Noise nodes (ads/navigation) interleaved every N records (0 = none).
    pub noise_every: usize,
}

impl Template {
    /// A simple product-listing template over the given columns.
    pub fn listing(columns: &[&str]) -> Template {
        Template {
            record_tag: "div".into(),
            record_class: "item".into(),
            fields: columns
                .iter()
                .enumerate()
                .map(|(i, c)| FieldSpec {
                    column: c.to_string(),
                    tag: "span".into(),
                    class: format!("f-{c}"),
                    prefix: if i == 0 {
                        String::new()
                    } else {
                        format!("{c}: ")
                    },
                })
                .collect(),
            decoration: 1,
            noise_every: 4,
        }
    }

    /// Render `table` into a page.
    pub fn render(&self, table: &Table) -> Doc {
        let mut d = Doc::new("html");
        let mut parent = d.add_child(d.root(), "body");
        d.add_leaf(parent, "h1", Some("site-title"), "All our offers");
        for i in 0..self.decoration {
            parent = d.add_child(parent, "div");
            d.set_class(parent, &format!("wrap{i}"));
        }
        for r in 0..table.num_rows() {
            if self.noise_every > 0 && r % self.noise_every == 0 {
                d.add_leaf(parent, "div", Some("ad"), "BUY NOW!!!");
            }
            let rec = d.add_child(parent, &self.record_tag);
            d.set_class(rec, &self.record_class);
            for f in &self.fields {
                let v = table
                    .get_named(r, &f.column)
                    .map(|v| v.render())
                    .unwrap_or_default();
                if v.is_empty() {
                    continue; // nulls render as absent nodes, like real sites
                }
                d.add_leaf(rec, &f.tag, Some(&f.class), &format!("{}{v}", f.prefix));
            }
        }
        d
    }

    /// The wrapper that extracts this template perfectly (the oracle wrapper;
    /// induction is judged against its output).
    pub fn oracle_wrapper(&self) -> Wrapper {
        Wrapper {
            record_selector: Selector::tag_class(&self.record_tag, &self.record_class),
            fields: self
                .fields
                .iter()
                .map(|f| FieldRule {
                    name: f.column.clone(),
                    selector: Selector::tag_class(&f.tag, &f.class),
                    strip_prefix: if f.prefix.is_empty() {
                        None
                    } else {
                        Some(f.prefix.clone())
                    },
                })
                .collect(),
        }
    }

    /// Render `table` as a sequence of pages of at most `page_size` records
    /// each — real listings paginate, and a wrapper must work unchanged on
    /// every page of the same template.
    pub fn render_paginated(&self, table: &Table, page_size: usize) -> Vec<Doc> {
        assert!(page_size > 0, "page size must be positive");
        let n = table.num_rows();
        let mut pages = Vec::with_capacity(n.div_ceil(page_size.max(1)));
        let mut start = 0usize;
        while start < n || (n == 0 && pages.is_empty()) {
            let end = (start + page_size).min(n);
            let idx: Vec<usize> = (start..end).collect();
            let chunk = table.take(&idx).expect("indices in range"); // lint-allow: idx drawn from 0..num_rows
            pages.push(self.render(&chunk));
            if end == n {
                break;
            }
            start = end;
        }
        pages
    }

    /// Produce a drifted variant: class renames, label changes, layout
    /// nesting changes — the template equivalent of a site redesign. The data
    /// semantics are unchanged; only presentation drifts.
    pub fn drift(&self, seed: u64) -> Template {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = self.clone();
        // Record class always changes on redesign (that is what kills wrappers).
        t.record_class = format!("{}-v{}", self.record_class, rng.gen_range(2..9));
        for f in &mut t.fields {
            if rng.gen::<f64>() < 0.7 {
                f.class = format!("{}-{}", f.class, rng.gen_range(2..9));
            }
            if rng.gen::<f64>() < 0.4 {
                f.prefix = if f.prefix.is_empty() {
                    String::new()
                } else {
                    format!("{}  ", f.prefix.trim_end_matches(": ").to_uppercase())
                };
            }
        }
        t.decoration = rng.gen_range(0..3);
        t.noise_every = rng.gen_range(0..6);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_table::Value;

    fn products() -> Table {
        Table::literal(
            &["name", "price", "brand"],
            vec![
                vec!["Widget".into(), Value::Float(9.99), "Acme".into()],
                vec!["Gadget".into(), Value::Float(19.5), "Bolt".into()],
                vec!["Flange".into(), Value::Null, "Acme".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn oracle_wrapper_roundtrips_template() {
        let t = Template::listing(&["name", "price", "brand"]);
        let page = t.render(&products());
        let ex = t.oracle_wrapper().extract(&page).unwrap();
        assert_eq!(ex.records_found, 3);
        assert_eq!(
            ex.table.get_named(0, "name").unwrap().as_str(),
            Some("Widget")
        );
        assert_eq!(ex.table.get_named(1, "price").unwrap(), &Value::Float(19.5));
        assert_eq!(
            ex.table.get_named(2, "brand").unwrap().as_str(),
            Some("Acme")
        );
        assert!(ex.table.get_named(2, "price").unwrap().is_null()); // absent node
    }

    #[test]
    fn render_is_deterministic() {
        let t = Template::listing(&["name", "price"]);
        assert_eq!(t.render(&products()), t.render(&products()));
    }

    #[test]
    fn drift_breaks_oracle_wrapper() {
        let t = Template::listing(&["name", "price"]);
        let drifted = t.drift(7);
        assert_ne!(t.record_class, drifted.record_class);
        let page = drifted.render(&products());
        let ex = t.oracle_wrapper().extract(&page).unwrap();
        assert_eq!(
            ex.records_found, 0,
            "old wrapper must fail on redesigned site"
        );
        // But the drifted oracle works.
        let ex2 = drifted.oracle_wrapper().extract(&page).unwrap();
        assert_eq!(ex2.records_found, 3);
    }

    #[test]
    fn drift_is_seeded() {
        let t = Template::listing(&["name", "price"]);
        assert_eq!(t.drift(3), t.drift(3));
        // Different seeds eventually produce different templates.
        assert!((4..12).any(|s| t.drift(s) != t.drift(3)));
    }

    #[test]
    fn pagination_roundtrips_through_extract_all() {
        let t = Template::listing(&["name", "price"]);
        let data = products();
        let pages = t.render_paginated(&data, 2);
        assert_eq!(pages.len(), 2); // 3 records, page size 2
        let ex = t.oracle_wrapper().extract_all(&pages).unwrap();
        assert_eq!(ex.records_found, 3);
        assert_eq!(
            ex.table.get_named(2, "name").unwrap().as_str(),
            Some("Flange")
        );
        // Single page and whole-table render agree.
        let single = t.oracle_wrapper().extract(&t.render(&data)).unwrap();
        assert_eq!(ex.table, single.table);
        // Fill rate aggregates across pages (one null price → 5/6).
        assert!((ex.fill_rate - single.fill_rate).abs() < 1e-12);
        // Empty table → one empty page, zero records.
        let empty_pages = t.render_paginated(&Table::empty(data.schema().clone()), 2);
        assert_eq!(empty_pages.len(), 1);
        let ex0 = t.oracle_wrapper().extract_all(&empty_pages).unwrap();
        assert_eq!(ex0.records_found, 0);
    }

    #[test]
    fn noise_nodes_do_not_pollute_extraction() {
        let mut t = Template::listing(&["name"]);
        t.noise_every = 1;
        let page = t.render(&products());
        let ex = t.oracle_wrapper().extract(&page).unwrap();
        assert_eq!(ex.records_found, 3);
        for i in 0..3 {
            let name = ex.table.get_named(i, "name").unwrap().as_str().unwrap();
            assert!(!name.contains("BUY"));
        }
    }
}
