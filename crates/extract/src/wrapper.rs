//! Selector-based wrappers: pages → tables.

use wrangler_table::infer::parse_cell;
use wrangler_table::{Schema, Table, Value};

use crate::doc::{Doc, NodeId};

/// A structural selector: tag and/or class must match (None = wildcard).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    /// Required tag, if any.
    pub tag: Option<String>,
    /// Required class, if any.
    pub class: Option<String>,
}

impl Selector {
    /// Match by class only (the common induced form).
    pub fn class(c: &str) -> Selector {
        Selector {
            tag: None,
            class: Some(c.to_string()),
        }
    }

    /// Match by tag and class.
    pub fn tag_class(t: &str, c: &str) -> Selector {
        Selector {
            tag: Some(t.to_string()),
            class: Some(c.to_string()),
        }
    }

    /// Does this selector match the node?
    pub fn matches(&self, doc: &Doc, id: NodeId) -> bool {
        let n = doc.node(id);
        if let Some(t) = &self.tag {
            if &n.tag != t {
                return false;
            }
        }
        if let Some(c) = &self.class {
            if n.class.as_deref() != Some(c.as_str()) {
                return false;
            }
        }
        true
    }

    /// All matching nodes in document order.
    pub fn select_all(&self, doc: &Doc) -> Vec<NodeId> {
        doc.preorder()
            .into_iter()
            .filter(|&id| self.matches(doc, id))
            .collect()
    }

    /// First matching descendant of `scope` in document order.
    pub fn select_within(&self, doc: &Doc, scope: NodeId) -> Option<NodeId> {
        doc.descendants(scope)
            .into_iter()
            .find(|&id| self.matches(doc, id))
    }
}

/// How to extract one field from a record subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldRule {
    /// Output column name.
    pub name: String,
    /// Selector relative to the record node.
    pub selector: Selector,
    /// Literal prefix to strip from the node text (e.g. `"Price: "`).
    pub strip_prefix: Option<String>,
}

/// A wrapper: record selector + field rules.
#[derive(Debug, Clone, PartialEq)]
pub struct Wrapper {
    /// Selector for record root nodes.
    pub record_selector: Selector,
    /// Field extraction rules.
    pub fields: Vec<FieldRule>,
}

/// Outcome of applying a wrapper.
#[derive(Debug, Clone)]
pub struct Extraction {
    /// The extracted table (typed via cell parsing).
    pub table: Table,
    /// Number of record nodes found.
    pub records_found: usize,
    /// Fraction of (record, field) pairs that produced a non-null value —
    /// the wrapper's own health signal used by drift detection.
    pub fill_rate: f64,
}

impl Wrapper {
    /// Apply the wrapper to a document.
    pub fn extract(&self, doc: &Doc) -> wrangler_table::Result<Extraction> {
        let records = self.record_selector.select_all(doc);
        // Nested matches (a record inside a record) indicate an over-general
        // selector; keep only outermost matches.
        let outer: Vec<NodeId> = records
            .iter()
            .copied()
            .filter(|&r| !records.iter().any(|&o| o != r && doc.is_ancestor(o, r)))
            .collect();
        let names: Vec<&str> = self.fields.iter().map(|f| f.name.as_str()).collect();
        let mut table = Table::empty(Schema::of_strs(&names));
        let mut filled = 0usize;
        for &rec in &outer {
            let mut row = Vec::with_capacity(self.fields.len());
            for f in &self.fields {
                let v = match f.selector.select_within(doc, rec) {
                    Some(node) => {
                        let raw = doc.text_of(node);
                        let raw = match &f.strip_prefix {
                            Some(p) => raw.strip_prefix(p.as_str()).unwrap_or(&raw).to_string(),
                            None => raw,
                        };
                        parse_cell(&raw)
                    }
                    None => Value::Null,
                };
                if !v.is_null() {
                    filled += 1;
                }
                row.push(v);
            }
            table.push_row(row)?;
        }
        table.reinfer_types();
        let cells = outer.len() * self.fields.len();
        Ok(Extraction {
            records_found: outer.len(),
            fill_rate: if cells == 0 {
                0.0
            } else {
                filled as f64 / cells as f64
            },
            table,
        })
    }
}

impl Wrapper {
    /// Apply the wrapper to every page of a paginated site and union the
    /// results. Record counts and fill rates aggregate across pages.
    pub fn extract_all(&self, pages: &[Doc]) -> wrangler_table::Result<Extraction> {
        let mut combined: Option<Extraction> = None;
        for doc in pages {
            let ex = self.extract(doc)?;
            combined = Some(match combined {
                None => ex,
                Some(mut acc) => {
                    let total_cells = (acc.records_found + ex.records_found) * self.fields.len();
                    let filled = (acc.fill_rate * (acc.records_found * self.fields.len()) as f64)
                        + (ex.fill_rate * (ex.records_found * self.fields.len()) as f64);
                    for row in ex.table.iter_rows() {
                        acc.table.push_row(row)?;
                    }
                    acc.records_found += ex.records_found;
                    acc.fill_rate = if total_cells == 0 {
                        0.0
                    } else {
                        filled / total_cells as f64
                    };
                    acc
                }
            });
        }
        let mut out = combined.unwrap_or(Extraction {
            table: Table::empty(Schema::of_strs(
                &self
                    .fields
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect::<Vec<_>>(),
            )),
            records_found: 0,
            fill_rate: 0.0,
        });
        out.table.reinfer_types();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Doc {
        let mut d = Doc::new("html");
        let body = d.add_child(d.root(), "body");
        d.add_leaf(body, "h1", Some("title"), "Our products");
        for (name, price) in [("Widget", "Price: 9.99"), ("Gadget", "Price: 19.50")] {
            let item = d.add_child(body, "div");
            d.set_class(item, "product");
            d.add_leaf(item, "span", Some("nm"), name);
            d.add_leaf(item, "span", Some("pr"), price);
        }
        d
    }

    fn wrapper() -> Wrapper {
        Wrapper {
            record_selector: Selector::class("product"),
            fields: vec![
                FieldRule {
                    name: "name".into(),
                    selector: Selector::class("nm"),
                    strip_prefix: None,
                },
                FieldRule {
                    name: "price".into(),
                    selector: Selector::class("pr"),
                    strip_prefix: Some("Price: ".into()),
                },
            ],
        }
    }

    #[test]
    fn extracts_typed_table() {
        let ex = wrapper().extract(&page()).unwrap();
        assert_eq!(ex.records_found, 2);
        assert_eq!(ex.fill_rate, 1.0);
        assert_eq!(
            ex.table.get_named(0, "name").unwrap().as_str(),
            Some("Widget")
        );
        assert_eq!(ex.table.get_named(1, "price").unwrap(), &Value::Float(19.5));
    }

    #[test]
    fn missing_fields_are_null_and_lower_fill_rate() {
        let mut d = page();
        // One more record without a price node.
        let body = 1; // body id in our construction
        let item = d.add_child(body, "div");
        d.set_class(item, "product");
        d.add_leaf(item, "span", Some("nm"), "Orphan");
        let ex = wrapper().extract(&d).unwrap();
        assert_eq!(ex.records_found, 3);
        assert!(ex.table.get_named(2, "price").unwrap().is_null());
        assert!((ex.fill_rate - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn broken_selector_yields_empty_extraction() {
        let mut w = wrapper();
        w.record_selector = Selector::class("card"); // drifted class
        let ex = w.extract(&page()).unwrap();
        assert_eq!(ex.records_found, 0);
        assert_eq!(ex.fill_rate, 0.0);
        assert_eq!(ex.table.num_rows(), 0);
    }

    #[test]
    fn nested_record_matches_deduplicate_to_outermost() {
        let mut d = Doc::new("html");
        let outer = d.add_child(d.root(), "div");
        d.set_class(outer, "product");
        let inner = d.add_child(outer, "div");
        d.set_class(inner, "product");
        d.add_leaf(inner, "span", Some("nm"), "X");
        let ex = wrapper().extract(&d).unwrap();
        assert_eq!(ex.records_found, 1);
    }

    #[test]
    fn selector_matching_semantics() {
        let d = page();
        let any_span = Selector {
            tag: Some("span".into()),
            class: None,
        };
        assert_eq!(any_span.select_all(&d).len(), 4); // 2 records × 2 spans; h1 is not a span
        let tagged = Selector::tag_class("span", "nm");
        assert_eq!(tagged.select_all(&d).len(), 2);
        let wrong_tag = Selector::tag_class("div", "nm");
        assert!(wrong_tag.select_all(&d).is_empty());
    }
}
