//! Wrappers for non-web source formats (the Variety axis of §1).
//!
//! * [`parse_kv_blocks`] — "key: value" record blocks separated by blank
//!   lines (the shape of product feeds, vCard-ish dumps, log exports);
//! * [`parse_jsonl`] — one flat JSON object per line (strings, numbers,
//!   booleans, null — no nesting), the ubiquitous API export shape.
//!
//! Both return typed [`Table`]s with the union of observed keys as columns,
//! so downstream matching sees the same substrate as web extraction.

use wrangler_table::infer::parse_cell;
use wrangler_table::{Schema, Table, TableError, Value};

/// Parse "key: value" blocks separated by blank lines.
pub fn parse_kv_blocks(text: &str) -> wrangler_table::Result<Table> {
    let mut records: Vec<Vec<(String, String)>> = Vec::new();
    let mut current: Vec<(String, String)> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            if !current.is_empty() {
                records.push(std::mem::take(&mut current));
            }
            continue;
        }
        if let Some((k, v)) = line.split_once(':') {
            current.push((k.trim().to_string(), v.trim().to_string()));
        }
        // Lines without a colon are ignored (comments, separators).
    }
    if !current.is_empty() {
        records.push(current);
    }
    table_from_records(records)
}

/// Parse one flat JSON object per non-empty line.
pub fn parse_jsonl(text: &str) -> wrangler_table::Result<Table> {
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let obj = parse_flat_object(line).map_err(|msg| TableError::Csv {
            line: lineno + 1,
            message: format!("jsonl: {msg}"),
        })?;
        records.push(obj);
    }
    table_from_records(records)
}

fn table_from_records(records: Vec<Vec<(String, String)>>) -> wrangler_table::Result<Table> {
    // Column order: first-seen order across records (record order preserved).
    let mut columns: Vec<String> = Vec::new();
    for r in &records {
        for (k, _) in r {
            if !columns.contains(k) {
                columns.push(k.clone());
            }
        }
    }
    let refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::empty(Schema::of_strs(&refs));
    for r in records {
        let row: Vec<Value> = columns
            .iter()
            .map(|c| {
                r.iter()
                    .find(|(k, _)| k == c)
                    .map(|(_, s)| parse_cell(s))
                    .unwrap_or(Value::Null)
            })
            .collect();
        table.push_row(row)?;
    }
    table.reinfer_types();
    Ok(table)
}

/// Minimal parser for a flat JSON object. Supports string (with \" \\ \n \t
/// escapes), number, `true`/`false`/`null`. Rejects nesting.
fn parse_flat_object(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut chars = s.chars().peekable();
    let mut out = Vec::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars>) {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
    }
    fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
        if chars.next() != Some('"') {
            return Err("expected string".into());
        }
        let mut out = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('/') => out.push('/'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(out);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err("expected ':'".into());
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => parse_string(&mut chars)?,
            Some('{') | Some('[') => return Err("nested values unsupported".into()),
            _ => {
                let mut tok = String::new();
                while matches!(chars.peek(), Some(c) if !c.is_whitespace() && *c != ',' && *c != '}')
                {
                    tok.push(chars.next().expect("peeked")); // lint-allow: peek() just returned Some
                }
                if tok == "null" {
                    String::new()
                } else if tok == "true" || tok == "false" || tok.parse::<f64>().is_ok() {
                    tok
                } else {
                    return Err(format!("bad literal `{tok}`"));
                }
            }
        };
        out.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing content".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_table::DataType;

    #[test]
    fn kv_blocks_parse_and_type() {
        let t =
            parse_kv_blocks("name: Widget\nprice: 9.99\n\nname: Gadget\nprice: 19.5\nstock: 4\n")
                .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().names(), vec!["name", "price", "stock"]);
        assert_eq!(t.get_named(0, "price").unwrap(), &Value::Float(9.99));
        assert!(t.get_named(0, "stock").unwrap().is_null());
        assert_eq!(t.get_named(1, "stock").unwrap(), &Value::Int(4));
    }

    #[test]
    fn kv_ignores_junk_lines() {
        let t = parse_kv_blocks("--- record ---\nname: X\n\n").unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.num_columns(), 1);
    }

    #[test]
    fn kv_value_containing_colon() {
        let t = parse_kv_blocks("url: https://x.example/a\n").unwrap();
        assert_eq!(
            t.get_named(0, "url").unwrap().as_str(),
            Some("https://x.example/a")
        );
    }

    #[test]
    fn jsonl_basic_types() {
        let t = parse_jsonl(
            "{\"sku\": \"a1\", \"price\": 9.5, \"live\": true, \"note\": null}\n{\"sku\": \"a2\", \"price\": 3}\n",
        )
        .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.get_named(0, "price").unwrap(), &Value::Float(9.5));
        assert_eq!(t.get_named(0, "live").unwrap(), &Value::Bool(true));
        assert!(t.get_named(0, "note").unwrap().is_null());
        assert!(t.get_named(1, "live").unwrap().is_null());
        assert_eq!(t.schema().field(1).unwrap().dtype, DataType::Float);
    }

    #[test]
    fn jsonl_escapes() {
        let t = parse_jsonl(r#"{"desc": "a \"big\" one\nreally"}"#).unwrap();
        assert_eq!(
            t.get_named(0, "desc").unwrap().as_str(),
            Some("a \"big\" one\nreally")
        );
    }

    #[test]
    fn jsonl_errors_carry_line_numbers() {
        let err = parse_jsonl("{\"a\": 1}\n{\"a\": [1,2]}\n").unwrap_err();
        match err {
            TableError::Csv { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("nested"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_jsonl("{\"a\" 1}").is_err());
        assert!(parse_jsonl("{\"a\": zorp}").is_err());
        assert!(parse_jsonl("{\"a\": 1} extra").is_err());
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(parse_kv_blocks("").unwrap().num_rows(), 0);
        assert_eq!(parse_jsonl("\n\n").unwrap().num_rows(), 0);
        let t = parse_jsonl("{}").unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.num_columns(), 0);
    }
}
