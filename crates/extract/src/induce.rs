//! Wrapper induction from annotated example records.
//!
//! Following the crowd-sourced wrapper-learning setting of Crescenzi et al.
//! \[12\]: an annotator supplies the *values* of a handful of records as they
//! appear on the page; induction finds the template structure that explains
//! them and generalizes it into a [`Wrapper`] that extracts *all* records.
//!
//! Algorithm:
//! 1. For each example, find the *minimal* node whose subtree contains a
//!    textual match for every annotated field — that node is the example's
//!    record root.
//! 2. The record selector is the (tag, class) shared by all example roots.
//! 3. Each field's rule is the (tag, class) of its matched node, consistent
//!    across examples, with the label prefix (text before the value) kept if
//!    it is identical in every example.

use std::collections::BTreeMap;

use crate::doc::{Doc, NodeId};
use crate::wrapper::{FieldRule, Selector, Wrapper};

/// One annotated example record: field name → the value text as rendered.
#[derive(Debug, Clone, Default)]
pub struct Annotation {
    /// Field values; fields absent on the page are simply not annotated.
    pub values: Vec<(String, String)>,
}

impl Annotation {
    /// Build from pairs.
    pub fn of(pairs: &[(&str, &str)]) -> Annotation {
        Annotation {
            values: pairs
                .iter()
                .map(|(f, v)| (f.to_string(), v.to_string()))
                .collect(),
        }
    }

    fn get(&self, field: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(f, _)| f == field)
            .map(|(_, v)| v.as_str())
    }
}

/// Why induction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InduceError {
    /// No annotations supplied.
    NoExamples,
    /// An example could not be located on the page at all.
    ExampleNotFound(usize),
    /// Example record roots disagree structurally.
    InconsistentRecords,
    /// A field's matched nodes disagree structurally across examples.
    InconsistentField(String),
}

impl std::fmt::Display for InduceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InduceError::NoExamples => write!(f, "no annotated examples"),
            InduceError::ExampleNotFound(i) => write!(f, "example {i} not found on page"),
            InduceError::InconsistentRecords => {
                write!(f, "example records are structurally inconsistent")
            }
            InduceError::InconsistentField(name) => {
                write!(f, "field `{name}` matched inconsistent structures")
            }
        }
    }
}

impl std::error::Error for InduceError {}

/// Does the node's own subtree text *end with* `value` (allowing a label
/// prefix)? Returns the prefix on success.
fn text_match(doc: &Doc, id: NodeId, value: &str) -> Option<String> {
    let t = doc.text_of(id);
    if t == value {
        return Some(String::new());
    }
    t.strip_suffix(value).map(|p| p.to_string())
}

/// Find the minimal nodes containing a match for every field of `ann`.
fn locate_record(doc: &Doc, ann: &Annotation) -> Option<NodeId> {
    // A node qualifies if every annotated value matches some descendant
    // (or itself). Collect qualifying nodes, keep the minimal ones.
    let mut qualifying: Vec<NodeId> = Vec::new();
    'node: for id in doc.preorder() {
        for (_, value) in &ann.values {
            let self_hit = text_match(doc, id, value).is_some();
            let desc_hit = doc
                .descendants(id)
                .into_iter()
                .any(|d| text_match(doc, d, value).is_some());
            if !self_hit && !desc_hit {
                continue 'node;
            }
        }
        qualifying.push(id);
    }
    // Minimal = no qualifying strict descendant.
    qualifying
        .iter()
        .copied()
        .find(|&q| !qualifying.iter().any(|&o| o != q && doc.is_ancestor(q, o)))
}

/// Induce a wrapper from a page and ≥ 1 annotated example records.
pub fn induce_wrapper(doc: &Doc, annotations: &[Annotation]) -> Result<Wrapper, InduceError> {
    if annotations.is_empty() {
        return Err(InduceError::NoExamples);
    }
    // 1. Locate each example's record root.
    let mut roots = Vec::with_capacity(annotations.len());
    for (i, ann) in annotations.iter().enumerate() {
        match locate_record(doc, ann) {
            Some(r) => roots.push(r),
            None => return Err(InduceError::ExampleNotFound(i)),
        }
    }
    // 2. Consistent record selector. A single-field example can locate the
    // field leaf itself; generalize to the parent when roots have no class
    // but parents agree.
    let sel_of = |id: NodeId| -> (String, Option<String>) {
        let n = doc.node(id);
        (n.tag.clone(), n.class.clone())
    };
    let mut record_sig = sel_of(roots[0]);
    if !roots.iter().all(|&r| sel_of(r) == record_sig) {
        // Try parents (handles examples that matched at slightly different depths).
        let parents: Vec<NodeId> = roots
            .iter()
            .map(|&r| doc.node(r).parent.ok_or(InduceError::InconsistentRecords))
            .collect::<Result<_, _>>()?;
        record_sig = sel_of(parents[0]);
        if !parents.iter().all(|&p| sel_of(p) == record_sig) {
            return Err(InduceError::InconsistentRecords);
        }
        roots = parents;
    }
    let record_selector = Selector {
        tag: Some(record_sig.0.clone()),
        class: record_sig.1.clone(),
    };

    // 3. Field rules: for each field annotated anywhere, match inside each
    // example's record subtree.
    let mut field_order: Vec<String> = Vec::new();
    for ann in annotations {
        for (f, _) in &ann.values {
            if !field_order.contains(f) {
                field_order.push(f.clone());
            }
        }
    }
    let mut fields = Vec::with_capacity(field_order.len());
    for fname in &field_order {
        // (tag, class) → (count, prefixes seen). Ordered map: `find` below
        // must pick the same winning signature on every run.
        let mut sigs: BTreeMap<(String, Option<String>), Vec<String>> = BTreeMap::new();
        let mut examples_with_field = 0;
        for (ann, &root) in annotations.iter().zip(&roots) {
            let Some(value) = ann.get(fname) else {
                continue;
            };
            examples_with_field += 1;
            let mut nodes = vec![root];
            nodes.extend(doc.descendants(root));
            // Prefer the deepest (most specific) matching node.
            let best = nodes
                .into_iter()
                .rev()
                .find_map(|n| text_match(doc, n, value).map(|p| (n, p)));
            if let Some((node, prefix)) = best {
                sigs.entry(sel_of(node)).or_default().push(prefix);
            }
        }
        // The winning signature must cover all examples that annotate the field.
        let Some((sig, prefixes)) = sigs
            .into_iter()
            .find(|(_, ps)| ps.len() == examples_with_field)
        else {
            return Err(InduceError::InconsistentField(fname.clone()));
        };
        let strip_prefix = if prefixes.iter().all(|p| p == &prefixes[0]) && !prefixes[0].is_empty()
        {
            Some(prefixes[0].clone())
        } else {
            None
        };
        fields.push(FieldRule {
            name: fname.clone(),
            selector: Selector {
                tag: Some(sig.0),
                class: sig.1,
            },
            strip_prefix,
        });
    }
    Ok(Wrapper {
        record_selector,
        fields,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::Template;
    use wrangler_table::{Table, Value};

    fn products(n: usize) -> Table {
        let rows = (0..n)
            .map(|i| {
                vec![
                    Value::from(format!("Product {i}")),
                    Value::Float(10.0 + i as f64),
                    Value::from(if i % 2 == 0 { "Acme" } else { "Bolt" }),
                ]
            })
            .collect();
        Table::literal(&["name", "price", "brand"], rows).unwrap()
    }

    fn ann(i: usize) -> Annotation {
        Annotation::of(&[
            ("name", &format!("Product {i}")),
            ("price", &format!("{}", 10.0 + i as f64)),
            ("brand", if i % 2 == 0 { "Acme" } else { "Bolt" }),
        ])
    }

    /// Annotation for templates that only render name + price.
    fn ann2(i: usize) -> Annotation {
        Annotation::of(&[
            ("name", &format!("Product {i}")),
            ("price", &format!("{}", 10.0 + i as f64)),
        ])
    }

    #[test]
    fn induced_wrapper_matches_oracle_output() {
        let t = Template::listing(&["name", "price", "brand"]);
        let page = t.render(&products(12));
        let w = induce_wrapper(&page, &[ann(2), ann(7)]).unwrap();
        let got = w.extract(&page).unwrap();
        let want = t.oracle_wrapper().extract(&page).unwrap();
        assert_eq!(got.records_found, 12);
        assert_eq!(got.table, want.table);
    }

    #[test]
    fn single_example_often_suffices() {
        let t = Template::listing(&["name", "price"]);
        let page = t.render(&products(5));
        let w = induce_wrapper(&page, &[ann2(3)]).unwrap();
        let got = w.extract(&page).unwrap();
        assert_eq!(got.records_found, 5);
        assert_eq!(
            got.table.get_named(0, "name").unwrap().as_str(),
            Some("Product 0")
        );
        assert_eq!(
            got.table.get_named(4, "price").unwrap(),
            &Value::Float(14.0)
        );
    }

    #[test]
    fn prefix_is_learned_and_stripped() {
        let t = Template::listing(&["name", "price"]);
        let page = t.render(&products(4));
        let w = induce_wrapper(&page, &[ann2(1), ann2(2)]).unwrap();
        let price_rule = w.fields.iter().find(|f| f.name == "price").unwrap();
        assert_eq!(price_rule.strip_prefix.as_deref(), Some("price: "));
    }

    #[test]
    fn unfindable_example_reports_index() {
        let t = Template::listing(&["name", "price"]);
        let page = t.render(&products(3));
        let bogus = Annotation::of(&[("name", "Nonexistent"), ("price", "1.23")]);
        assert_eq!(
            induce_wrapper(&page, &[ann2(0), bogus]).unwrap_err(),
            InduceError::ExampleNotFound(1)
        );
        assert_eq!(
            induce_wrapper(&page, &[]).unwrap_err(),
            InduceError::NoExamples
        );
    }

    #[test]
    fn works_on_drifted_template_with_fresh_annotations() {
        // Re-annotation after drift: induction does not care about classes,
        // only the annotator's values.
        let t = Template::listing(&["name", "price", "brand"]).drift(5);
        let page = t.render(&products(8));
        let w = induce_wrapper(&page, &[ann(1), ann(4)]).unwrap();
        let got = w.extract(&page).unwrap();
        assert_eq!(got.records_found, 8);
        let want = t.oracle_wrapper().extract(&page).unwrap();
        assert_eq!(got.table, want.table);
    }

    #[test]
    fn partial_annotations_extract_annotated_fields_only() {
        let t = Template::listing(&["name", "price", "brand"]);
        let page = t.render(&products(6));
        let partial = Annotation::of(&[("name", "Product 2"), ("price", "12")]);
        let w = induce_wrapper(&page, &[partial]).unwrap();
        assert_eq!(w.fields.len(), 2);
        let got = w.extract(&page).unwrap();
        assert_eq!(got.records_found, 6);
        assert!(got.table.schema().contains("price"));
        assert!(!got.table.schema().contains("brand"));
    }
}
