//! Drift detection and joint wrapper/data repair (WADaR, Ortona et al. \[29\]).
//!
//! When a site redesign breaks a wrapper, the classical fix is human
//! re-annotation. Example 3 argues the extraction process "can in this case
//! be 'informed' by existing integrated data ... to identify previously
//! unknown locations and correct erroneous ones". We implement that loop:
//!
//! 1. [`drift_detected`] — a wrapper whose record count or fill rate
//!    collapses has drifted;
//! 2. [`repair_wrapper`] — re-locate records on the new page using *stable*
//!    values from already-integrated reference data as automatic annotations,
//!    re-induce the stable field rules, and recover volatile numeric fields
//!    (prices change between visits, so their values cannot be matched) by a
//!    type-and-label heuristic within the relocated records.

use std::collections::BTreeMap;

use wrangler_table::infer::parse_cell;
use wrangler_table::{DataType, Table};

use crate::doc::{Doc, NodeId};
use crate::induce::{induce_wrapper, Annotation};
use crate::wrapper::{Extraction, FieldRule, Selector, Wrapper};

/// Has the wrapper drifted? True when it finds no records, or its fill rate
/// dropped below `min_fill`.
pub fn drift_detected(extraction: &Extraction, min_fill: f64) -> bool {
    extraction.records_found == 0 || extraction.fill_rate < min_fill
}

/// Configuration for informed repair.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Columns of the reference data whose values are stable across visits
    /// (names, ids, brands — not prices).
    pub stable_columns: Vec<String>,
    /// Maximum reference rows to try as automatic annotations.
    pub max_annotations: usize,
    /// Minimum automatic annotations that must locate a record for the
    /// repair to be trusted.
    pub min_located: usize,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            stable_columns: vec!["name".into(), "sku".into(), "brand".into()],
            max_annotations: 8,
            min_located: 2,
        }
    }
}

/// Outcome of a repair attempt.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The repaired wrapper.
    pub wrapper: Wrapper,
    /// How many automatic annotations located records.
    pub annotations_used: usize,
    /// Field names recovered by value matching (stable columns).
    pub stable_fields: Vec<String>,
    /// Field names recovered by the numeric type/label heuristic.
    pub heuristic_fields: Vec<String>,
}

/// Attempt to repair `old` against the redesigned `doc`, using
/// already-integrated `reference` data (rows of *this source's* entities).
///
/// Returns `None` when too few reference rows can be located on the page —
/// e.g. the page now shows a disjoint product set — in which case the caller
/// must fall back to human annotation.
pub fn repair_wrapper(
    old: &Wrapper,
    doc: &Doc,
    reference: &Table,
    cfg: &RepairConfig,
) -> Option<RepairOutcome> {
    // 1. Build automatic annotations from stable reference values.
    let stable: Vec<&str> = cfg
        .stable_columns
        .iter()
        .map(String::as_str)
        .filter(|c| reference.schema().contains(c))
        .collect();
    if stable.is_empty() {
        return None;
    }
    let mut annotations = Vec::new();
    for row in 0..reference.num_rows() {
        if annotations.len() >= cfg.max_annotations {
            break;
        }
        let mut pairs = Vec::new();
        for &c in &stable {
            let v = reference.get_named(row, c).ok()?;
            if !v.is_null() {
                pairs.push((c.to_string(), v.render()));
            }
        }
        if pairs.len() >= stable.len().min(2) {
            annotations.push(Annotation { values: pairs });
        }
    }
    // 2. Keep only annotations that induction can locate; induce stable rules.
    let mut located = Vec::new();
    for ann in annotations {
        if induce_wrapper(doc, std::slice::from_ref(&ann)).is_ok() {
            located.push(ann);
        }
        if located.len() >= cfg.max_annotations {
            break;
        }
    }
    if located.len() < cfg.min_located {
        return None;
    }
    let mut wrapper = induce_wrapper(doc, &located).ok()?;
    let stable_fields: Vec<String> = wrapper.fields.iter().map(|f| f.name.clone()).collect();

    // 3. Recover volatile fields of the old wrapper (typically numeric) by
    // type/label heuristics inside the relocated records.
    let records = wrapper.record_selector.select_all(doc);
    let mut heuristic_fields = Vec::new();
    for f in &old.fields {
        if wrapper.fields.iter().any(|g| g.name == f.name) {
            continue;
        }
        if let Some(rule) = recover_numeric_field(doc, &records, &f.name) {
            heuristic_fields.push(f.name.clone());
            wrapper.fields.push(rule);
        }
    }
    Some(RepairOutcome {
        annotations_used: located.len(),
        wrapper,
        stable_fields,
        heuristic_fields,
    })
}

/// Find a (tag, class, prefix) signature inside the record subtrees whose
/// value suffix parses as a number, preferring signatures whose label
/// mentions the field name.
fn recover_numeric_field(doc: &Doc, records: &[NodeId], field: &str) -> Option<FieldRule> {
    /// Split "PRICE  19.5" into ("PRICE  ", numeric suffix).
    fn split_numeric(text: &str) -> Option<(String, String)> {
        let start = text.find(|c: char| c.is_ascii_digit() || c == '-')?;
        let (prefix, value) = text.split_at(start);
        let parsed = parse_cell(value);
        if matches!(parsed.dtype(), DataType::Int | DataType::Float) {
            Some((prefix.to_string(), value.to_string()))
        } else {
            None
        }
    }

    // signature → (hits, label-mentions-field hits, first prefix). Ordered
    // map so `max_by_key` ties resolve the same way on every run.
    let mut sigs: BTreeMap<(String, Option<String>), (usize, usize, String)> = BTreeMap::new();
    for &rec in records {
        for n in doc.descendants(rec) {
            let node = doc.node(n);
            if node.text.is_none() {
                continue;
            }
            let text = doc.text_of(n);
            if let Some((prefix, _)) = split_numeric(&text) {
                let entry = sigs
                    .entry((node.tag.clone(), node.class.clone()))
                    .or_insert((0, 0, prefix.clone()));
                entry.0 += 1;
                let label = prefix.to_lowercase();
                let fl = field.to_lowercase();
                if label.contains(&fl)
                    || fl.contains(label.trim_matches([' ', ':'])) && !label.trim().is_empty()
                {
                    entry.1 += 1;
                }
            }
        }
    }
    // Prefer labeled signatures, then coverage.
    let ((tag, class), (hits, _, prefix)) = sigs
        .into_iter()
        .max_by_key(|(_, (hits, labeled, _))| (*labeled, *hits))
        .filter(|(_, (hits, _, _))| *hits >= records.len().div_ceil(2))?;
    let _ = hits;
    Some(FieldRule {
        name: field.to_string(),
        selector: Selector {
            tag: Some(tag),
            class,
        },
        strip_prefix: if prefix.is_empty() {
            None
        } else {
            Some(prefix)
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::Template;
    use wrangler_table::Value;

    fn catalog(n: usize, price_bump: f64) -> Table {
        let rows = (0..n)
            .map(|i| {
                vec![
                    Value::from(format!("Product {i}")),
                    Value::Float(10.0 + i as f64 + price_bump),
                    Value::from(if i % 2 == 0 { "Acme" } else { "Bolt" }),
                ]
            })
            .collect();
        Table::literal(&["name", "price", "brand"], rows).unwrap()
    }

    #[test]
    fn drift_detection_thresholds() {
        let t = Template::listing(&["name", "price"]);
        let page = t.render(&catalog(5, 0.0));
        let good = t.oracle_wrapper().extract(&page).unwrap();
        assert!(!drift_detected(&good, 0.5));
        let drifted_page = t.drift(3).render(&catalog(5, 0.0));
        let broken = t.oracle_wrapper().extract(&drifted_page).unwrap();
        assert!(drift_detected(&broken, 0.5));
    }

    #[test]
    fn informed_repair_restores_extraction_without_human_annotations() {
        let t = Template::listing(&["name", "price", "brand"]);
        let old_wrapper = t.oracle_wrapper();
        // The site redesigns AND prices move; integrated data has old prices.
        let redesigned = t.drift(11);
        let new_page = redesigned.render(&catalog(10, 3.7));
        let reference = catalog(10, 0.0); // what we integrated last time

        let broken = old_wrapper.extract(&new_page).unwrap();
        assert!(drift_detected(&broken, 0.5));

        let cfg = RepairConfig {
            stable_columns: vec!["name".into(), "brand".into()],
            ..RepairConfig::default()
        };
        let outcome = repair_wrapper(&old_wrapper, &new_page, &reference, &cfg).unwrap();
        assert!(outcome.annotations_used >= 2);
        assert!(outcome.stable_fields.contains(&"name".to_string()));
        assert!(outcome.heuristic_fields.contains(&"price".to_string()));

        let fixed = outcome.wrapper.extract(&new_page).unwrap();
        assert_eq!(fixed.records_found, 10);
        // Extracted prices are the NEW site prices, not the stale reference.
        let oracle = redesigned.oracle_wrapper().extract(&new_page).unwrap();
        for i in 0..10 {
            assert_eq!(
                fixed.table.get_named(i, "price").unwrap(),
                oracle.table.get_named(i, "price").unwrap()
            );
            assert_eq!(
                fixed.table.get_named(i, "name").unwrap(),
                oracle.table.get_named(i, "name").unwrap()
            );
        }
    }

    #[test]
    fn repair_fails_gracefully_on_disjoint_content() {
        let t = Template::listing(&["name", "price"]);
        let old_wrapper = t.oracle_wrapper();
        let new_page = t.drift(2).render(&catalog(5, 0.0));
        // Reference about completely different products.
        let rows = (0..5)
            .map(|i| vec![Value::from(format!("Zorb {i}")), Value::Float(1.0)])
            .collect();
        let alien = Table::literal(&["name", "price"], rows).unwrap();
        let cfg = RepairConfig {
            stable_columns: vec!["name".into()],
            ..RepairConfig::default()
        };
        assert!(repair_wrapper(&old_wrapper, &new_page, &alien, &cfg).is_none());
    }

    #[test]
    fn repair_without_stable_columns_is_none() {
        let t = Template::listing(&["name", "price"]);
        let page = t.render(&catalog(3, 0.0));
        let cfg = RepairConfig {
            stable_columns: vec!["ghost".into()],
            ..RepairConfig::default()
        };
        assert!(repair_wrapper(&t.oracle_wrapper(), &page, &catalog(3, 0.0), &cfg).is_none());
    }
}
