//! An arena-based miniature DOM.
//!
//! Nodes have a tag, an optional class, optional text, and children. The
//! arena keeps parent links, which induction needs for lowest-common-ancestor
//! computations. This is deliberately *not* HTML — no attributes beyond
//! class, no namespaces — because wrapper induction logic only depends on the
//! tree/template structure, not on markup incidentals.

/// Index of a node within its [`Doc`] arena.
pub type NodeId = usize;

/// One node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Element tag, e.g. `div`.
    pub tag: String,
    /// Optional class attribute.
    pub class: Option<String>,
    /// Optional text content (leaf text).
    pub text: Option<String>,
    /// Parent node (None for the root).
    pub parent: Option<NodeId>,
    /// Children, in document order.
    pub children: Vec<NodeId>,
}

/// A document: an arena of nodes with node 0 as the root.
#[derive(Debug, Clone, PartialEq)]
pub struct Doc {
    nodes: Vec<Node>,
}

impl Doc {
    /// New document with a root of the given tag.
    pub fn new(root_tag: &str) -> Doc {
        Doc {
            nodes: vec![Node {
                tag: root_tag.to_string(),
                class: None,
                text: None,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// The root node id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document has only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Append a child element under `parent`; returns the new node id.
    pub fn add_child(&mut self, parent: NodeId, tag: &str) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            tag: tag.to_string(),
            class: None,
            text: None,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Append a child with class and text in one call.
    pub fn add_leaf(
        &mut self,
        parent: NodeId,
        tag: &str,
        class: Option<&str>,
        text: &str,
    ) -> NodeId {
        let id = self.add_child(parent, tag);
        if let Some(c) = class {
            self.set_class(id, c);
        }
        self.set_text(id, text);
        id
    }

    /// Set a node's class.
    pub fn set_class(&mut self, id: NodeId, class: &str) {
        self.nodes[id].class = Some(class.to_string());
    }

    /// Set a node's text.
    pub fn set_text(&mut self, id: NodeId, text: &str) {
        self.nodes[id].text = Some(text.to_string());
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Iterate all node ids in pre-order (document order).
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            out.push(id);
            // Push children reversed so they pop in order.
            for &c in self.nodes[id].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All descendants of `id` (excluding `id`), in document order.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.nodes[id].children.iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.nodes[n].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// True if `anc` is an ancestor of `id` (or equal).
    pub fn is_ancestor(&self, anc: NodeId, id: NodeId) -> bool {
        let mut cur = Some(id);
        while let Some(n) = cur {
            if n == anc {
                return true;
            }
            cur = self.nodes[n].parent;
        }
        false
    }

    /// Chain of ancestors from `id` up to the root (inclusive of `id`).
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            out.push(n);
            cur = self.nodes[n].parent;
        }
        out
    }

    /// Lowest common ancestor of a non-empty set of nodes.
    pub fn lca(&self, ids: &[NodeId]) -> NodeId {
        assert!(!ids.is_empty());
        let mut common = self.ancestors(ids[0]);
        for &id in &ids[1..] {
            let anc = self.ancestors(id);
            common.retain(|n| anc.contains(n));
        }
        *common.first().expect("root is always common") // lint-allow: the root is an ancestor of every node
    }

    /// Concatenated text of a node's subtree (own text first).
    pub fn text_of(&self, id: NodeId) -> String {
        let mut out = String::new();
        if let Some(t) = &self.nodes[id].text {
            out.push_str(t);
        }
        for &c in &self.nodes[id].children {
            let t = self.text_of(c);
            if !t.is_empty() {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&t);
            }
        }
        out
    }

    /// Render as indented pseudo-HTML (debugging aid).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(self.root(), 0, &mut out);
        out
    }

    fn render_node(&self, id: NodeId, depth: usize, out: &mut String) {
        let n = &self.nodes[id];
        out.push_str(&"  ".repeat(depth));
        out.push('<');
        out.push_str(&n.tag);
        if let Some(c) = &n.class {
            out.push_str(&format!(" class=\"{c}\""));
        }
        out.push('>');
        if let Some(t) = &n.text {
            out.push_str(t);
        }
        out.push('\n');
        for &c in &n.children {
            self.render_node(c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Doc, NodeId, NodeId, NodeId) {
        let mut d = Doc::new("html");
        let body = d.add_child(d.root(), "body");
        let item = d.add_child(body, "div");
        d.set_class(item, "item");
        let name = d.add_leaf(item, "span", Some("name"), "Widget");
        let price = d.add_leaf(item, "span", Some("price"), "9.99");
        (d, item, name, price)
    }

    #[test]
    fn construction_and_access() {
        let (d, item, name, _) = sample();
        assert_eq!(d.node(name).text.as_deref(), Some("Widget"));
        assert_eq!(d.node(item).class.as_deref(), Some("item"));
        assert_eq!(d.node(name).parent, Some(item));
        assert_eq!(d.node(item).children.len(), 2);
    }

    #[test]
    fn preorder_visits_all_in_document_order() {
        let (d, ..) = sample();
        let order = d.preorder();
        assert_eq!(order.len(), d.len());
        assert_eq!(order[0], d.root());
        // children come after parents
        for &id in &order {
            if let Some(p) = d.node(id).parent {
                assert!(order.iter().position(|&x| x == p) < order.iter().position(|&x| x == id));
            }
        }
    }

    #[test]
    fn descendants_and_ancestry() {
        let (d, item, name, price) = sample();
        let desc = d.descendants(item);
        assert_eq!(desc, vec![name, price]);
        assert!(d.is_ancestor(d.root(), price));
        assert!(d.is_ancestor(item, item));
        assert!(!d.is_ancestor(name, item));
    }

    #[test]
    fn lca_computation() {
        let (d, item, name, price) = sample();
        assert_eq!(d.lca(&[name, price]), item);
        assert_eq!(d.lca(&[name]), name);
        assert_eq!(d.lca(&[name, d.root()]), d.root());
    }

    #[test]
    fn subtree_text_concatenation() {
        let (d, item, ..) = sample();
        assert_eq!(d.text_of(item), "Widget 9.99");
    }

    #[test]
    fn render_shows_structure() {
        let (d, ..) = sample();
        let html = d.render();
        assert!(html.contains("<span class=\"price\">9.99"));
    }
}
