//! `wrangler-extract` — the Data Extraction component of Figure 1.
//!
//! §4.1: "Data Extraction must make effective use of all the available data.
//! Consider web data extraction, in which wrappers are generated that enable
//! deep web resources to be treated as structured data sets. ... existing
//! knowledge bases and intermediate products of data cleaning and integration
//! processes can be used to improve the quality of wrapper induction."
//!
//! We cannot ship a browser; per DESIGN.md the web is substituted by a
//! miniature semi-structured document model that preserves what wrapper
//! induction actually operates on — tree-structured, template-generated
//! pages:
//!
//! * [`doc`] — an arena-based mini-DOM with tags, classes and text;
//! * [`template`] — deterministic page generation from tables, plus seeded
//!   **template drift** (the Velocity of site redesigns that breaks
//!   production wrappers);
//! * [`wrapper`] — selector-based extraction rules turning pages back into
//!   [`wrangler_table::Table`]s;
//! * [`induce`] — wrapper induction from a handful of annotated example
//!   records (Crescenzi et al. \[12\]);
//! * [`repair`] — drift detection and **joint wrapper/data repair** (WADaR,
//!   Ortona et al. \[29\]): re-induce the wrapper using already-integrated
//!   data as automatic annotations — no human re-annotation;
//! * [`formats`] — wrappers for non-web source shapes (key-value blocks and
//!   a flat JSON-lines dialect), covering the Variety axis.

pub mod doc;
pub mod formats;
pub mod induce;
pub mod repair;
pub mod template;
pub mod wrapper;

pub use doc::{Doc, NodeId};
pub use induce::{induce_wrapper, Annotation};
pub use template::Template;
pub use wrapper::{FieldRule, Selector, Wrapper};
