//! Property tests for extraction: induction consistency (an induced wrapper
//! reproduces its training examples and generalizes to the whole page) and
//! format-wrapper round-trips.

use proptest::prelude::*;
use wrangler_extract::formats::parse_kv_blocks;
use wrangler_extract::induce::{induce_wrapper, Annotation};
use wrangler_extract::Template;
use wrangler_table::{Table, Value};

fn arb_catalog() -> impl Strategy<Value = Table> {
    // Distinct names: "<word> <index>" so annotations are unambiguous.
    prop::collection::vec(("[a-z]{3,8}", 1.0f64..5000.0), 2..25).prop_map(|rows| {
        let rows = rows
            .into_iter()
            .enumerate()
            .map(|(i, (w, p))| {
                vec![
                    Value::from(format!("{w} {i}")),
                    Value::Float((p * 100.0).round() / 100.0),
                ]
            })
            .collect();
        Table::literal(&["name", "price"], rows).expect("aligned")
    })
}

fn annotation(t: &Table, i: usize) -> Annotation {
    Annotation::of(&[
        ("name", &t.get_named(i, "name").unwrap().render()),
        ("price", &t.get_named(i, "price").unwrap().render()),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn induced_wrapper_reproduces_all_records(t in arb_catalog(), drift_seed in 0u64..50) {
        let template = Template::listing(&["name", "price"]).drift(drift_seed);
        let page = template.render(&t);
        let k = 2.min(t.num_rows());
        let anns: Vec<Annotation> = (0..k).map(|j| annotation(&t, j * (t.num_rows() - 1).max(1) / k.max(1))).collect();
        let w = induce_wrapper(&page, &anns).expect("induction succeeds on template pages");
        let got = w.extract(&page).expect("extract");
        prop_assert_eq!(got.records_found, t.num_rows());
        // Training examples are reproduced exactly.
        for ann in &anns {
            for (field, value) in &ann.values {
                let col = got.table.column_named(field).unwrap();
                prop_assert!(
                    col.iter().any(|v| v.render() == *value),
                    "training value {value} missing from extraction"
                );
            }
        }
        // Every extracted name matches the catalog (order preserved).
        for i in 0..t.num_rows() {
            prop_assert_eq!(
                got.table.get_named(i, "name").unwrap().render(),
                t.get_named(i, "name").unwrap().render()
            );
        }
    }

    #[test]
    fn kv_roundtrip(rows in prop::collection::vec(("[a-z]{2,6}", "[a-zA-Z0-9 ]{0,10}"), 1..12)) {
        // Build a KV document: one block per row with key `k`, plus a name.
        let mut doc = String::new();
        for (i, (k, v)) in rows.iter().enumerate() {
            doc.push_str(&format!("_rec_: r{i}\n{k}: {v}\n\n"));
        }
        let t = parse_kv_blocks(&doc).unwrap();
        prop_assert_eq!(t.num_rows(), rows.len());
        prop_assert!(t.schema().contains("_rec_"));
        for (i, (k, v)) in rows.iter().enumerate() {
            let got = t.get_named(i, k).unwrap();
            let trimmed = v.trim();
            if trimmed.is_empty() {
                // Empty values parse as Null.
                continue;
            }
            prop_assert_eq!(got.render(), wrangler_table::infer::parse_cell(trimmed).render());
        }
    }
}
