//! Source selection under a user context.
//!
//! Two strategies from the paper's related work:
//!
//! * **Greedy utility selection** — rank sources by the multi-criteria
//!   utility of their quality vectors under the user context, take the best
//!   within budget / source cap. This is the baseline "use the best k".
//! * **Marginal-gain selection** (Dong, Saha, Srivastava, "Less is more"
//!   \[16\]) — integrate sources one by one, each time adding the source with
//!   the highest *marginal* gain in integrated quality net of cost, and stop
//!   as soon as the best marginal gain is non-positive. Because low-accuracy
//!   sources can *hurt* fused accuracy, the optimum is usually a strict
//!   subset of the available sources (experiment E8).

use wrangler_context::{Criterion, QualityVector, UserContext};

use crate::registry::SourceId;

/// Estimated per-source properties used by selection (estimates, not truths:
/// produced by profiling, master-data coverage, and feedback-updated trust).
#[derive(Debug, Clone, Copy)]
pub struct SourceEstimate {
    /// Which source.
    pub id: SourceId,
    /// Estimated fraction of the wanted entities the source covers.
    pub coverage: f64,
    /// Estimated fraction of its values that are correct.
    pub accuracy: f64,
    /// Age of the source's data in ticks.
    pub age: u64,
    /// Cost of integrating the source.
    pub cost: f64,
    /// Relevance to the data context in \[0, 1\].
    pub relevance: f64,
    /// Operational availability in \[0, 1\]: 1 for a source believed healthy,
    /// 0 for one currently quarantined by the acquisition layer's circuit
    /// breaker, in between for sources on probation (half-open breaker).
    /// Selection discounts expected coverage by it — an excellent source that
    /// cannot be reached contributes nothing.
    pub availability: f64,
}

impl SourceEstimate {
    /// Coverage discounted by the probability the source answers at all.
    fn effective_coverage(&self) -> f64 {
        (self.coverage * self.availability).clamp(0.0, 1.0)
    }
}

/// Quality vector of a *single* source estimate under the user context.
pub fn estimate_quality(est: &SourceEstimate, user: &UserContext) -> QualityVector {
    QualityVector::neutral()
        .with(Criterion::Completeness, est.effective_coverage())
        .with(Criterion::Accuracy, est.accuracy)
        .with(Criterion::Timeliness, user.timeliness_of_age(est.age))
        .with(Criterion::Consistency, est.accuracy) // proxy: error-free data is self-consistent
        .with(Criterion::Relevance, est.relevance)
        .with(Criterion::Cost, cost_score(est.cost, user))
}

fn cost_score(cost: f64, user: &UserContext) -> f64 {
    if user.budget.is_infinite() || user.budget <= 0.0 {
        1.0
    } else {
        (1.0 - cost / user.budget).clamp(0.0, 1.0)
    }
}

/// Greedy per-source utility selection: rank by utility, keep the prefix that
/// fits the budget and the source cap. Irrelevant sources (relevance 0) and
/// unreachable sources (availability 0, i.e. quarantined) are excluded
/// outright.
pub fn select_greedy_utility(estimates: &[SourceEstimate], user: &UserContext) -> Vec<SourceId> {
    let mut scored: Vec<(f64, &SourceEstimate)> = estimates
        .iter()
        .filter(|e| e.relevance > 0.0 && e.availability > 0.0)
        .map(|e| (user.utility(&estimate_quality(e, user)), e))
        .collect();
    // total_cmp keeps the rank total under NaN utilities; ties break on the
    // stable source id so selection is order-independent.
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.id.cmp(&b.1.id)));
    let cap = user.max_sources.unwrap_or(usize::MAX);
    let mut spent = 0.0;
    let mut out = Vec::new();
    for (_, e) in scored {
        if out.len() >= cap {
            break;
        }
        if spent + e.cost > user.budget {
            continue;
        }
        spent += e.cost;
        out.push(e.id);
    }
    out
}

/// Quality of an *integrated set* of sources, under independence assumptions:
///
/// * completeness: probabilistic union `1 − Π(1 − coverage_i)`;
/// * accuracy: coverage-weighted mean accuracy (each source contributes
///   values in proportion to its coverage) — adding an inaccurate source
///   therefore *dilutes* accuracy, which is what makes "less is more" true;
/// * timeliness: coverage-weighted mean;
/// * cost criterion: remaining-budget fraction.
pub fn set_quality(set: &[&SourceEstimate], user: &UserContext) -> QualityVector {
    if set.is_empty() {
        return QualityVector::uniform(0.0).with(Criterion::Cost, 1.0);
    }
    let mut miss = 1.0;
    let mut wacc = 0.0;
    let mut wtim = 0.0;
    let mut wrel = 0.0;
    let mut wsum = 0.0;
    let mut cost = 0.0;
    for e in set {
        miss *= 1.0 - e.effective_coverage();
        let w = e.effective_coverage().max(1e-9);
        wacc += w * e.accuracy;
        wtim += w * user.timeliness_of_age(e.age);
        wrel += w * e.relevance;
        wsum += w;
        cost += e.cost;
    }
    QualityVector::neutral()
        .with(Criterion::Completeness, 1.0 - miss)
        .with(Criterion::Accuracy, wacc / wsum)
        .with(Criterion::Timeliness, wtim / wsum)
        .with(Criterion::Consistency, wacc / wsum)
        .with(Criterion::Relevance, wrel / wsum)
        .with(Criterion::Cost, cost_score(cost, user))
}

/// One step of the marginal-gain trace.
#[derive(Debug, Clone, Copy)]
pub struct GainStep {
    /// Source added at this step.
    pub id: SourceId,
    /// Utility of the integrated set after adding it.
    pub utility: f64,
    /// Marginal gain over the previous step.
    pub gain: f64,
    /// Cumulative cost.
    pub cost: f64,
}

/// Marginal-gain selection \[16\]: greedily add the source with the highest
/// positive marginal utility; stop when no candidate improves utility or the
/// budget/cap would be exceeded. Returns the selected ids and the full trace
/// (useful for plotting the E8 curve — the trace *includes* the stopping
/// point but not rejected candidates).
pub fn select_marginal_gain(
    estimates: &[SourceEstimate],
    user: &UserContext,
) -> (Vec<SourceId>, Vec<GainStep>) {
    let mut remaining: Vec<&SourceEstimate> = estimates.iter().collect();
    let mut chosen: Vec<&SourceEstimate> = Vec::new();
    let mut trace = Vec::new();
    let mut current = user.utility(&set_quality(&chosen, user));
    let cap = user.max_sources.unwrap_or(usize::MAX);
    let mut spent = 0.0;
    while chosen.len() < cap && !remaining.is_empty() {
        let mut best: Option<(usize, f64)> = None;
        for (i, cand) in remaining.iter().enumerate() {
            if spent + cand.cost > user.budget {
                continue;
            }
            let mut tentative = chosen.clone();
            tentative.push(cand);
            let u = user.utility(&set_quality(&tentative, user));
            if best.is_none_or(|(_, bu)| u > bu) {
                best = Some((i, u));
            }
        }
        match best {
            Some((i, u)) if u > current => {
                let cand = remaining.remove(i);
                spent += cand.cost;
                chosen.push(cand);
                trace.push(GainStep {
                    id: cand.id,
                    utility: u,
                    gain: u - current,
                    cost: spent,
                });
                current = u;
            }
            _ => break,
        }
    }
    (chosen.iter().map(|e| e.id).collect(), trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(id: u32, coverage: f64, accuracy: f64, cost: f64) -> SourceEstimate {
        SourceEstimate {
            id: SourceId(id),
            coverage,
            accuracy,
            age: 0,
            cost,
            relevance: 1.0,
            availability: 1.0,
        }
    }

    #[test]
    fn greedy_respects_budget_and_cap() {
        let ests = vec![
            est(0, 0.9, 0.9, 5.0),
            est(1, 0.8, 0.8, 5.0),
            est(2, 0.7, 0.7, 5.0),
        ];
        let user = UserContext::balanced("t").with_budget(10.0);
        let sel = select_greedy_utility(&ests, &user);
        assert_eq!(sel, vec![SourceId(0), SourceId(1)]);
        let user = UserContext::balanced("t").with_max_sources(1);
        let sel = select_greedy_utility(&ests, &user);
        assert_eq!(sel, vec![SourceId(0)]);
    }

    #[test]
    fn greedy_excludes_irrelevant() {
        let mut e = est(0, 0.9, 0.9, 1.0);
        e.relevance = 0.0;
        let sel = select_greedy_utility(&[e, est(1, 0.5, 0.5, 1.0)], &UserContext::balanced("t"));
        assert_eq!(sel, vec![SourceId(1)]);
    }

    #[test]
    fn greedy_excludes_quarantined() {
        let mut e = est(0, 0.9, 0.9, 1.0);
        e.availability = 0.0;
        let sel = select_greedy_utility(&[e, est(1, 0.5, 0.5, 1.0)], &UserContext::balanced("t"));
        assert_eq!(sel, vec![SourceId(1)]);
    }

    #[test]
    fn availability_discounts_set_coverage() {
        let healthy = est(0, 0.8, 0.9, 0.0);
        let mut shaky = est(0, 0.8, 0.9, 0.0);
        shaky.availability = 0.5;
        let user = UserContext::balanced("t");
        let q_healthy = set_quality(&[&healthy], &user);
        let q_shaky = set_quality(&[&shaky], &user);
        assert!(
            q_shaky.get(Criterion::Completeness) < q_healthy.get(Criterion::Completeness),
            "a flaky source promises less coverage"
        );
    }

    #[test]
    fn set_quality_union_coverage() {
        let a = est(0, 0.5, 1.0, 0.0);
        let b = est(1, 0.5, 1.0, 0.0);
        let user = UserContext::balanced("t");
        let q = set_quality(&[&a, &b], &user);
        assert!((q.get(Criterion::Completeness) - 0.75).abs() < 1e-12);
        assert!((q.get(Criterion::Accuracy) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inaccurate_sources_dilute_accuracy() {
        let good = est(0, 0.6, 0.95, 0.0);
        let bad = est(1, 0.6, 0.4, 0.0);
        let user = UserContext::balanced("t");
        let q1 = set_quality(&[&good], &user);
        let q2 = set_quality(&[&good, &bad], &user);
        assert!(q2.get(Criterion::Accuracy) < q1.get(Criterion::Accuracy));
        assert!(q2.get(Criterion::Completeness) > q1.get(Criterion::Completeness));
    }

    #[test]
    fn less_is_more_stops_before_bad_sources() {
        // Three good sources, then a tail of junk. Accuracy-weighted context.
        let mut ests = vec![
            est(0, 0.7, 0.95, 0.1),
            est(1, 0.6, 0.93, 0.1),
            est(2, 0.5, 0.9, 0.1),
        ];
        for i in 3..20 {
            ests.push(est(i, 0.3, 0.3, 0.1));
        }
        let user = UserContext::accuracy_first();
        let (sel, trace) = select_marginal_gain(&ests, &user);
        assert!(!sel.is_empty());
        assert!(
            sel.len() < ests.len(),
            "selected {} of {}",
            sel.len(),
            ests.len()
        );
        assert!(sel.iter().all(|s| s.0 < 3), "only good sources: {sel:?}");
        // Trace gains are positive and utilities non-decreasing.
        for w in trace.windows(2) {
            assert!(w[1].utility >= w[0].utility);
        }
        assert!(trace.iter().all(|s| s.gain > 0.0));
    }

    #[test]
    fn marginal_gain_respects_budget() {
        let ests = vec![est(0, 0.9, 0.95, 6.0), est(1, 0.9, 0.95, 6.0)];
        let user = UserContext::accuracy_first().with_budget(6.0);
        let (sel, _) = select_marginal_gain(&ests, &user);
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn empty_estimates() {
        let user = UserContext::balanced("t");
        assert!(select_greedy_utility(&[], &user).is_empty());
        let (sel, trace) = select_marginal_gain(&[], &user);
        assert!(sel.is_empty() && trace.is_empty());
    }
}
