//! Source identity, metadata and the registry.

use std::fmt;

use wrangler_table::Table;

/// Stable identifier of a data source within a wrangling session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub u32);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

/// Metadata the wrangler knows about a source before/besides its data.
#[derive(Debug, Clone)]
pub struct SourceMeta {
    /// Identifier.
    pub id: SourceId,
    /// Human-readable name (site/file name).
    pub name: String,
    /// Cost of one access in abstract budget units.
    pub access_cost: f64,
    /// Tick at which the source's content was last refreshed.
    pub last_updated: u64,
}

impl SourceMeta {
    /// Minimal metadata.
    pub fn new(id: SourceId, name: impl Into<String>) -> SourceMeta {
        SourceMeta {
            id,
            name: name.into(),
            access_cost: 1.0,
            last_updated: 0,
        }
    }
}

/// A source: metadata plus its (extracted) table.
#[derive(Debug, Clone)]
pub struct Source {
    /// Metadata.
    pub meta: SourceMeta,
    /// The source's data as delivered by extraction.
    pub table: Table,
}

/// The set of sources available to a wrangling session.
#[derive(Debug, Clone, Default)]
pub struct SourceRegistry {
    sources: Vec<Source>,
}

impl SourceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        SourceRegistry::default()
    }

    /// Register a source, assigning the next id. Returns the id.
    pub fn register(&mut self, name: impl Into<String>, table: Table) -> SourceId {
        let id = SourceId(self.sources.len() as u32);
        self.sources.push(Source {
            meta: SourceMeta::new(id, name),
            table,
        });
        id
    }

    /// Register with full metadata (id field is overwritten to keep ids dense).
    pub fn register_with_meta(&mut self, mut meta: SourceMeta, table: Table) -> SourceId {
        let id = SourceId(self.sources.len() as u32);
        meta.id = id;
        self.sources.push(Source { meta, table });
        id
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True if no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Source by id.
    pub fn get(&self, id: SourceId) -> Option<&Source> {
        self.sources.get(id.0 as usize)
    }

    /// Mutable source by id.
    pub fn get_mut(&mut self, id: SourceId) -> Option<&mut Source> {
        self.sources.get_mut(id.0 as usize)
    }

    /// Iterate all sources in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Source> {
        self.sources.iter()
    }

    /// All ids in order.
    pub fn ids(&self) -> Vec<SourceId> {
        self.sources.iter().map(|s| s.meta.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_table::Schema;

    #[test]
    fn register_and_lookup() {
        let mut reg = SourceRegistry::new();
        let a = reg.register("siteA", Table::empty(Schema::of_strs(&["x"])));
        let b = reg.register("siteB", Table::empty(Schema::of_strs(&["y"])));
        assert_eq!(a, SourceId(0));
        assert_eq!(b, SourceId(1));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(a).unwrap().meta.name, "siteA");
        assert!(reg.get(SourceId(9)).is_none());
        assert_eq!(reg.ids(), vec![a, b]);
    }

    #[test]
    fn register_with_meta_keeps_ids_dense() {
        let mut reg = SourceRegistry::new();
        let meta = SourceMeta {
            id: SourceId(99),
            name: "x".into(),
            access_cost: 2.0,
            last_updated: 7,
        };
        let id = reg.register_with_meta(meta, Table::empty(Schema::of_strs(&["x"])));
        assert_eq!(id, SourceId(0));
        assert_eq!(reg.get(id).unwrap().meta.access_cost, 2.0);
        assert_eq!(reg.get(id).unwrap().meta.last_updated, 7);
    }

    #[test]
    fn display_of_source_id() {
        assert_eq!(SourceId(3).to_string(), "src3");
    }
}
