//! Source identity, metadata and the registry.

use std::fmt;

use wrangler_table::Table;

use crate::faults::{AcquireError, FaultConfig, FaultLayer, FaultProfile, SourceSnapshot};

/// Stable identifier of a data source within a wrangling session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub u32);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

/// Metadata the wrangler knows about a source before/besides its data.
#[derive(Debug, Clone)]
pub struct SourceMeta {
    /// Identifier.
    pub id: SourceId,
    /// Human-readable name (site/file name).
    pub name: String,
    /// Cost of one access in abstract budget units.
    pub access_cost: f64,
    /// Tick at which the source's content was last refreshed.
    pub last_updated: u64,
}

impl SourceMeta {
    /// Minimal metadata.
    pub fn new(id: SourceId, name: impl Into<String>) -> SourceMeta {
        SourceMeta {
            id,
            name: name.into(),
            access_cost: 1.0,
            last_updated: 0,
        }
    }
}

/// A source: metadata plus its (extracted) table.
#[derive(Debug, Clone)]
pub struct Source {
    /// Metadata.
    pub meta: SourceMeta,
    /// The source's data as delivered by extraction.
    pub table: Table,
}

/// The set of sources available to a wrangling session.
///
/// Reads go through either [`get`](SourceRegistry::get) (infallible, used by
/// stages that already hold an acquired payload) or the fallible
/// [`acquire`](SourceRegistry::acquire) access path, which consults the
/// optional fault layer and is what a resilient acquisition loop drives.
#[derive(Debug, Clone, Default)]
pub struct SourceRegistry {
    sources: Vec<Source>,
    faults: Option<FaultLayer>,
}

impl SourceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        SourceRegistry::default()
    }

    /// Register a source, assigning the next id. Returns the id.
    pub fn register(&mut self, name: impl Into<String>, table: Table) -> SourceId {
        let id = SourceId(self.sources.len() as u32);
        self.sources.push(Source {
            meta: SourceMeta::new(id, name),
            table,
        });
        id
    }

    /// Register with full metadata (id field is overwritten to keep ids dense).
    pub fn register_with_meta(&mut self, mut meta: SourceMeta, table: Table) -> SourceId {
        let id = SourceId(self.sources.len() as u32);
        meta.id = id;
        self.sources.push(Source { meta, table });
        id
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True if no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Source by id.
    pub fn get(&self, id: SourceId) -> Option<&Source> {
        self.sources.get(id.0 as usize)
    }

    /// Mutable source by id.
    pub fn get_mut(&mut self, id: SourceId) -> Option<&mut Source> {
        self.sources.get_mut(id.0 as usize)
    }

    /// Iterate all sources in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Source> {
        self.sources.iter()
    }

    /// All ids in order.
    pub fn ids(&self) -> Vec<SourceId> {
        self.sources.iter().map(|s| s.meta.id).collect()
    }

    /// Attach a fault layer, assigning seeded profiles across the current
    /// fleet. Replaces any previous layer.
    pub fn inject_faults(&mut self, cfg: &FaultConfig) {
        self.faults = Some(FaultLayer::new(self.sources.len(), cfg));
    }

    /// Attach a fault layer with explicit per-source profiles.
    pub fn inject_fault_profiles(&mut self, profiles: Vec<FaultProfile>, seed: u64) {
        self.faults = Some(FaultLayer::from_profiles(profiles, seed, 1));
    }

    /// Override a single source's fault profile (installing a fault layer of
    /// healthy sources first if none exists).
    pub fn set_fault_profile(&mut self, id: SourceId, profile: FaultProfile) {
        let layer = self.faults.get_or_insert_with(|| {
            FaultLayer::from_profiles(vec![FaultProfile::Healthy; self.sources.len()], 0, 1)
        });
        layer.set_profile(id, profile);
    }

    /// Remove the fault layer: every acquisition succeeds again.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// The fault profile of a source (`Healthy` when no layer is attached).
    pub fn fault_profile(&self, id: SourceId) -> FaultProfile {
        self.faults
            .as_ref()
            .map(|l| l.profile(id))
            .unwrap_or(FaultProfile::Healthy)
    }

    /// True if a fault layer is attached.
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }

    /// Stable content hash of a source's registered payload (the table as
    /// delivered by extraction, before any fault-layer degradation). Equal
    /// hashes across runs/processes mean byte-identical payloads under the
    /// canonical wire encoding; the checkpoint store keys stage records on
    /// these, so a re-registered-but-unchanged source replays from disk.
    pub fn payload_hash(&self, id: SourceId) -> Option<u64> {
        self.get(id).map(|s| wrangler_table::wire::table_hash(&s.table))
    }

    /// Replace a source's payload in place (a new extraction delivered).
    /// Returns the *previous* payload hash, or `None` for an unknown id —
    /// callers diff it against [`Self::payload_hash`] of the replacement to
    /// decide whether anything actually changed.
    pub fn update_table(&mut self, id: SourceId, table: Table) -> Option<u64> {
        let src = self.sources.get_mut(id.0 as usize)?;
        let prev = wrangler_table::wire::table_hash(&src.table);
        src.table = table;
        Some(prev)
    }

    /// Fallible acquisition of a source's payload at virtual tick `now`,
    /// tolerating at most `deadline` ticks of latency for this attempt.
    ///
    /// Without a fault layer this always succeeds with the registry table
    /// intact at unit latency; with one, the source's [`FaultProfile`]
    /// decides. The returned snapshot borrows nothing: a degraded payload is
    /// materialized, an intact one is signalled by `degraded: None` so the
    /// caller keeps using the registry's table without a copy.
    pub fn acquire(
        &self,
        id: SourceId,
        now: u64,
        deadline: u64,
    ) -> Result<SourceSnapshot, AcquireError> {
        let src = self.get(id).ok_or(AcquireError::UnknownSource(id))?;
        match &self.faults {
            None => Ok(SourceSnapshot {
                id,
                latency: 1,
                degraded: None,
            }),
            Some(layer) => layer.attempt(id, &src.table, now, deadline),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_table::Schema;

    #[test]
    fn register_and_lookup() {
        let mut reg = SourceRegistry::new();
        let a = reg.register("siteA", Table::empty(Schema::of_strs(&["x"])));
        let b = reg.register("siteB", Table::empty(Schema::of_strs(&["y"])));
        assert_eq!(a, SourceId(0));
        assert_eq!(b, SourceId(1));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(a).unwrap().meta.name, "siteA");
        assert!(reg.get(SourceId(9)).is_none());
        assert_eq!(reg.ids(), vec![a, b]);
    }

    #[test]
    fn register_with_meta_keeps_ids_dense() {
        let mut reg = SourceRegistry::new();
        let meta = SourceMeta {
            id: SourceId(99),
            name: "x".into(),
            access_cost: 2.0,
            last_updated: 7,
        };
        let id = reg.register_with_meta(meta, Table::empty(Schema::of_strs(&["x"])));
        assert_eq!(id, SourceId(0));
        assert_eq!(reg.get(id).unwrap().meta.access_cost, 2.0);
        assert_eq!(reg.get(id).unwrap().meta.last_updated, 7);
    }

    #[test]
    fn payload_hash_is_stable_and_content_sensitive() {
        use wrangler_table::Value;
        let mut t = Table::empty(Schema::of_strs(&["x"]));
        t.push_row(vec![Value::Str("a".into())]).unwrap();
        let mut reg = SourceRegistry::new();
        let a = reg.register("siteA", t.clone());
        let b = reg.register("siteB", t.clone());
        assert_eq!(reg.payload_hash(a), reg.payload_hash(b));
        let mut t2 = t.clone();
        t2.push_row(vec![Value::Str("b".into())]).unwrap();
        let c = reg.register("siteC", t2);
        assert_ne!(reg.payload_hash(a), reg.payload_hash(c));
        assert_eq!(reg.payload_hash(SourceId(9)), None);
    }

    #[test]
    fn update_table_swaps_payload_and_reports_previous_hash() {
        use wrangler_table::Value;
        let mut t = Table::empty(Schema::of_strs(&["x"]));
        t.push_row(vec![Value::Str("a".into())]).unwrap();
        let mut reg = SourceRegistry::new();
        let a = reg.register("siteA", t.clone());
        let before = reg.payload_hash(a).unwrap();
        let mut t2 = t.clone();
        t2.push_row(vec![Value::Str("b".into())]).unwrap();
        let prev = reg.update_table(a, t2.clone()).unwrap();
        assert_eq!(prev, before);
        assert_ne!(reg.payload_hash(a).unwrap(), before);
        assert_eq!(reg.get(a).unwrap().table.num_rows(), 2);
        assert_eq!(reg.update_table(SourceId(9), t), None);
    }

    #[test]
    fn display_of_source_id() {
        assert_eq!(SourceId(3).to_string(), "src3");
    }

    #[test]
    fn acquire_without_faults_always_succeeds() {
        let mut reg = SourceRegistry::new();
        let a = reg.register("siteA", Table::empty(Schema::of_strs(&["x"])));
        let s = reg.acquire(a, 0, 8).unwrap();
        assert!(!s.is_degraded());
        assert!(matches!(
            reg.acquire(SourceId(9), 0, 8),
            Err(crate::faults::AcquireError::UnknownSource(_))
        ));
    }

    #[test]
    fn acquire_respects_injected_profile() {
        let mut reg = SourceRegistry::new();
        let a = reg.register("siteA", Table::empty(Schema::of_strs(&["x"])));
        let b = reg.register("siteB", Table::empty(Schema::of_strs(&["x"])));
        reg.set_fault_profile(a, crate::faults::FaultProfile::HardDown);
        assert!(reg.acquire(a, 0, 8).is_err());
        assert!(reg.acquire(b, 0, 8).is_ok());
        reg.clear_faults();
        assert!(reg.acquire(a, 0, 8).is_ok());
    }
}
