//! `wrangler-sources` — source registry, synthetic source fleets, and
//! multi-criteria source selection.
//!
//! The paper's running example (Example 1) is price intelligence over
//! "thousands of sites" exhibiting all four V's. We cannot crawl the deep
//! web in a test harness, so this crate provides the controlled substitute
//! documented in DESIGN.md: a **synthetic source fleet** with a known ground
//! truth and per-source knobs for every V —
//!
//! * *Volume*: any number of sources over a shared product world;
//! * *Velocity*: per-tick price drift and per-source staleness lags;
//! * *Variety*: per-source schema variants (synonym renames, dropped and
//!   cryptic columns, unit quirks);
//! * *Veracity*: per-source error and null rates.
//!
//! Because the ground truth is known, every downstream experiment can score
//! accuracy exactly. The crate also implements source *selection*:
//! the context-aware greedy selection the user context steers, and the
//! marginal-gain ("less is more", Dong et al. \[16\]) strategy that stops
//! integrating sources when the marginal quality gain no longer pays for the
//! marginal cost.

pub mod faults;
pub mod locations;
pub mod probe;
pub mod registry;
pub mod selection;
pub mod synthetic;

pub use faults::{
    AcquireError, Degradation, FaultConfig, FaultLayer, FaultProfile, SourceSnapshot,
};
pub use probe::{probe_source, ProbeConfig, ProbeResult};
pub use registry::{Source, SourceId, SourceMeta, SourceRegistry};
pub use selection::{select_greedy_utility, select_marginal_gain, SourceEstimate};
pub use synthetic::{FleetConfig, GroundTruth, SyntheticFleet};
