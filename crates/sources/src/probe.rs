//! Bounded source probing — scale-independent estimation (§4.3).
//!
//! "Among these challenges are understanding the requirement for query
//! scalability \[2\] that can be provided in terms of access and indexing
//! information \[17\]": decisions about a source must not require scanning the
//! whole source. Selection needs only *estimates* of coverage, relevance and
//! messiness, and those estimates converge on a bounded sample. This module
//! provides deterministic sampling and sampled counterparts of the profiling
//! signals the wrangler's source selection consumes.

use wrangler_context::DataContext;
use wrangler_table::stats::column_stats;
use wrangler_table::Table;
use wrangler_uncertainty::worlds::XorShift64;

/// Probing configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProbeConfig {
    /// Maximum rows to inspect per source.
    pub sample_rows: usize,
    /// Sampling seed (probing is deterministic).
    pub seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            sample_rows: 128,
            seed: 0xC0FFEE,
        }
    }
}

/// Deterministic uniform row sample of up to `cfg.sample_rows` rows
/// (Fisher–Yates prefix over row indices). Returns the table itself when it
/// is already within the budget.
pub fn sample_rows(table: &Table, cfg: &ProbeConfig) -> wrangler_table::Result<Table> {
    let n = table.num_rows();
    if n <= cfg.sample_rows {
        return Ok(table.clone());
    }
    let mut rng = XorShift64::new(cfg.seed ^ n as u64);
    let mut idx: Vec<usize> = (0..n).collect();
    for slot in 0..cfg.sample_rows {
        let pick = slot + rng.next_below(n - slot);
        idx.swap(slot, pick);
    }
    idx.truncate(cfg.sample_rows);
    idx.sort_unstable(); // preserve original order within the sample
    table.take(&idx)
}

/// What a bounded probe learns about a source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeResult {
    /// Rows inspected.
    pub sampled_rows: usize,
    /// Total rows the source reports (metadata access, not a scan).
    pub total_rows: usize,
    /// Estimated fraction of sampled key values found in the master data
    /// (`None` if no master data / no overlapping column).
    pub relevance: Option<f64>,
    /// Estimated null rate over the sampled cells.
    pub null_rate: f64,
    /// Estimated fraction of sampled cells whose dtype matches the column
    /// majority (syntactic cleanliness).
    pub type_consistency: f64,
}

/// Probe a source with a bounded sample.
pub fn probe_source(
    table: &Table,
    ctx: &DataContext,
    master_kind: &str,
    cfg: &ProbeConfig,
) -> wrangler_table::Result<ProbeResult> {
    let sample = sample_rows(table, cfg)?;
    // Relevance: best master coverage over the sampled columns.
    let mut relevance: Option<f64> = None;
    for i in 0..sample.num_columns() {
        let col = sample.column(i)?;
        if let Some(cov) = ctx.master_coverage(master_kind, col) {
            relevance = Some(relevance.map_or(cov, |b: f64| b.max(cov)));
        }
    }
    // Null rate + type consistency over the sample.
    let mut cells = 0usize;
    let mut nulls = 0usize;
    let mut consistent = 0.0;
    for i in 0..sample.num_columns() {
        let col = sample.column(i)?;
        let stats = column_stats(col);
        cells += stats.count;
        nulls += stats.null_count;
        // Majority dtype share among non-nulls.
        let mut counts: Vec<(wrangler_table::DataType, usize)> = Vec::new();
        for v in col.iter().filter(|v| !v.is_null()) {
            let dt = v.dtype();
            match counts.iter_mut().find(|(d, _)| *d == dt) {
                Some((_, n)) => *n += 1,
                None => counts.push((dt, 1)),
            }
        }
        let non_null = stats.count - stats.null_count;
        let major = counts.iter().map(|(_, n)| *n).max().unwrap_or(0);
        consistent += if non_null == 0 {
            1.0
        } else {
            major as f64 / non_null as f64
        };
    }
    Ok(ProbeResult {
        sampled_rows: sample.num_rows(),
        total_rows: table.num_rows(),
        relevance,
        null_rate: if cells == 0 {
            0.0
        } else {
            nulls as f64 / cells as f64
        },
        type_consistency: if sample.num_columns() == 0 {
            1.0
        } else {
            consistent / sample.num_columns() as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_context::DataContext;
    use wrangler_table::Value;

    fn big_table(n: usize) -> Table {
        let rows = (0..n)
            .map(|i| {
                vec![
                    Value::from(format!("K{:05}", i % 500)),
                    if i % 10 == 0 {
                        Value::Null
                    } else {
                        Value::Float(i as f64)
                    },
                ]
            })
            .collect();
        Table::literal(&["sku", "price"], rows).expect("aligned")
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let t = big_table(5_000);
        let cfg = ProbeConfig {
            sample_rows: 100,
            seed: 7,
        };
        let a = sample_rows(&t, &cfg).unwrap();
        let b = sample_rows(&t, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.num_rows(), 100);
        // Small tables come back whole.
        let small = big_table(50);
        assert_eq!(sample_rows(&small, &cfg).unwrap().num_rows(), 50);
    }

    #[test]
    fn sampled_estimates_converge_to_exact() {
        let t = big_table(10_000);
        let mut ctx = DataContext::new();
        // Master covers half the key space.
        let master_rows = (0..250)
            .map(|i| vec![Value::from(format!("K{i:05}"))])
            .collect();
        let master = Table::literal(&["sku"], master_rows).unwrap();
        ctx.add_master("product", master, "sku").unwrap();

        let probe = probe_source(
            &t,
            &ctx,
            "product",
            &ProbeConfig {
                sample_rows: 256,
                seed: 3,
            },
        )
        .unwrap();
        assert_eq!(probe.sampled_rows, 256);
        assert_eq!(probe.total_rows, 10_000);
        // True relevance 0.5, true null rate 0.05 (price col only → over all
        // cells 0.05); sampled within sampling error.
        assert!(
            (probe.relevance.unwrap() - 0.5).abs() < 0.1,
            "{:?}",
            probe.relevance
        );
        assert!((probe.null_rate - 0.05).abs() < 0.03, "{}", probe.null_rate);
        assert!(probe.type_consistency > 0.95);
    }

    #[test]
    fn no_master_data_means_no_relevance() {
        let t = big_table(100);
        let ctx = DataContext::new();
        let probe = probe_source(&t, &ctx, "product", &ProbeConfig::default()).unwrap();
        assert_eq!(probe.relevance, None);
    }
}
