//! Synthetic e-commerce source fleets with known ground truth.
//!
//! The generator builds a *world* of products with time-varying true prices,
//! then derives any number of *sources*, each a noisy, partial, stale,
//! schema-drifted view of that world — Example 1's competitor sites in
//! controllable form. Everything is seeded and deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wrangler_table::{Table, Value};

use crate::registry::{SourceMeta, SourceRegistry};

/// Canonical product attributes in the ground truth.
pub const CANONICAL_COLUMNS: [&str; 6] = ["sku", "name", "brand", "category", "price", "stock"];

/// One true product.
#[derive(Debug, Clone)]
pub struct ProductTruth {
    /// Unique key.
    pub sku: String,
    /// Product name.
    pub name: String,
    /// Brand.
    pub brand: String,
    /// Category.
    pub category: String,
    /// Price per tick (index = tick), a bounded random walk.
    pub prices: Vec<f64>,
    /// Units in stock at `now`.
    pub stock: i64,
}

/// The generated world: products plus the current tick.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// All products.
    pub products: Vec<ProductTruth>,
    /// The current tick (price index `now` is the live price).
    pub now: u64,
}

impl GroundTruth {
    /// The true price of product `idx` at `tick` (clamped to the series).
    pub fn price_at(&self, idx: usize, tick: u64) -> f64 {
        let p = &self.products[idx].prices;
        p[(tick as usize).min(p.len() - 1)]
    }

    /// The live true price of the product with the given sku.
    pub fn live_price(&self, sku: &str) -> Option<f64> {
        let idx = self.products.iter().position(|p| p.sku == sku)?;
        Some(self.price_at(idx, self.now))
    }

    /// Index of a product by sku.
    pub fn index_of(&self, sku: &str) -> Option<usize> {
        self.products.iter().position(|p| p.sku == sku)
    }

    /// Whether `value` is within `tol` (relative) of the live price of `sku`.
    pub fn price_is_correct(&self, sku: &str, value: f64, tol: f64) -> bool {
        match self.live_price(sku) {
            Some(truth) => (value - truth).abs() <= tol * truth.abs().max(1e-9),
            None => false,
        }
    }

    /// The master-data catalog (Example 4): sku, name, brand, category — the
    /// data the company already owns (no prices; prices are what it wants).
    pub fn master_catalog(&self) -> Table {
        let rows = self
            .products
            .iter()
            .map(|p| {
                vec![
                    Value::from(p.sku.clone()),
                    p.name.clone().into(),
                    p.brand.clone().into(),
                    p.category.clone().into(),
                ]
            })
            .collect();
        Table::literal(&["sku", "name", "brand", "category"], rows).expect("consistent arity") // lint-allow: literal rows, fixed arity
    }
}

/// Knobs for fleet generation. Ranges are sampled per source.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of products in the world.
    pub num_products: usize,
    /// Number of sources to derive.
    pub num_sources: usize,
    /// Current tick (length of each price series − 1).
    pub now: u64,
    /// Probability a product's price changes at each tick (prices are
    /// episodic, as on real shops: long stable epochs, occasional jumps).
    pub price_change_prob: f64,
    /// Relative magnitude range of a price change when one happens.
    pub price_volatility: f64,
    /// Range of per-source product coverage.
    pub coverage: (f64, f64),
    /// Range of per-source cell error rates.
    pub error_rate: (f64, f64),
    /// Range of per-source cell null rates.
    pub null_rate: (f64, f64),
    /// Range of per-source staleness lags in ticks.
    pub staleness: (u64, u64),
    /// Probability that a source renames a column to a synonym.
    pub rename_rate: f64,
    /// Probability that a source uses a cryptic (uninformative) column name.
    pub cryptic_rate: f64,
    /// Probability that a source drops one non-key column.
    pub drop_rate: f64,
    /// Range of per-source access costs.
    pub access_cost: (f64, f64),
    /// Fraction of sources whose products fall outside the master catalog's
    /// domain (irrelevant sources, for relevance experiments).
    pub irrelevant_rate: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            num_products: 200,
            num_sources: 20,
            now: 20,
            price_change_prob: 0.12,
            price_volatility: 0.15,
            coverage: (0.3, 0.9),
            error_rate: (0.02, 0.25),
            null_rate: (0.0, 0.15),
            staleness: (0, 10),
            rename_rate: 0.5,
            cryptic_rate: 0.1,
            drop_rate: 0.3,
            access_cost: (0.5, 3.0),
            irrelevant_rate: 0.0,
        }
    }
}

/// Per-source latent parameters, kept so experiments can compare estimates
/// against the truth.
#[derive(Debug, Clone)]
pub struct SourceTruth {
    /// Fraction of products present.
    pub coverage: f64,
    /// Cell corruption probability.
    pub error_rate: f64,
    /// Cell null probability.
    pub null_rate: f64,
    /// Price staleness in ticks.
    pub staleness: u64,
    /// Whether the source is about an unrelated domain.
    pub irrelevant: bool,
}

/// A generated fleet: registry + ground truth + per-source latents.
#[derive(Debug, Clone)]
pub struct SyntheticFleet {
    /// The sources, registered in id order.
    pub registry: SourceRegistry,
    /// The world they describe.
    pub truth: GroundTruth,
    /// Latent parameters, indexed by source id.
    pub latents: Vec<SourceTruth>,
}

const BRANDS: [&str; 8] = [
    "Acme",
    "Globex",
    "Initech",
    "Umbrella",
    "Stark",
    "Wayne",
    "Tyrell",
    "Cyberdyne",
];
const CATEGORIES: [&str; 6] = ["electronics", "home", "toys", "sports", "office", "garden"];
const NOUNS: [&str; 12] = [
    "Widget",
    "Gadget",
    "Sprocket",
    "Gizmo",
    "Doohickey",
    "Flange",
    "Grommet",
    "Spanner",
    "Bracket",
    "Coupler",
    "Dynamo",
    "Filament",
];
const ADJS: [&str; 10] = [
    "Turbo", "Ultra", "Mini", "Mega", "Smart", "Classic", "Pro", "Eco", "Prime", "Quantum",
];

/// Synonym pools aligned with [`wrangler_context::Ontology::ecommerce`].
fn synonyms_for(col: &str) -> &'static [&'static str] {
    match col {
        "sku" => &["sku", "id", "product id", "code", "mpn"],
        "name" => &["name", "title", "product name", "label"],
        "brand" => &["brand", "manufacturer", "maker"],
        "category" => &["category", "type", "product type", "department"],
        "price" => &["price", "cost", "amount", "unit price", "sale price"],
        "stock" => &["stock", "availability", "inventory", "in stock"],
        _ => &[],
    }
}

/// Generate a fleet deterministically from `seed`.
pub fn generate_fleet(cfg: &FleetConfig, seed: u64) -> SyntheticFleet {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth = generate_world(cfg, "SKU", &mut rng);
    // An off-catalog world (disjoint key namespace) for irrelevant sources.
    let other_world = if cfg.irrelevant_rate > 0.0 {
        Some(generate_world(cfg, "ALT", &mut rng))
    } else {
        None
    };

    let mut registry = SourceRegistry::new();
    let mut latents = Vec::with_capacity(cfg.num_sources);
    for s in 0..cfg.num_sources {
        let irrelevant = rng.gen::<f64>() < cfg.irrelevant_rate;
        let world = if irrelevant {
            other_world.as_ref().unwrap_or(&truth)
        } else {
            &truth
        };
        let lat = SourceTruth {
            coverage: rng.gen_range(cfg.coverage.0..=cfg.coverage.1),
            error_rate: rng.gen_range(cfg.error_rate.0..=cfg.error_rate.1),
            null_rate: rng.gen_range(cfg.null_rate.0..=cfg.null_rate.1),
            staleness: rng.gen_range(cfg.staleness.0..=cfg.staleness.1),
            irrelevant,
        };
        let table = derive_source_table(world, cfg, &lat, &mut rng);
        let meta = SourceMeta {
            id: crate::registry::SourceId(0), // reassigned by registry
            name: format!("shop{s:03}.example"),
            access_cost: rng.gen_range(cfg.access_cost.0..=cfg.access_cost.1),
            last_updated: cfg.now.saturating_sub(lat.staleness),
        };
        registry.register_with_meta(meta, table);
        latents.push(lat);
    }
    SyntheticFleet {
        registry,
        truth,
        latents,
    }
}

fn generate_world(cfg: &FleetConfig, sku_prefix: &str, rng: &mut StdRng) -> GroundTruth {
    let mut products = Vec::with_capacity(cfg.num_products);
    for i in 0..cfg.num_products {
        let adj = ADJS[rng.gen_range(0..ADJS.len())];
        let noun = NOUNS[rng.gen_range(0..NOUNS.len())];
        let brand = BRANDS[rng.gen_range(0..BRANDS.len())];
        let base: f64 = rng.gen_range(5.0..500.0);
        let mut prices = Vec::with_capacity(cfg.now as usize + 1);
        let mut p = (base * 100.0).round() / 100.0;
        for _ in 0..=cfg.now {
            prices.push(p);
            if rng.gen::<f64>() < cfg.price_change_prob {
                let magnitude = rng.gen_range(0.03..=cfg.price_volatility.max(0.031));
                let step = 1.0 + magnitude * if rng.gen() { 1.0 } else { -1.0 };
                p = ((p * step).max(0.5) * 100.0).round() / 100.0;
            }
        }
        products.push(ProductTruth {
            sku: format!("{sku_prefix}-{i:05}"),
            name: format!("{brand} {adj} {noun} {}", i % 97),
            brand: brand.to_string(),
            category: CATEGORIES[rng.gen_range(0..CATEGORIES.len())].to_string(),
            prices,
            stock: rng.gen_range(0..250),
        });
    }
    GroundTruth {
        products,
        now: cfg.now,
    }
}

/// Derive one source's noisy table from the world.
fn derive_source_table(
    world: &GroundTruth,
    cfg: &FleetConfig,
    lat: &SourceTruth,
    rng: &mut StdRng,
) -> Table {
    // Schema variant: possibly drop one non-key column, rename the rest.
    let mut cols: Vec<&str> = CANONICAL_COLUMNS.to_vec();
    if rng.gen::<f64>() < cfg.drop_rate {
        let droppable = ["brand", "category", "stock"];
        let victim = droppable[rng.gen_range(0..droppable.len())];
        cols.retain(|c| *c != victim);
    }
    let mut names: Vec<String> = Vec::with_capacity(cols.len());
    for (ci, c) in cols.iter().enumerate() {
        let name = if rng.gen::<f64>() < cfg.cryptic_rate {
            format!("col{ci}")
        } else if rng.gen::<f64>() < cfg.rename_rate {
            let pool = synonyms_for(c);
            pool[rng.gen_range(0..pool.len())].to_string()
        } else {
            (*c).to_string()
        };
        names.push(name);
    }
    // Ensure uniqueness after renames.
    for i in 0..names.len() {
        while names[..i].contains(&names[i]) {
            names[i].push('_');
        }
    }

    let tick = world.now.saturating_sub(lat.staleness);
    let mut rows = Vec::new();
    for (pi, prod) in world.products.iter().enumerate() {
        if rng.gen::<f64>() > lat.coverage {
            continue;
        }
        let mut row = Vec::with_capacity(cols.len());
        for c in &cols {
            let clean: Value = match *c {
                "sku" => prod.sku.clone().into(),
                "name" => prod.name.clone().into(),
                "brand" => prod.brand.clone().into(),
                "category" => prod.category.clone().into(),
                "price" => Value::Float(world.price_at(pi, tick)),
                "stock" => Value::Int(prod.stock),
                // `cols` is built from the fixed list above; any future
                // column lands as Null rather than panicking mid-generation.
                _ => Value::Null,
            };
            // Keys stay non-null so records remain linkable; their errors are
            // typos (ER stress) at a reduced rate.
            let v = if *c != "sku" && rng.gen::<f64>() < lat.null_rate {
                Value::Null
            } else if rng.gen::<f64>() < lat.error_rate * if *c == "sku" { 0.2 } else { 1.0 } {
                corrupt(&clean, rng)
            } else {
                clean
            };
            row.push(v);
        }
        rows.push(row);
    }
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    Table::literal(&name_refs, rows).expect("consistent arity") // lint-allow: rows built to name_refs arity
}

/// Corrupt one value (veracity injection).
pub(crate) fn corrupt(v: &Value, rng: &mut StdRng) -> Value {
    match v {
        Value::Float(f) => match rng.gen_range(0..3) {
            // Decimal-point error: off by 10x.
            0 => Value::Float((f * 10.0 * 100.0).round() / 100.0),
            // Plausible-but-wrong perturbation.
            1 => {
                let factor = 1.0 + rng.gen_range(0.05..0.5) * if rng.gen() { 1.0 } else { -1.0 };
                Value::Float(((f * factor) * 100.0).round() / 100.0)
            }
            // Stringified with currency junk (type noise).
            _ => Value::Str(format!("${f:.2}")),
        },
        Value::Int(i) => Value::Int(i + rng.gen_range(1..50)),
        Value::Str(s) => Value::Str(typo(s, rng)),
        other => other.clone(),
    }
}

/// Introduce one character-level typo.
pub(crate) fn typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return format!("{s}x");
    }
    let i = rng.gen_range(0..chars.len() - 1);
    let mut out = chars.clone();
    match rng.gen_range(0..3) {
        0 => out.swap(i, i + 1), // transposition
        1 => {
            out.remove(i); // deletion
        }
        _ => out.insert(i, out[i]), // duplication
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FleetConfig {
        FleetConfig {
            num_products: 30,
            num_sources: 5,
            now: 10,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_fleet(&small_cfg(), 42);
        let b = generate_fleet(&small_cfg(), 42);
        assert_eq!(a.truth.products.len(), b.truth.products.len());
        for (x, y) in a.truth.products.iter().zip(&b.truth.products) {
            assert_eq!(x.sku, y.sku);
            assert_eq!(x.prices, y.prices);
        }
        for (s, t) in a.registry.iter().zip(b.registry.iter()) {
            assert_eq!(s.table.num_rows(), t.table.num_rows());
            assert_eq!(s.table.schema().names(), t.table.schema().names());
        }
        let c = generate_fleet(&small_cfg(), 43);
        assert_ne!(
            a.truth.products[0].prices, c.truth.products[0].prices,
            "different seeds differ"
        );
    }

    #[test]
    fn world_shape() {
        let fleet = generate_fleet(&small_cfg(), 1);
        assert_eq!(fleet.truth.products.len(), 30);
        assert_eq!(fleet.registry.len(), 5);
        assert_eq!(fleet.latents.len(), 5);
        for p in &fleet.truth.products {
            assert_eq!(p.prices.len(), 11);
            assert!(p.prices.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn coverage_approximately_respected() {
        let cfg = FleetConfig {
            num_products: 500,
            num_sources: 3,
            coverage: (0.5, 0.5),
            ..FleetConfig::default()
        };
        let fleet = generate_fleet(&cfg, 7);
        for s in fleet.registry.iter() {
            let frac = s.table.num_rows() as f64 / 500.0;
            assert!((frac - 0.5).abs() < 0.1, "coverage {frac}");
        }
    }

    #[test]
    fn clean_fleet_prices_match_truth() {
        let cfg = FleetConfig {
            num_products: 50,
            num_sources: 2,
            error_rate: (0.0, 0.0),
            null_rate: (0.0, 0.0),
            staleness: (0, 0),
            rename_rate: 0.0,
            cryptic_rate: 0.0,
            drop_rate: 0.0,
            ..FleetConfig::default()
        };
        let fleet = generate_fleet(&cfg, 3);
        let src = fleet.registry.get(crate::registry::SourceId(0)).unwrap();
        assert_eq!(src.table.schema().names(), CANONICAL_COLUMNS.to_vec());
        for i in 0..src.table.num_rows() {
            let sku = src
                .table
                .get_named(i, "sku")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            let price = src.table.get_named(i, "price").unwrap().as_f64().unwrap();
            assert!(
                fleet.truth.price_is_correct(&sku, price, 1e-9),
                "{sku} {price}"
            );
        }
    }

    #[test]
    fn stale_sources_report_old_prices() {
        let cfg = FleetConfig {
            num_products: 80,
            num_sources: 1,
            error_rate: (0.0, 0.0),
            null_rate: (0.0, 0.0),
            staleness: (8, 8),
            rename_rate: 0.0,
            cryptic_rate: 0.0,
            drop_rate: 0.0,
            now: 10,
            price_volatility: 0.1,
            ..FleetConfig::default()
        };
        let fleet = generate_fleet(&cfg, 9);
        let src = fleet.registry.get(crate::registry::SourceId(0)).unwrap();
        assert_eq!(src.meta.last_updated, 2);
        let mut stale_hits = 0;
        for i in 0..src.table.num_rows() {
            let sku = src
                .table
                .get_named(i, "sku")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            let price = src.table.get_named(i, "price").unwrap().as_f64().unwrap();
            let idx = fleet.truth.index_of(&sku).unwrap();
            if (price - fleet.truth.price_at(idx, 2)).abs() < 1e-9 {
                stale_hits += 1;
            }
        }
        assert_eq!(stale_hits, src.table.num_rows());
    }

    #[test]
    fn schema_variety_produced() {
        let cfg = FleetConfig {
            num_sources: 20,
            num_products: 20,
            rename_rate: 0.9,
            ..FleetConfig::default()
        };
        let fleet = generate_fleet(&cfg, 5);
        let mut distinct_schemas = std::collections::HashSet::new();
        for s in fleet.registry.iter() {
            distinct_schemas.insert(
                s.table
                    .schema()
                    .names()
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>(),
            );
        }
        assert!(
            distinct_schemas.len() > 5,
            "only {} schemas",
            distinct_schemas.len()
        );
    }

    #[test]
    fn errors_injected_at_configured_rate() {
        let cfg = FleetConfig {
            num_products: 400,
            num_sources: 1,
            error_rate: (0.3, 0.3),
            null_rate: (0.0, 0.0),
            staleness: (0, 0),
            rename_rate: 0.0,
            cryptic_rate: 0.0,
            drop_rate: 0.0,
            ..FleetConfig::default()
        };
        let fleet = generate_fleet(&cfg, 11);
        let src = fleet.registry.get(crate::registry::SourceId(0)).unwrap();
        let mut wrong = 0;
        let mut total = 0;
        for i in 0..src.table.num_rows() {
            let sku = src
                .table
                .get_named(i, "sku")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            if fleet.truth.index_of(&sku).is_none() {
                continue; // sku itself corrupted
            }
            total += 1;
            match src.table.get_named(i, "price").unwrap().as_f64() {
                Some(p) if fleet.truth.price_is_correct(&sku, p, 1e-9) => {}
                _ => wrong += 1,
            }
        }
        let rate = wrong as f64 / total as f64;
        assert!((rate - 0.3).abs() < 0.08, "observed error rate {rate}");
    }

    #[test]
    fn master_catalog_covers_all_products() {
        let fleet = generate_fleet(&small_cfg(), 2);
        let cat = fleet.truth.master_catalog();
        assert_eq!(cat.num_rows(), 30);
        assert_eq!(
            cat.schema().names(),
            vec!["sku", "name", "brand", "category"]
        );
    }

    #[test]
    fn irrelevant_sources_do_not_overlap_catalog() {
        let cfg = FleetConfig {
            num_products: 40,
            num_sources: 10,
            irrelevant_rate: 1.0,
            error_rate: (0.0, 0.0),
            rename_rate: 0.0,
            cryptic_rate: 0.0,
            drop_rate: 0.0,
            ..FleetConfig::default()
        };
        let fleet = generate_fleet(&cfg, 13);
        assert!(fleet.latents.iter().all(|l| l.irrelevant));
        // Irrelevant sources describe a disjoint key namespace (ALT-*).
        let truth_skus: std::collections::HashSet<_> =
            fleet.truth.products.iter().map(|p| p.sku.clone()).collect();
        for s in fleet.registry.iter() {
            for v in s.table.column_named("sku").unwrap() {
                if let Some(sku) = v.as_str() {
                    assert!(
                        !truth_skus.contains(sku),
                        "irrelevant source overlaps: {sku}"
                    );
                }
            }
        }
    }

    #[test]
    fn typo_changes_string() {
        let mut rng = StdRng::seed_from_u64(1);
        for s in ["widget", "ab", "a"] {
            let t = typo(s, &mut rng);
            assert_ne!(t, s);
        }
    }
}
