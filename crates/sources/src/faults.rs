//! Deterministic fault injection for the source fleet.
//!
//! Real wrangling pipelines acquire data from sources that fail: sites go
//! down, rate-limit crawlers, time out, or return truncated / garbled
//! payloads (§2's Variety and Veracity both have an *operational* face the
//! paper's quality dimensions only see after the fact). This module gives the
//! synthetic fleet that operational face in a fully **seeded, virtual-time**
//! way so robustness experiments (E11) are reproducible bit-for-bit:
//!
//! * every source carries a [`FaultProfile`];
//! * acquisition goes through [`SourceRegistry::acquire`], which consults the
//!   profile at a caller-supplied virtual tick and either yields a
//!   [`SourceSnapshot`] (possibly degraded) or an [`AcquireError`];
//! * no wall-clock time is involved anywhere — flapping, rate-limit windows
//!   and latencies are all functions of the tick, so a retry loop that
//!   advances its own virtual clock sees exactly the behaviour a live
//!   acquisition layer would, deterministically.

use std::fmt;
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wrangler_table::{Field, Schema, Table, Value};

use crate::registry::SourceId;
use crate::synthetic::corrupt;

/// How a source (mis)behaves when accessed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultProfile {
    /// Answers every request promptly and intact.
    Healthy,
    /// Never answers (site gone, credentials revoked, firewalled).
    HardDown,
    /// Alternates availability: up for `up_fraction` of every `period`
    /// ticks, shifted by `phase`. A retry that waits long enough succeeds.
    Flap {
        /// Length of one up/down cycle in ticks.
        period: u64,
        /// Fraction of the cycle the source is up, in (0, 1).
        up_fraction: f64,
        /// Offset into the cycle, so sources don't flap in lockstep.
        phase: u64,
    },
    /// Answers, but only after `latency` ticks — callers with a tighter
    /// per-attempt deadline give up first.
    Slow {
        /// Ticks before the payload arrives.
        latency: u64,
    },
    /// Answers promptly but delivers only a prefix of its rows.
    Truncated {
        /// Fraction of rows delivered, in (0, 1].
        keep_fraction: f64,
    },
    /// Answers promptly but garbles cells on the way out.
    CorruptRows {
        /// Per-cell corruption probability, in \[0, 1\].
        cell_error_rate: f64,
    },
    /// Serves at most `max_per_window` requests per `window` ticks, then
    /// rejects with a retry-after hint until the window rolls over.
    RateLimited {
        /// Requests served per window.
        max_per_window: u32,
        /// Window length in ticks.
        window: u64,
    },
    /// Answers promptly but the payload's schema has drifted: trailing
    /// columns are gone and the last surviving column was renamed. The
    /// acquisition layer never notices — the damage surfaces at schema
    /// matching and mapping time (a *post-acquisition* fault).
    SchemaDrift {
        /// How many trailing columns the drifted payload lost.
        drop: usize,
    },
    /// Answers promptly but some cells arrive as type-poisoned garbage
    /// (control-byte-laced strings no downstream matcher should ingest).
    TypePoison {
        /// Per-cell poisoning probability, in \[0, 1\].
        cell_rate: f64,
    },
    /// Answers promptly but inflates string cells into pathological
    /// payloads (multi-kilobyte strings that blow up edit-distance ER).
    PathologicalStrings {
        /// Per-cell inflation probability, in \[0, 1\].
        cell_rate: f64,
        /// Length in bytes of an inflated cell.
        len: usize,
    },
    /// Answers promptly but some numeric cells arrive as NaN or ±∞.
    NonFinite {
        /// Per-cell probability, in \[0, 1\].
        cell_rate: f64,
    },
    /// Answers promptly but repeats its rows `factor` times — an unbounded
    /// feed that exhausts downstream row budgets.
    Oversized {
        /// Payload size multiplier (≥ 1).
        factor: u32,
    },
}

/// Why an acquisition attempt failed.
#[derive(Debug, Clone, PartialEq)]
pub enum AcquireError {
    /// The id does not name a registered source.
    UnknownSource(SourceId),
    /// The source did not answer (hard-down, or a flapping source currently
    /// in its down phase — the caller cannot tell which, just like a client
    /// of a real endpoint cannot).
    Unavailable {
        /// Which source.
        source: SourceId,
    },
    /// The source would have answered, but not within the caller's
    /// per-attempt deadline.
    DeadlineExceeded {
        /// Which source.
        source: SourceId,
        /// Ticks the source needed.
        latency: u64,
        /// Ticks the caller was willing to wait.
        deadline: u64,
    },
    /// The source's rate limit is exhausted for the current window.
    RateLimited {
        /// Which source.
        source: SourceId,
        /// Ticks until the window rolls over and requests are served again.
        retry_after: u64,
    },
}

impl AcquireError {
    /// The source the error concerns.
    pub fn source(&self) -> SourceId {
        match self {
            AcquireError::UnknownSource(s)
            | AcquireError::Unavailable { source: s }
            | AcquireError::DeadlineExceeded { source: s, .. }
            | AcquireError::RateLimited { source: s, .. } => *s,
        }
    }

    /// Whether retrying the same request later could possibly succeed.
    pub fn is_retriable(&self) -> bool {
        !matches!(self, AcquireError::UnknownSource(_))
    }
}

impl fmt::Display for AcquireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcquireError::UnknownSource(s) => write!(f, "{s}: no such source"),
            AcquireError::Unavailable { source } => write!(f, "{source}: unavailable"),
            AcquireError::DeadlineExceeded {
                source,
                latency,
                deadline,
            } => write!(
                f,
                "{source}: needs {latency} ticks, deadline was {deadline}"
            ),
            AcquireError::RateLimited {
                source,
                retry_after,
            } => write!(f, "{source}: rate limited, retry after {retry_after} ticks"),
        }
    }
}

impl std::error::Error for AcquireError {}

/// How a delivered payload differs from the source's true table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// Only a prefix of the rows arrived.
    Truncated {
        /// Rows delivered.
        kept: usize,
        /// Rows the source actually has.
        total: usize,
    },
    /// Some cells were garbled in transit.
    CorruptCells {
        /// Number of cells corrupted.
        cells: usize,
    },
    /// The payload's schema drifted: trailing columns dropped, last
    /// survivor renamed.
    SchemaDrifted {
        /// Columns missing relative to the source's true schema.
        dropped: usize,
    },
    /// Some cells arrived as control-byte-laced garbage.
    TypePoisoned {
        /// Number of poisoned cells.
        cells: usize,
    },
    /// Some string cells arrived pathologically inflated.
    Pathological {
        /// Number of inflated cells.
        cells: usize,
    },
    /// Some numeric cells arrived as NaN or ±∞.
    NonFinite {
        /// Number of non-finite cells.
        cells: usize,
    },
    /// The payload arrived with its rows repeated.
    Oversized {
        /// Rows delivered (a multiple of the true row count).
        rows: usize,
    },
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Degradation::Truncated { kept, total } => {
                write!(f, "truncated to {kept}/{total} rows")
            }
            Degradation::CorruptCells { cells } => write!(f, "{cells} cells corrupted"),
            Degradation::SchemaDrifted { dropped } => {
                write!(f, "schema drifted ({dropped} columns lost)")
            }
            Degradation::TypePoisoned { cells } => write!(f, "{cells} cells type-poisoned"),
            Degradation::Pathological { cells } => {
                write!(f, "{cells} cells pathologically inflated")
            }
            Degradation::NonFinite { cells } => write!(f, "{cells} non-finite numeric cells"),
            Degradation::Oversized { rows } => write!(f, "oversized payload ({rows} rows)"),
        }
    }
}

/// A successful acquisition: what arrived and what it cost.
#[derive(Debug, Clone)]
pub struct SourceSnapshot {
    /// Which source answered.
    pub id: SourceId,
    /// Virtual ticks the request took.
    pub latency: u64,
    /// `Some((how, payload))` when the payload differs from the registry's
    /// table; `None` means the registry table arrived intact (no copy made).
    pub degraded: Option<(Degradation, Table)>,
}

impl SourceSnapshot {
    /// True if the payload differs from the source's true table.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }
}

/// Configuration for assigning fault profiles across a fleet.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Fraction of sources that get a non-healthy profile, in \[0, 1\].
    pub fault_rate: f64,
    /// Seed driving both the assignment and all per-request randomness.
    pub seed: u64,
    /// Base latency of a healthy answer, in ticks.
    pub base_latency: u64,
}

impl FaultConfig {
    /// A fleet where `fault_rate` of sources are faulty, seeded.
    pub fn with_rate(fault_rate: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            fault_rate,
            seed,
            base_latency: 1,
        }
    }

    /// Deterministically assign profiles to `n` sources. Faulty sources draw
    /// uniformly from the six fault families with seeded parameters.
    pub fn assign(&self, n: usize) -> Vec<FaultProfile> {
        let mut rng = StdRng::seed_from_u64(mix(self.seed, 0x0fa1_7000, 0));
        (0..n)
            .map(|_| {
                // Draw the fault decision and the (potential) profile
                // unconditionally so a source's profile is identical across
                // different fault rates under the same seed.
                let roll: f64 = rng.gen();
                let profile = random_profile(&mut rng);
                if roll < self.fault_rate {
                    profile
                } else {
                    FaultProfile::Healthy
                }
            })
            .collect()
    }

    /// Deterministically assign *post-acquisition* payload fault profiles to
    /// `n` sources: every faulty source answers acquisition promptly but its
    /// payload is poisoned in a way only the pipeline stages can detect.
    /// Same nesting guarantee as [`FaultConfig::assign`]: a source faulty at
    /// rate `r` keeps the identical profile at any rate `r' > r` under the
    /// same seed. Independent stream from `assign` (different mix constant),
    /// so acquisition-time and payload faults can be layered freely.
    pub fn assign_payload(&self, n: usize) -> Vec<FaultProfile> {
        let mut rng = StdRng::seed_from_u64(mix(self.seed, 0x0fa1_7001, 0));
        (0..n)
            .map(|_| {
                let roll: f64 = rng.gen();
                let profile = random_payload_profile(&mut rng);
                if roll < self.fault_rate {
                    profile
                } else {
                    FaultProfile::Healthy
                }
            })
            .collect()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::with_rate(0.2, 17)
    }
}

fn random_profile(rng: &mut StdRng) -> FaultProfile {
    match rng.gen_range(0..6) {
        0 => FaultProfile::HardDown,
        1 => FaultProfile::Flap {
            period: rng.gen_range(6..16),
            up_fraction: rng.gen_range(0.3..0.7),
            phase: rng.gen_range(0..8),
        },
        2 => FaultProfile::Slow {
            latency: rng.gen_range(4..24),
        },
        3 => FaultProfile::Truncated {
            keep_fraction: rng.gen_range(0.2..0.8),
        },
        4 => FaultProfile::CorruptRows {
            cell_error_rate: rng.gen_range(0.05..0.3),
        },
        _ => FaultProfile::RateLimited {
            max_per_window: rng.gen_range(1..4),
            window: rng.gen_range(4..12),
        },
    }
}

fn random_payload_profile(rng: &mut StdRng) -> FaultProfile {
    match rng.gen_range(0..5) {
        0 => FaultProfile::SchemaDrift {
            drop: rng.gen_range(1..3),
        },
        1 => FaultProfile::TypePoison {
            cell_rate: rng.gen_range(0.15..0.5),
        },
        2 => FaultProfile::PathologicalStrings {
            cell_rate: rng.gen_range(0.1..0.4),
            len: rng.gen_range(4096..16384),
        },
        3 => FaultProfile::NonFinite {
            cell_rate: rng.gen_range(0.15..0.5),
        },
        _ => FaultProfile::Oversized {
            factor: rng.gen_range(4..8),
        },
    }
}

/// Per-source rate-limit bookkeeping (the only stateful fault).
#[derive(Debug, Clone, Copy, Default)]
struct RateState {
    window_index: u64,
    used: u32,
}

/// The fault layer a registry can carry: one profile per source plus the
/// mutable rate-limit state. Interior mutability keeps [`acquire`] usable
/// from `&self` (and hence from the scoped-thread fan-out in the pipeline).
///
/// [`acquire`]: crate::registry::SourceRegistry::acquire
#[derive(Debug)]
pub struct FaultLayer {
    profiles: Vec<FaultProfile>,
    seed: u64,
    base_latency: u64,
    rate_state: Mutex<Vec<RateState>>,
}

impl Clone for FaultLayer {
    fn clone(&self) -> Self {
        FaultLayer {
            profiles: self.profiles.clone(),
            seed: self.seed,
            base_latency: self.base_latency,
            rate_state: Mutex::new(self.rate_state.lock().expect("not poisoned").clone()), // lint-allow: no code path panics while holding the lock
        }
    }
}

impl FaultLayer {
    /// Build a layer for `n` sources from a fleet-level config.
    pub fn new(n: usize, cfg: &FaultConfig) -> FaultLayer {
        FaultLayer::from_profiles(cfg.assign(n), cfg.seed, cfg.base_latency)
    }

    /// Build a layer from explicit per-source profiles (targeted tests).
    pub fn from_profiles(profiles: Vec<FaultProfile>, seed: u64, base_latency: u64) -> FaultLayer {
        let n = profiles.len();
        FaultLayer {
            profiles,
            seed,
            base_latency,
            rate_state: Mutex::new(vec![RateState::default(); n]),
        }
    }

    /// The profile assigned to a source (Healthy when out of range — sources
    /// registered after injection behave as healthy).
    pub fn profile(&self, id: SourceId) -> FaultProfile {
        self.profiles
            .get(id.0 as usize)
            .copied()
            .unwrap_or(FaultProfile::Healthy)
    }

    /// Override one source's profile.
    pub fn set_profile(&mut self, id: SourceId, profile: FaultProfile) {
        let i = id.0 as usize;
        if i >= self.profiles.len() {
            self.profiles.resize(i + 1, FaultProfile::Healthy);
            self.rate_state
                .lock()
                .expect("not poisoned") // lint-allow: no code path panics while holding the lock
                .resize(i + 1, RateState::default());
        }
        self.profiles[i] = profile;
    }

    /// Evaluate one acquisition attempt against `table` (the source's true
    /// payload) at virtual tick `now`, with a per-attempt latency budget of
    /// `deadline` ticks.
    pub fn attempt(
        &self,
        id: SourceId,
        table: &Table,
        now: u64,
        deadline: u64,
    ) -> Result<SourceSnapshot, AcquireError> {
        let healthy = SourceSnapshot {
            id,
            latency: self.base_latency,
            degraded: None,
        };
        match self.profile(id) {
            FaultProfile::Healthy => Ok(healthy),
            FaultProfile::HardDown => Err(AcquireError::Unavailable { source: id }),
            FaultProfile::Flap {
                period,
                up_fraction,
                phase,
            } => {
                let pos = (now + phase) % period.max(1);
                if (pos as f64) < up_fraction * period.max(1) as f64 {
                    Ok(healthy)
                } else {
                    Err(AcquireError::Unavailable { source: id })
                }
            }
            FaultProfile::Slow { latency } => {
                if latency > deadline {
                    Err(AcquireError::DeadlineExceeded {
                        source: id,
                        latency,
                        deadline,
                    })
                } else {
                    Ok(SourceSnapshot {
                        id,
                        latency,
                        degraded: None,
                    })
                }
            }
            FaultProfile::Truncated { keep_fraction } => {
                let total = table.num_rows();
                let kept = ((total as f64 * keep_fraction).ceil() as usize).min(total);
                let mut out = Table::empty(table.schema().clone());
                for r in 0..kept {
                    out.push_row(table.row(r)).expect("same schema"); // lint-allow: row copied from a table with this schema
                }
                Ok(SourceSnapshot {
                    id,
                    latency: self.base_latency,
                    degraded: Some((Degradation::Truncated { kept, total }, out)),
                })
            }
            FaultProfile::CorruptRows { cell_error_rate } => {
                // Seed per (layer, source, tick): the same attempt replays
                // identically; a later retry sees fresh (but still
                // deterministic) noise.
                let mut rng = StdRng::seed_from_u64(mix(self.seed, u64::from(id.0), now));
                let mut out = Table::empty(table.schema().clone());
                let mut cells = 0usize;
                for r in 0..table.num_rows() {
                    let row: Vec<_> = table
                        .row(r)
                        .into_iter()
                        .map(|v| {
                            if rng.gen_bool(cell_error_rate.clamp(0.0, 1.0)) {
                                cells += 1;
                                corrupt(&v, &mut rng)
                            } else {
                                v
                            }
                        })
                        .collect();
                    out.push_row(row).expect("same arity"); // lint-allow: row built to this arity two lines up
                }
                Ok(SourceSnapshot {
                    id,
                    latency: self.base_latency,
                    degraded: Some((Degradation::CorruptCells { cells }, out)),
                })
            }
            FaultProfile::RateLimited {
                max_per_window,
                window,
            } => {
                let window = window.max(1);
                let wi = now / window;
                let mut state = self.rate_state.lock().expect("not poisoned"); // lint-allow: no code path panics while holding the lock
                let st = &mut state[id.0 as usize];
                if st.window_index != wi {
                    st.window_index = wi;
                    st.used = 0;
                }
                if st.used >= max_per_window {
                    Err(AcquireError::RateLimited {
                        source: id,
                        retry_after: (wi + 1) * window - now,
                    })
                } else {
                    st.used += 1;
                    Ok(healthy)
                }
            }
            FaultProfile::SchemaDrift { drop } => {
                let cols = table.num_columns();
                let kept = cols.saturating_sub(drop).max(2).min(cols);
                let mut fields: Vec<Field> = table.schema().fields()[..kept].to_vec();
                if let Some(last) = fields.last_mut() {
                    last.name = format!("{}_v2", last.name);
                }
                let schema = Schema::new(fields).unwrap_or_else(|_| {
                    // A `_v2` collision in the source schema: deliver the
                    // un-renamed column subset instead.
                    Schema::new(table.schema().fields()[..kept].to_vec())
                        .expect("prefix of unique names stays unique") // lint-allow: subset of a valid schema
                });
                let mut out = Table::empty(schema);
                for r in 0..table.num_rows() {
                    let mut row = table.row(r);
                    row.truncate(kept);
                    out.push_row(row).expect("row cut to schema arity"); // lint-allow: row truncated to arity one line up
                }
                Ok(SourceSnapshot {
                    id,
                    latency: self.base_latency,
                    degraded: Some((
                        Degradation::SchemaDrifted {
                            dropped: cols - kept,
                        },
                        out,
                    )),
                })
            }
            FaultProfile::TypePoison { cell_rate } => {
                let mut rng = StdRng::seed_from_u64(mix(self.seed, u64::from(id.0), now));
                let mut out = Table::empty(table.schema().clone());
                let mut cells = 0usize;
                for r in 0..table.num_rows() {
                    let row: Vec<_> = table
                        .row(r)
                        .into_iter()
                        .map(|v| {
                            if rng.gen_bool(cell_rate.clamp(0.0, 1.0)) {
                                cells += 1;
                                // Control-byte-framed garbage: exactly the
                                // payload shape the union poison scan exists
                                // to catch.
                                Value::Str(format!("\u{1}x{:08x}\u{2}", rng.gen::<u32>()))
                            } else {
                                v
                            }
                        })
                        .collect();
                    out.push_row(row).expect("same arity"); // lint-allow: row built to this arity
                }
                Ok(SourceSnapshot {
                    id,
                    latency: self.base_latency,
                    degraded: Some((Degradation::TypePoisoned { cells }, out)),
                })
            }
            FaultProfile::PathologicalStrings { cell_rate, len } => {
                let mut rng = StdRng::seed_from_u64(mix(self.seed, u64::from(id.0), now));
                let mut out = Table::empty(table.schema().clone());
                let mut cells = 0usize;
                for r in 0..table.num_rows() {
                    let row: Vec<_> = table
                        .row(r)
                        .into_iter()
                        .map(|v| match v {
                            Value::Str(s) if rng.gen_bool(cell_rate.clamp(0.0, 1.0)) => {
                                cells += 1;
                                let unit = if s.is_empty() { "x" } else { s.as_str() };
                                Value::Str(unit.repeat(len / unit.len().max(1) + 1))
                            }
                            other => other,
                        })
                        .collect();
                    out.push_row(row).expect("same arity"); // lint-allow: row built to this arity
                }
                Ok(SourceSnapshot {
                    id,
                    latency: self.base_latency,
                    degraded: Some((Degradation::Pathological { cells }, out)),
                })
            }
            FaultProfile::NonFinite { cell_rate } => {
                let mut rng = StdRng::seed_from_u64(mix(self.seed, u64::from(id.0), now));
                let mut out = Table::empty(table.schema().clone());
                let mut cells = 0usize;
                for r in 0..table.num_rows() {
                    let row: Vec<_> = table
                        .row(r)
                        .into_iter()
                        .map(|v| match v {
                            Value::Float(_) | Value::Int(_)
                                if rng.gen_bool(cell_rate.clamp(0.0, 1.0)) =>
                            {
                                cells += 1;
                                Value::Float(match rng.gen_range(0..3) {
                                    0 => f64::NAN,
                                    1 => f64::INFINITY,
                                    _ => f64::NEG_INFINITY,
                                })
                            }
                            other => other,
                        })
                        .collect();
                    out.push_row(row).expect("same arity"); // lint-allow: row built to this arity
                }
                Ok(SourceSnapshot {
                    id,
                    latency: self.base_latency,
                    degraded: Some((Degradation::NonFinite { cells }, out)),
                })
            }
            FaultProfile::Oversized { factor } => {
                let factor = factor.max(1) as usize;
                let mut out = Table::empty(table.schema().clone());
                for _ in 0..factor {
                    for r in 0..table.num_rows() {
                        out.push_row(table.row(r)).expect("same schema"); // lint-allow: row copied from a table with this schema
                    }
                }
                let rows = out.num_rows();
                Ok(SourceSnapshot {
                    id,
                    latency: self.base_latency,
                    degraded: Some((Degradation::Oversized { rows }, out)),
                })
            }
        }
    }
}

/// SplitMix64-style mixing of seed components into one RNG seed.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(a.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(b.wrapping_mul(0x94d0_49bb_1331_11eb));
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_table::{Schema, Value};

    fn table(rows: usize) -> Table {
        let mut t = Table::empty(Schema::of_strs(&["sku", "price"]));
        for i in 0..rows {
            t.push_row(vec![
                Value::Str(format!("sku{i}")),
                Value::Float(10.0 + i as f64),
            ])
            .unwrap();
        }
        t
    }

    fn layer(profile: FaultProfile) -> FaultLayer {
        FaultLayer::from_profiles(vec![profile], 11, 1)
    }

    #[test]
    fn healthy_is_intact() {
        let l = layer(FaultProfile::Healthy);
        let t = table(4);
        let s = l.attempt(SourceId(0), &t, 0, 8).unwrap();
        assert!(!s.is_degraded());
        assert_eq!(s.latency, 1);
    }

    #[test]
    fn hard_down_never_answers() {
        let l = layer(FaultProfile::HardDown);
        let t = table(4);
        for now in 0..50 {
            assert!(matches!(
                l.attempt(SourceId(0), &t, now, 8),
                Err(AcquireError::Unavailable { .. })
            ));
        }
    }

    #[test]
    fn flap_recovers_within_a_period() {
        let l = layer(FaultProfile::Flap {
            period: 10,
            up_fraction: 0.5,
            phase: 0,
        });
        let t = table(4);
        let up: Vec<bool> = (0..20)
            .map(|now| l.attempt(SourceId(0), &t, now, 8).is_ok())
            .collect();
        assert!(up.iter().any(|&b| b) && up.iter().any(|&b| !b));
        // Periodic: tick t and t+10 agree.
        for now in 0..10 {
            assert_eq!(up[now], up[now + 10]);
        }
    }

    #[test]
    fn slow_respects_deadline() {
        let l = layer(FaultProfile::Slow { latency: 12 });
        let t = table(4);
        assert!(matches!(
            l.attempt(SourceId(0), &t, 0, 8),
            Err(AcquireError::DeadlineExceeded { latency: 12, .. })
        ));
        let s = l.attempt(SourceId(0), &t, 0, 16).unwrap();
        assert_eq!(s.latency, 12);
    }

    #[test]
    fn truncation_keeps_prefix() {
        let l = layer(FaultProfile::Truncated { keep_fraction: 0.5 });
        let t = table(10);
        let s = l.attempt(SourceId(0), &t, 0, 8).unwrap();
        let (d, payload) = s.degraded.unwrap();
        assert_eq!(d, Degradation::Truncated { kept: 5, total: 10 });
        assert_eq!(payload.num_rows(), 5);
        assert_eq!(payload.row(0), t.row(0));
    }

    #[test]
    fn corruption_is_deterministic_per_tick() {
        let l = layer(FaultProfile::CorruptRows {
            cell_error_rate: 0.5,
        });
        let t = table(20);
        let a = l.attempt(SourceId(0), &t, 3, 8).unwrap();
        let b = l.attempt(SourceId(0), &t, 3, 8).unwrap();
        let (da, ta) = a.degraded.unwrap();
        let (db, tb) = b.degraded.unwrap();
        assert_eq!(da, db);
        for r in 0..ta.num_rows() {
            assert_eq!(ta.row(r), tb.row(r));
        }
        // A different tick draws different noise (overwhelmingly likely at
        // this rate and size).
        let c = l.attempt(SourceId(0), &t, 4, 8).unwrap();
        let (dc, _) = c.degraded.unwrap();
        assert!(matches!(dc, Degradation::CorruptCells { .. }));
    }

    #[test]
    fn rate_limit_exhausts_and_rolls_over() {
        let l = layer(FaultProfile::RateLimited {
            max_per_window: 2,
            window: 10,
        });
        let t = table(4);
        assert!(l.attempt(SourceId(0), &t, 0, 8).is_ok());
        assert!(l.attempt(SourceId(0), &t, 1, 8).is_ok());
        match l.attempt(SourceId(0), &t, 2, 8) {
            Err(AcquireError::RateLimited { retry_after, .. }) => assert_eq!(retry_after, 8),
            other => panic!("expected rate limit, got {other:?}"),
        }
        // Next window serves again.
        assert!(l.attempt(SourceId(0), &t, 10, 8).is_ok());
    }

    #[test]
    fn assignment_is_deterministic_and_rate_scaled() {
        let cfg = FaultConfig::with_rate(0.5, 42);
        let a = cfg.assign(100);
        let b = cfg.assign(100);
        assert_eq!(a, b);
        let faulty = a.iter().filter(|p| **p != FaultProfile::Healthy).count();
        assert!((30..=70).contains(&faulty), "got {faulty} faulty of 100");
        // Zero rate means all healthy; full rate means none healthy.
        assert!(FaultConfig::with_rate(0.0, 42)
            .assign(50)
            .iter()
            .all(|p| *p == FaultProfile::Healthy));
        assert!(FaultConfig::with_rate(1.0, 42)
            .assign(50)
            .iter()
            .all(|p| *p != FaultProfile::Healthy));
    }

    #[test]
    fn profiles_nest_across_rates() {
        // A source faulty at rate r stays faulty (same profile) at r' > r.
        let lo = FaultConfig::with_rate(0.2, 9).assign(60);
        let hi = FaultConfig::with_rate(0.6, 9).assign(60);
        for (a, b) in lo.iter().zip(hi.iter()) {
            if *a != FaultProfile::Healthy {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn schema_drift_drops_and_renames_columns() {
        let l = layer(FaultProfile::SchemaDrift { drop: 1 });
        let mut t = Table::empty(Schema::of_strs(&["sku", "price", "stock"]));
        t.push_row(vec![
            Value::Str("sku0".into()),
            Value::Float(9.5),
            Value::Int(3),
        ])
        .unwrap();
        let s = l.attempt(SourceId(0), &t, 0, 8).unwrap();
        let (d, payload) = s.degraded.unwrap();
        assert_eq!(d, Degradation::SchemaDrifted { dropped: 1 });
        assert_eq!(payload.num_columns(), 2);
        assert_eq!(payload.schema().names(), vec!["sku", "price_v2"]);
        assert_eq!(payload.get(0, 1).unwrap(), &Value::Float(9.5));
        // Never drifts below two columns.
        let l = layer(FaultProfile::SchemaDrift { drop: 9 });
        let s = l.attempt(SourceId(0), &t, 0, 8).unwrap();
        let (_, payload) = s.degraded.unwrap();
        assert_eq!(payload.num_columns(), 2);
    }

    #[test]
    fn type_poison_plants_control_bytes() {
        let l = layer(FaultProfile::TypePoison { cell_rate: 0.5 });
        let t = table(20);
        let s = l.attempt(SourceId(0), &t, 0, 8).unwrap();
        let (d, payload) = s.degraded.unwrap();
        let cells = match d {
            Degradation::TypePoisoned { cells } => cells,
            other => panic!("unexpected degradation {other:?}"),
        };
        assert!(cells > 0);
        let poisoned = payload
            .iter_rows()
            .flatten()
            .filter(|v| {
                v.as_str()
                    .is_some_and(|s| s.chars().any(|c| c.is_control()))
            })
            .count();
        assert_eq!(poisoned, cells);
        // Deterministic per tick.
        let s2 = l.attempt(SourceId(0), &t, 0, 8).unwrap();
        assert_eq!(s2.degraded.unwrap().0, Degradation::TypePoisoned { cells });
    }

    #[test]
    fn pathological_strings_inflate_past_len() {
        let l = layer(FaultProfile::PathologicalStrings {
            cell_rate: 0.9,
            len: 512,
        });
        let t = table(10);
        let s = l.attempt(SourceId(0), &t, 0, 8).unwrap();
        let (d, payload) = s.degraded.unwrap();
        assert!(matches!(d, Degradation::Pathological { cells } if cells > 0));
        let max_len = payload
            .iter_rows()
            .flatten()
            .filter_map(|v| v.as_str().map(str::len))
            .max()
            .unwrap();
        assert!(max_len > 512, "inflated to {max_len}");
    }

    #[test]
    fn non_finite_poisons_numeric_cells_only() {
        let l = layer(FaultProfile::NonFinite { cell_rate: 0.9 });
        let t = table(10);
        let s = l.attempt(SourceId(0), &t, 0, 8).unwrap();
        let (d, payload) = s.degraded.unwrap();
        assert!(matches!(d, Degradation::NonFinite { cells } if cells > 0));
        let bad = payload
            .iter_rows()
            .flatten()
            .filter(|v| matches!(v, Value::Float(f) if !f.is_finite()))
            .count();
        assert!(bad > 0);
        // String column untouched.
        assert!(payload
            .column_named("sku")
            .unwrap()
            .iter()
            .all(|v| v.as_str().is_some()));
    }

    #[test]
    fn oversized_repeats_rows() {
        let l = layer(FaultProfile::Oversized { factor: 4 });
        let t = table(5);
        let s = l.attempt(SourceId(0), &t, 0, 8).unwrap();
        let (d, payload) = s.degraded.unwrap();
        assert_eq!(d, Degradation::Oversized { rows: 20 });
        assert_eq!(payload.num_rows(), 20);
        assert_eq!(payload.row(0), payload.row(5));
    }

    #[test]
    fn payload_assignment_is_deterministic_nested_and_independent() {
        let cfg = FaultConfig::with_rate(0.5, 42);
        let a = cfg.assign_payload(100);
        assert_eq!(a, cfg.assign_payload(100));
        let faulty = a.iter().filter(|p| **p != FaultProfile::Healthy).count();
        assert!((30..=70).contains(&faulty), "got {faulty} faulty of 100");
        // Every faulty profile is a payload fault, not an acquisition fault.
        assert!(a.iter().all(|p| matches!(
            p,
            FaultProfile::Healthy
                | FaultProfile::SchemaDrift { .. }
                | FaultProfile::TypePoison { .. }
                | FaultProfile::PathologicalStrings { .. }
                | FaultProfile::NonFinite { .. }
                | FaultProfile::Oversized { .. }
        )));
        // Nesting across rates, like `assign`.
        let lo = FaultConfig::with_rate(0.2, 9).assign_payload(60);
        let hi = FaultConfig::with_rate(0.6, 9).assign_payload(60);
        for (a, b) in lo.iter().zip(hi.iter()) {
            if *a != FaultProfile::Healthy {
                assert_eq!(a, b);
            }
        }
        // Independent stream from acquisition-fault assignment.
        assert_ne!(cfg.assign(100), a);
    }

    #[test]
    fn error_display_and_helpers() {
        let e = AcquireError::RateLimited {
            source: SourceId(3),
            retry_after: 5,
        };
        assert!(e.to_string().contains("src3"));
        assert!(e.is_retriable());
        assert_eq!(e.source(), SourceId(3));
        assert!(!AcquireError::UnknownSource(SourceId(1)).is_retriable());
    }
}
