//! Deterministic fault injection for the source fleet.
//!
//! Real wrangling pipelines acquire data from sources that fail: sites go
//! down, rate-limit crawlers, time out, or return truncated / garbled
//! payloads (§2's Variety and Veracity both have an *operational* face the
//! paper's quality dimensions only see after the fact). This module gives the
//! synthetic fleet that operational face in a fully **seeded, virtual-time**
//! way so robustness experiments (E11) are reproducible bit-for-bit:
//!
//! * every source carries a [`FaultProfile`];
//! * acquisition goes through [`SourceRegistry::acquire`], which consults the
//!   profile at a caller-supplied virtual tick and either yields a
//!   [`SourceSnapshot`] (possibly degraded) or an [`AcquireError`];
//! * no wall-clock time is involved anywhere — flapping, rate-limit windows
//!   and latencies are all functions of the tick, so a retry loop that
//!   advances its own virtual clock sees exactly the behaviour a live
//!   acquisition layer would, deterministically.

use std::fmt;
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wrangler_table::Table;

use crate::registry::SourceId;
use crate::synthetic::corrupt;

/// How a source (mis)behaves when accessed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultProfile {
    /// Answers every request promptly and intact.
    Healthy,
    /// Never answers (site gone, credentials revoked, firewalled).
    HardDown,
    /// Alternates availability: up for `up_fraction` of every `period`
    /// ticks, shifted by `phase`. A retry that waits long enough succeeds.
    Flap {
        /// Length of one up/down cycle in ticks.
        period: u64,
        /// Fraction of the cycle the source is up, in (0, 1).
        up_fraction: f64,
        /// Offset into the cycle, so sources don't flap in lockstep.
        phase: u64,
    },
    /// Answers, but only after `latency` ticks — callers with a tighter
    /// per-attempt deadline give up first.
    Slow {
        /// Ticks before the payload arrives.
        latency: u64,
    },
    /// Answers promptly but delivers only a prefix of its rows.
    Truncated {
        /// Fraction of rows delivered, in (0, 1].
        keep_fraction: f64,
    },
    /// Answers promptly but garbles cells on the way out.
    CorruptRows {
        /// Per-cell corruption probability, in \[0, 1\].
        cell_error_rate: f64,
    },
    /// Serves at most `max_per_window` requests per `window` ticks, then
    /// rejects with a retry-after hint until the window rolls over.
    RateLimited {
        /// Requests served per window.
        max_per_window: u32,
        /// Window length in ticks.
        window: u64,
    },
}

/// Why an acquisition attempt failed.
#[derive(Debug, Clone, PartialEq)]
pub enum AcquireError {
    /// The id does not name a registered source.
    UnknownSource(SourceId),
    /// The source did not answer (hard-down, or a flapping source currently
    /// in its down phase — the caller cannot tell which, just like a client
    /// of a real endpoint cannot).
    Unavailable {
        /// Which source.
        source: SourceId,
    },
    /// The source would have answered, but not within the caller's
    /// per-attempt deadline.
    DeadlineExceeded {
        /// Which source.
        source: SourceId,
        /// Ticks the source needed.
        latency: u64,
        /// Ticks the caller was willing to wait.
        deadline: u64,
    },
    /// The source's rate limit is exhausted for the current window.
    RateLimited {
        /// Which source.
        source: SourceId,
        /// Ticks until the window rolls over and requests are served again.
        retry_after: u64,
    },
}

impl AcquireError {
    /// The source the error concerns.
    pub fn source(&self) -> SourceId {
        match self {
            AcquireError::UnknownSource(s)
            | AcquireError::Unavailable { source: s }
            | AcquireError::DeadlineExceeded { source: s, .. }
            | AcquireError::RateLimited { source: s, .. } => *s,
        }
    }

    /// Whether retrying the same request later could possibly succeed.
    pub fn is_retriable(&self) -> bool {
        !matches!(self, AcquireError::UnknownSource(_))
    }
}

impl fmt::Display for AcquireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcquireError::UnknownSource(s) => write!(f, "{s}: no such source"),
            AcquireError::Unavailable { source } => write!(f, "{source}: unavailable"),
            AcquireError::DeadlineExceeded {
                source,
                latency,
                deadline,
            } => write!(
                f,
                "{source}: needs {latency} ticks, deadline was {deadline}"
            ),
            AcquireError::RateLimited {
                source,
                retry_after,
            } => write!(f, "{source}: rate limited, retry after {retry_after} ticks"),
        }
    }
}

impl std::error::Error for AcquireError {}

/// How a delivered payload differs from the source's true table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// Only a prefix of the rows arrived.
    Truncated {
        /// Rows delivered.
        kept: usize,
        /// Rows the source actually has.
        total: usize,
    },
    /// Some cells were garbled in transit.
    CorruptCells {
        /// Number of cells corrupted.
        cells: usize,
    },
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Degradation::Truncated { kept, total } => {
                write!(f, "truncated to {kept}/{total} rows")
            }
            Degradation::CorruptCells { cells } => write!(f, "{cells} cells corrupted"),
        }
    }
}

/// A successful acquisition: what arrived and what it cost.
#[derive(Debug, Clone)]
pub struct SourceSnapshot {
    /// Which source answered.
    pub id: SourceId,
    /// Virtual ticks the request took.
    pub latency: u64,
    /// `Some((how, payload))` when the payload differs from the registry's
    /// table; `None` means the registry table arrived intact (no copy made).
    pub degraded: Option<(Degradation, Table)>,
}

impl SourceSnapshot {
    /// True if the payload differs from the source's true table.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }
}

/// Configuration for assigning fault profiles across a fleet.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Fraction of sources that get a non-healthy profile, in \[0, 1\].
    pub fault_rate: f64,
    /// Seed driving both the assignment and all per-request randomness.
    pub seed: u64,
    /// Base latency of a healthy answer, in ticks.
    pub base_latency: u64,
}

impl FaultConfig {
    /// A fleet where `fault_rate` of sources are faulty, seeded.
    pub fn with_rate(fault_rate: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            fault_rate,
            seed,
            base_latency: 1,
        }
    }

    /// Deterministically assign profiles to `n` sources. Faulty sources draw
    /// uniformly from the six fault families with seeded parameters.
    pub fn assign(&self, n: usize) -> Vec<FaultProfile> {
        let mut rng = StdRng::seed_from_u64(mix(self.seed, 0x0fa1_7000, 0));
        (0..n)
            .map(|_| {
                // Draw the fault decision and the (potential) profile
                // unconditionally so a source's profile is identical across
                // different fault rates under the same seed.
                let roll: f64 = rng.gen();
                let profile = random_profile(&mut rng);
                if roll < self.fault_rate {
                    profile
                } else {
                    FaultProfile::Healthy
                }
            })
            .collect()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::with_rate(0.2, 17)
    }
}

fn random_profile(rng: &mut StdRng) -> FaultProfile {
    match rng.gen_range(0..6) {
        0 => FaultProfile::HardDown,
        1 => FaultProfile::Flap {
            period: rng.gen_range(6..16),
            up_fraction: rng.gen_range(0.3..0.7),
            phase: rng.gen_range(0..8),
        },
        2 => FaultProfile::Slow {
            latency: rng.gen_range(4..24),
        },
        3 => FaultProfile::Truncated {
            keep_fraction: rng.gen_range(0.2..0.8),
        },
        4 => FaultProfile::CorruptRows {
            cell_error_rate: rng.gen_range(0.05..0.3),
        },
        _ => FaultProfile::RateLimited {
            max_per_window: rng.gen_range(1..4),
            window: rng.gen_range(4..12),
        },
    }
}

/// Per-source rate-limit bookkeeping (the only stateful fault).
#[derive(Debug, Clone, Copy, Default)]
struct RateState {
    window_index: u64,
    used: u32,
}

/// The fault layer a registry can carry: one profile per source plus the
/// mutable rate-limit state. Interior mutability keeps [`acquire`] usable
/// from `&self` (and hence from the scoped-thread fan-out in the pipeline).
///
/// [`acquire`]: crate::registry::SourceRegistry::acquire
#[derive(Debug)]
pub struct FaultLayer {
    profiles: Vec<FaultProfile>,
    seed: u64,
    base_latency: u64,
    rate_state: Mutex<Vec<RateState>>,
}

impl Clone for FaultLayer {
    fn clone(&self) -> Self {
        FaultLayer {
            profiles: self.profiles.clone(),
            seed: self.seed,
            base_latency: self.base_latency,
            rate_state: Mutex::new(self.rate_state.lock().expect("not poisoned").clone()), // lint-allow: no code path panics while holding the lock
        }
    }
}

impl FaultLayer {
    /// Build a layer for `n` sources from a fleet-level config.
    pub fn new(n: usize, cfg: &FaultConfig) -> FaultLayer {
        FaultLayer::from_profiles(cfg.assign(n), cfg.seed, cfg.base_latency)
    }

    /// Build a layer from explicit per-source profiles (targeted tests).
    pub fn from_profiles(profiles: Vec<FaultProfile>, seed: u64, base_latency: u64) -> FaultLayer {
        let n = profiles.len();
        FaultLayer {
            profiles,
            seed,
            base_latency,
            rate_state: Mutex::new(vec![RateState::default(); n]),
        }
    }

    /// The profile assigned to a source (Healthy when out of range — sources
    /// registered after injection behave as healthy).
    pub fn profile(&self, id: SourceId) -> FaultProfile {
        self.profiles
            .get(id.0 as usize)
            .copied()
            .unwrap_or(FaultProfile::Healthy)
    }

    /// Override one source's profile.
    pub fn set_profile(&mut self, id: SourceId, profile: FaultProfile) {
        let i = id.0 as usize;
        if i >= self.profiles.len() {
            self.profiles.resize(i + 1, FaultProfile::Healthy);
            self.rate_state
                .lock()
                .expect("not poisoned") // lint-allow: no code path panics while holding the lock
                .resize(i + 1, RateState::default());
        }
        self.profiles[i] = profile;
    }

    /// Evaluate one acquisition attempt against `table` (the source's true
    /// payload) at virtual tick `now`, with a per-attempt latency budget of
    /// `deadline` ticks.
    pub fn attempt(
        &self,
        id: SourceId,
        table: &Table,
        now: u64,
        deadline: u64,
    ) -> Result<SourceSnapshot, AcquireError> {
        let healthy = SourceSnapshot {
            id,
            latency: self.base_latency,
            degraded: None,
        };
        match self.profile(id) {
            FaultProfile::Healthy => Ok(healthy),
            FaultProfile::HardDown => Err(AcquireError::Unavailable { source: id }),
            FaultProfile::Flap {
                period,
                up_fraction,
                phase,
            } => {
                let pos = (now + phase) % period.max(1);
                if (pos as f64) < up_fraction * period.max(1) as f64 {
                    Ok(healthy)
                } else {
                    Err(AcquireError::Unavailable { source: id })
                }
            }
            FaultProfile::Slow { latency } => {
                if latency > deadline {
                    Err(AcquireError::DeadlineExceeded {
                        source: id,
                        latency,
                        deadline,
                    })
                } else {
                    Ok(SourceSnapshot {
                        id,
                        latency,
                        degraded: None,
                    })
                }
            }
            FaultProfile::Truncated { keep_fraction } => {
                let total = table.num_rows();
                let kept = ((total as f64 * keep_fraction).ceil() as usize).min(total);
                let mut out = Table::empty(table.schema().clone());
                for r in 0..kept {
                    out.push_row(table.row(r)).expect("same schema"); // lint-allow: row copied from a table with this schema
                }
                Ok(SourceSnapshot {
                    id,
                    latency: self.base_latency,
                    degraded: Some((Degradation::Truncated { kept, total }, out)),
                })
            }
            FaultProfile::CorruptRows { cell_error_rate } => {
                // Seed per (layer, source, tick): the same attempt replays
                // identically; a later retry sees fresh (but still
                // deterministic) noise.
                let mut rng = StdRng::seed_from_u64(mix(self.seed, u64::from(id.0), now));
                let mut out = Table::empty(table.schema().clone());
                let mut cells = 0usize;
                for r in 0..table.num_rows() {
                    let row: Vec<_> = table
                        .row(r)
                        .into_iter()
                        .map(|v| {
                            if rng.gen_bool(cell_error_rate.clamp(0.0, 1.0)) {
                                cells += 1;
                                corrupt(&v, &mut rng)
                            } else {
                                v
                            }
                        })
                        .collect();
                    out.push_row(row).expect("same arity"); // lint-allow: row built to this arity two lines up
                }
                Ok(SourceSnapshot {
                    id,
                    latency: self.base_latency,
                    degraded: Some((Degradation::CorruptCells { cells }, out)),
                })
            }
            FaultProfile::RateLimited {
                max_per_window,
                window,
            } => {
                let window = window.max(1);
                let wi = now / window;
                let mut state = self.rate_state.lock().expect("not poisoned"); // lint-allow: no code path panics while holding the lock
                let st = &mut state[id.0 as usize];
                if st.window_index != wi {
                    st.window_index = wi;
                    st.used = 0;
                }
                if st.used >= max_per_window {
                    Err(AcquireError::RateLimited {
                        source: id,
                        retry_after: (wi + 1) * window - now,
                    })
                } else {
                    st.used += 1;
                    Ok(healthy)
                }
            }
        }
    }
}

/// SplitMix64-style mixing of seed components into one RNG seed.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(a.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(b.wrapping_mul(0x94d0_49bb_1331_11eb));
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrangler_table::{Schema, Value};

    fn table(rows: usize) -> Table {
        let mut t = Table::empty(Schema::of_strs(&["sku", "price"]));
        for i in 0..rows {
            t.push_row(vec![
                Value::Str(format!("sku{i}")),
                Value::Float(10.0 + i as f64),
            ])
            .unwrap();
        }
        t
    }

    fn layer(profile: FaultProfile) -> FaultLayer {
        FaultLayer::from_profiles(vec![profile], 11, 1)
    }

    #[test]
    fn healthy_is_intact() {
        let l = layer(FaultProfile::Healthy);
        let t = table(4);
        let s = l.attempt(SourceId(0), &t, 0, 8).unwrap();
        assert!(!s.is_degraded());
        assert_eq!(s.latency, 1);
    }

    #[test]
    fn hard_down_never_answers() {
        let l = layer(FaultProfile::HardDown);
        let t = table(4);
        for now in 0..50 {
            assert!(matches!(
                l.attempt(SourceId(0), &t, now, 8),
                Err(AcquireError::Unavailable { .. })
            ));
        }
    }

    #[test]
    fn flap_recovers_within_a_period() {
        let l = layer(FaultProfile::Flap {
            period: 10,
            up_fraction: 0.5,
            phase: 0,
        });
        let t = table(4);
        let up: Vec<bool> = (0..20)
            .map(|now| l.attempt(SourceId(0), &t, now, 8).is_ok())
            .collect();
        assert!(up.iter().any(|&b| b) && up.iter().any(|&b| !b));
        // Periodic: tick t and t+10 agree.
        for now in 0..10 {
            assert_eq!(up[now], up[now + 10]);
        }
    }

    #[test]
    fn slow_respects_deadline() {
        let l = layer(FaultProfile::Slow { latency: 12 });
        let t = table(4);
        assert!(matches!(
            l.attempt(SourceId(0), &t, 0, 8),
            Err(AcquireError::DeadlineExceeded { latency: 12, .. })
        ));
        let s = l.attempt(SourceId(0), &t, 0, 16).unwrap();
        assert_eq!(s.latency, 12);
    }

    #[test]
    fn truncation_keeps_prefix() {
        let l = layer(FaultProfile::Truncated { keep_fraction: 0.5 });
        let t = table(10);
        let s = l.attempt(SourceId(0), &t, 0, 8).unwrap();
        let (d, payload) = s.degraded.unwrap();
        assert_eq!(d, Degradation::Truncated { kept: 5, total: 10 });
        assert_eq!(payload.num_rows(), 5);
        assert_eq!(payload.row(0), t.row(0));
    }

    #[test]
    fn corruption_is_deterministic_per_tick() {
        let l = layer(FaultProfile::CorruptRows {
            cell_error_rate: 0.5,
        });
        let t = table(20);
        let a = l.attempt(SourceId(0), &t, 3, 8).unwrap();
        let b = l.attempt(SourceId(0), &t, 3, 8).unwrap();
        let (da, ta) = a.degraded.unwrap();
        let (db, tb) = b.degraded.unwrap();
        assert_eq!(da, db);
        for r in 0..ta.num_rows() {
            assert_eq!(ta.row(r), tb.row(r));
        }
        // A different tick draws different noise (overwhelmingly likely at
        // this rate and size).
        let c = l.attempt(SourceId(0), &t, 4, 8).unwrap();
        let (dc, _) = c.degraded.unwrap();
        assert!(matches!(dc, Degradation::CorruptCells { .. }));
    }

    #[test]
    fn rate_limit_exhausts_and_rolls_over() {
        let l = layer(FaultProfile::RateLimited {
            max_per_window: 2,
            window: 10,
        });
        let t = table(4);
        assert!(l.attempt(SourceId(0), &t, 0, 8).is_ok());
        assert!(l.attempt(SourceId(0), &t, 1, 8).is_ok());
        match l.attempt(SourceId(0), &t, 2, 8) {
            Err(AcquireError::RateLimited { retry_after, .. }) => assert_eq!(retry_after, 8),
            other => panic!("expected rate limit, got {other:?}"),
        }
        // Next window serves again.
        assert!(l.attempt(SourceId(0), &t, 10, 8).is_ok());
    }

    #[test]
    fn assignment_is_deterministic_and_rate_scaled() {
        let cfg = FaultConfig::with_rate(0.5, 42);
        let a = cfg.assign(100);
        let b = cfg.assign(100);
        assert_eq!(a, b);
        let faulty = a.iter().filter(|p| **p != FaultProfile::Healthy).count();
        assert!((30..=70).contains(&faulty), "got {faulty} faulty of 100");
        // Zero rate means all healthy; full rate means none healthy.
        assert!(FaultConfig::with_rate(0.0, 42)
            .assign(50)
            .iter()
            .all(|p| *p == FaultProfile::Healthy));
        assert!(FaultConfig::with_rate(1.0, 42)
            .assign(50)
            .iter()
            .all(|p| *p != FaultProfile::Healthy));
    }

    #[test]
    fn profiles_nest_across_rates() {
        // A source faulty at rate r stays faulty (same profile) at r' > r.
        let lo = FaultConfig::with_rate(0.2, 9).assign(60);
        let hi = FaultConfig::with_rate(0.6, 9).assign(60);
        for (a, b) in lo.iter().zip(hi.iter()) {
            if *a != FaultProfile::Healthy {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn error_display_and_helpers() {
        let e = AcquireError::RateLimited {
            source: SourceId(3),
            retry_after: 5,
        };
        assert!(e.to_string().contains("src3"));
        assert!(e.is_retriable());
        assert_eq!(e.source(), SourceId(3));
        assert!(!AcquireError::UnknownSource(SourceId(1)).is_retriable());
    }
}
