//! Synthetic business-locations data (Example 3).
//!
//! "Many social networks offer the ability for users to check-in to places
//! ... this way of acquiring data is prone to data quality problems, e.g.,
//! wrong geo-locations, misspelled or fantasy places." The generator
//! produces a ground-truth set of businesses, a noisy *check-in feed*
//! exhibiting exactly those defects, and the authoritative business websites
//! (as structured rows) a wrangling process can wrap to correct them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wrangler_table::{Table, Value};

use crate::synthetic::typo;

/// One true business.
#[derive(Debug, Clone)]
pub struct BusinessTruth {
    /// Unique business name.
    pub name: String,
    /// Street address.
    pub address: String,
    /// City.
    pub city: String,
    /// Latitude.
    pub lat: f64,
    /// Longitude.
    pub lon: f64,
    /// Category.
    pub category: String,
    /// Website URL (the key that lets extraction target the right site).
    pub url: String,
}

/// Generated ground truth plus derived datasets.
#[derive(Debug, Clone)]
pub struct LocationWorld {
    /// True businesses.
    pub businesses: Vec<BusinessTruth>,
    /// The noisy check-in feed (social-network acquired data).
    pub checkins: Table,
    /// Per-check-in defect labels, aligned with `checkins` rows:
    /// `(wrong_geo, misspelled, fantasy)`.
    pub defects: Vec<(bool, bool, bool)>,
}

/// Noise configuration for the check-in feed.
#[derive(Debug, Clone, Copy)]
pub struct CheckinConfig {
    /// Number of businesses in the world.
    pub num_businesses: usize,
    /// Check-ins to generate.
    pub num_checkins: usize,
    /// Probability a check-in has a wrongly shifted geo-location.
    pub wrong_geo_rate: f64,
    /// Probability the place name is misspelled.
    pub misspell_rate: f64,
    /// Probability the check-in refers to a fantasy (nonexistent) place.
    pub fantasy_rate: f64,
}

impl Default for CheckinConfig {
    fn default() -> Self {
        CheckinConfig {
            num_businesses: 100,
            num_checkins: 500,
            wrong_geo_rate: 0.1,
            misspell_rate: 0.15,
            fantasy_rate: 0.05,
        }
    }
}

const STREETS: [&str; 8] = [
    "High St",
    "Station Rd",
    "Church Ln",
    "Victoria Ave",
    "Mill Rd",
    "King St",
    "Park Ln",
    "Bridge St",
];
const CITIES: [&str; 5] = ["Oxford", "Edinburgh", "Birmingham", "Manchester", "London"];
const KINDS: [&str; 6] = ["restaurant", "cafe", "cinema", "gym", "bookshop", "bakery"];
const NAME_A: [&str; 8] = [
    "Golden", "Royal", "Corner", "Old", "Little", "Grand", "Blue", "Silver",
];
const NAME_B: [&str; 8] = [
    "Lion", "Crown", "Bridge", "Garden", "Star", "Anchor", "Oak", "Swan",
];

/// Generate a location world deterministically.
pub fn generate_locations(cfg: &CheckinConfig, seed: u64) -> LocationWorld {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut businesses = Vec::with_capacity(cfg.num_businesses);
    for i in 0..cfg.num_businesses {
        let kind = KINDS[rng.gen_range(0..KINDS.len())];
        let name = format!(
            "{} {} {kind} {}",
            NAME_A[rng.gen_range(0..NAME_A.len())],
            NAME_B[rng.gen_range(0..NAME_B.len())],
            i
        );
        let city = CITIES[rng.gen_range(0..CITIES.len())];
        businesses.push(BusinessTruth {
            url: format!("https://biz{i:04}.example"),
            name,
            address: format!(
                "{} {}",
                rng.gen_range(1..200),
                STREETS[rng.gen_range(0..STREETS.len())]
            ),
            city: city.to_string(),
            lat: 50.0 + rng.gen_range(0.0..8.0),
            lon: -5.0 + rng.gen_range(0.0..6.0),
            category: kind.to_string(),
        });
    }

    let mut rows = Vec::with_capacity(cfg.num_checkins);
    let mut defects = Vec::with_capacity(cfg.num_checkins);
    for _ in 0..cfg.num_checkins {
        let fantasy = rng.gen::<f64>() < cfg.fantasy_rate;
        if fantasy {
            rows.push(vec![
                Value::from(format!(
                    "{} {} palace {}",
                    NAME_A[rng.gen_range(0..NAME_A.len())],
                    NAME_B[rng.gen_range(0..NAME_B.len())],
                    rng.gen_range(1000..9999)
                )),
                Value::Float(50.0 + rng.gen::<f64>() * 8.0),
                Value::Float(-5.0 + rng.gen::<f64>() * 6.0),
                Value::Null,
            ]);
            defects.push((false, false, true));
            continue;
        }
        let b = &businesses[rng.gen_range(0..businesses.len())];
        let wrong_geo = rng.gen::<f64>() < cfg.wrong_geo_rate;
        let misspelled = rng.gen::<f64>() < cfg.misspell_rate;
        let name = if misspelled {
            typo(&b.name, &mut rng)
        } else {
            b.name.clone()
        };
        let (lat, lon) = if wrong_geo {
            (
                b.lat + rng.gen_range(0.5..3.0),
                b.lon - rng.gen_range(0.5..3.0),
            )
        } else {
            // Honest GPS jitter well below the wrong-geo threshold.
            (
                b.lat + rng.gen_range(-0.001..0.001),
                b.lon + rng.gen_range(-0.001..0.001),
            )
        };
        rows.push(vec![
            Value::from(name),
            Value::Float(lat),
            Value::Float(lon),
            Value::from(b.url.clone()),
        ]);
        defects.push((wrong_geo, misspelled, false));
    }
    let checkins = Table::literal(&["place", "lat", "lon", "url"], rows).expect("consistent arity"); // lint-allow: literal rows, fixed arity
    LocationWorld {
        businesses,
        checkins,
        defects,
    }
}

impl LocationWorld {
    /// The authoritative table "extracted" from the business's own website —
    /// the informed-extraction target of Example 3.
    pub fn website_table(&self) -> Table {
        let rows = self
            .businesses
            .iter()
            .map(|b| {
                vec![
                    Value::from(b.url.clone()),
                    b.name.clone().into(),
                    b.address.clone().into(),
                    b.city.clone().into(),
                    Value::Float(b.lat),
                    Value::Float(b.lon),
                    b.category.clone().into(),
                ]
            })
            .collect();
        Table::literal(
            &["url", "name", "address", "city", "lat", "lon", "category"],
            rows,
        )
        .expect("consistent arity") // lint-allow: literal rows, fixed arity
    }

    /// Find the true business for a (possibly misspelled) check-in name by
    /// URL; `None` for fantasy check-ins.
    pub fn business_for_url(&self, url: &str) -> Option<&BusinessTruth> {
        self.businesses.iter().find(|b| b.url == url)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = generate_locations(&CheckinConfig::default(), 5);
        let b = generate_locations(&CheckinConfig::default(), 5);
        assert_eq!(a.businesses.len(), b.businesses.len());
        assert_eq!(a.checkins.num_rows(), b.checkins.num_rows());
        assert_eq!(a.defects, b.defects);
    }

    #[test]
    fn defect_rates_approximately_match() {
        let cfg = CheckinConfig {
            num_checkins: 4000,
            ..CheckinConfig::default()
        };
        let w = generate_locations(&cfg, 11);
        let fantasy = w.defects.iter().filter(|d| d.2).count() as f64 / 4000.0;
        let wrong = w.defects.iter().filter(|d| d.0).count() as f64 / 4000.0;
        let misspelled = w.defects.iter().filter(|d| d.1).count() as f64 / 4000.0;
        assert!((fantasy - 0.05).abs() < 0.02, "{fantasy}");
        assert!((wrong - 0.1 * 0.95).abs() < 0.03, "{wrong}");
        assert!((misspelled - 0.15 * 0.95).abs() < 0.03, "{misspelled}");
    }

    #[test]
    fn fantasy_checkins_have_no_url() {
        let w = generate_locations(&CheckinConfig::default(), 3);
        for (i, d) in w.defects.iter().enumerate() {
            let url = w.checkins.get_named(i, "url").unwrap();
            if d.2 {
                assert!(url.is_null());
            } else {
                assert!(!url.is_null());
                assert!(w.business_for_url(url.as_str().unwrap()).is_some());
            }
        }
    }

    #[test]
    fn clean_checkins_geolocate_near_truth() {
        let w = generate_locations(&CheckinConfig::default(), 7);
        for (i, d) in w.defects.iter().enumerate() {
            if d.0 || d.2 {
                continue;
            }
            let url = w
                .checkins
                .get_named(i, "url")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            let b = w.business_for_url(&url).unwrap();
            let lat = w.checkins.get_named(i, "lat").unwrap().as_f64().unwrap();
            assert!((lat - b.lat).abs() < 0.01);
        }
    }

    #[test]
    fn website_table_is_complete_and_keyed_by_url() {
        let w = generate_locations(&CheckinConfig::default(), 1);
        let t = w.website_table();
        assert_eq!(t.num_rows(), w.businesses.len());
        let urls = t.column_named("url").unwrap();
        let distinct: std::collections::HashSet<_> = urls.iter().collect();
        assert_eq!(distinct.len(), t.num_rows());
    }
}
