//! Property tests for source selection: greedy utility selection is a pure
//! function of the estimate *set* — shuffling the candidates never changes
//! which sources are picked, even when estimate fields are NaN (a source
//! whose profiling diverged must not scramble the ranking of the others).

use proptest::prelude::*;
use wrangler_context::UserContext;
use wrangler_sources::selection::{select_greedy_utility, SourceEstimate};
use wrangler_sources::SourceId;

/// Estimate fields, possibly-NaN where profiling can diverge; ids are
/// assigned by position so every fleet has stable, distinct sources.
#[allow(clippy::type_complexity)]
fn arb_fields() -> impl Strategy<Value = ((f64, f64), (u64, f64, f64, f64))> {
    (
        (
            prop_oneof![3 => 0.0f64..=1.0, 1 => Just(f64::NAN)],
            prop_oneof![3 => 0.0f64..=1.0, 1 => Just(f64::NAN)],
        ),
        (0u64..20, 0.0f64..10.0, 0.01f64..=1.0, 0.0f64..=1.0),
    )
}

fn arb_fleet() -> impl Strategy<Value = Vec<SourceEstimate>> {
    prop::collection::vec(arb_fields(), 1..12).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(
                |(i, ((coverage, accuracy), (age, cost, relevance, availability)))| {
                    SourceEstimate {
                        id: SourceId(i as u32),
                        coverage,
                        accuracy,
                        age,
                        cost,
                        relevance,
                        availability,
                    }
                },
            )
            .collect()
    })
}

proptest! {
    /// Shuffling the candidate list never changes the selected set or order.
    #[test]
    fn greedy_selection_is_shuffle_invariant(
        fleet in arb_fleet(),
        rot in 0usize..12,
        rev in any::<bool>(),
        budget in prop_oneof![Just(f64::INFINITY), 1.0f64..40.0],
        cap in prop_oneof![Just(None), (1usize..6).prop_map(Some)],
    ) {
        let mut user = UserContext::balanced("prop").with_budget(budget);
        if let Some(c) = cap {
            user = user.with_max_sources(c);
        }
        let mut shuffled = fleet.clone();
        let n = shuffled.len();
        shuffled.rotate_left(rot % n);
        if rev {
            shuffled.reverse();
        }
        prop_assert_eq!(
            select_greedy_utility(&fleet, &user),
            select_greedy_utility(&shuffled, &user)
        );
    }

    /// Selection respects the hard constraints for every fleet, NaN or not:
    /// the cap, the budget, and the relevance/availability exclusions.
    #[test]
    fn greedy_selection_respects_constraints(
        fleet in arb_fleet(),
        budget in 1.0f64..40.0,
        cap in 1usize..6,
    ) {
        let user = UserContext::balanced("prop")
            .with_budget(budget)
            .with_max_sources(cap);
        let picked = select_greedy_utility(&fleet, &user);
        prop_assert!(picked.len() <= cap);
        let cost: f64 = picked
            .iter()
            .map(|id| fleet.iter().find(|e| e.id == *id).map_or(0.0, |e| e.cost))
            .sum();
        prop_assert!(cost <= budget + 1e-9, "cost {cost} over budget {budget}");
        for id in &picked {
            let e = fleet.iter().find(|e| e.id == *id).expect("picked from fleet");
            prop_assert!(e.relevance > 0.0 && e.availability > 0.0);
        }
    }
}
