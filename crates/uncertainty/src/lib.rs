//! `wrangler-uncertainty` — the uniform uncertainty representation required by
//! §4.2 of the paper.
//!
//! The architecture's Working Data mixes artifacts "as diverse as domain
//! ontologies, matches, data extraction and transformation rules, schema
//! mappings, user feedback and provenance information, along with their
//! associated quality annotations and uncertainties". This crate supplies the
//! single currency those annotations are expressed in:
//!
//! * [`Belief`] — a Bernoulli degree of belief with an evidence ledger;
//! * [`Evidence`] — one typed observation (a matcher score, a feedback item,
//!   a master-data confirmation ...) with a reliability-discounted likelihood;
//! * naive-Bayes log-odds pooling ([`Belief::update`]), the principled way to
//!   integrate many weak signals (§2.3 "using all the available information");
//! * [`calibration`] — Brier score and expected calibration error, so the
//!   system can *measure* whether its uncertainties mean anything (E10);
//! * [`worlds`] — possible-worlds sampling over independent uncertain facts,
//!   the classical semantics for uncertain data (\[1\], \[23\] in the paper).

pub mod belief;
pub mod calibration;
pub mod evidence;
pub mod worlds;

pub use belief::Belief;
pub use evidence::{Evidence, EvidenceKind};
