//! Typed evidence items.
//!
//! Every automated judgement in the pipeline — a name-similarity score, a
//! value overlap, an ontology hint, a crowd vote — becomes an [`Evidence`]:
//! a likelihood ratio for the hypothesis under consideration, tagged with its
//! kind and discounted by the reliability of whoever produced it (§4.2:
//! feedback "may be unreliable"; auxiliary data "may not quite represent the
//! user's conceptualisation").

/// Where a piece of evidence came from. The kind determines the default
/// reliability prior and lets components reason about evidence diversity
/// (two signals of the same kind are more correlated than two of different
/// kinds, so callers may cap per-kind contributions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvidenceKind {
    /// Syntactic similarity of names (schema matching).
    NameSimilarity,
    /// Overlap / distribution similarity of instances.
    InstanceSimilarity,
    /// Ontology or reference-data support (data context).
    Ontology,
    /// Master data confirmed/contradicted the hypothesis.
    MasterData,
    /// A quality analysis (profiling, CFD violation, outlier).
    Quality,
    /// Explicit user feedback.
    UserFeedback,
    /// Aggregated crowd feedback.
    CrowdFeedback,
    /// Provenance/redundancy: independent sources agree.
    Redundancy,
    /// Output of another automated component (e.g. extractor confidence).
    Component,
}

impl EvidenceKind {
    /// Stable serialization tag. These values are part of the checkpoint
    /// wire format — never renumber; append only.
    pub fn tag(self) -> u8 {
        match self {
            EvidenceKind::NameSimilarity => 0,
            EvidenceKind::InstanceSimilarity => 1,
            EvidenceKind::Ontology => 2,
            EvidenceKind::MasterData => 3,
            EvidenceKind::Quality => 4,
            EvidenceKind::UserFeedback => 5,
            EvidenceKind::CrowdFeedback => 6,
            EvidenceKind::Redundancy => 7,
            EvidenceKind::Component => 8,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(tag: u8) -> Option<EvidenceKind> {
        Some(match tag {
            0 => EvidenceKind::NameSimilarity,
            1 => EvidenceKind::InstanceSimilarity,
            2 => EvidenceKind::Ontology,
            3 => EvidenceKind::MasterData,
            4 => EvidenceKind::Quality,
            5 => EvidenceKind::UserFeedback,
            6 => EvidenceKind::CrowdFeedback,
            7 => EvidenceKind::Redundancy,
            8 => EvidenceKind::Component,
            _ => return None,
        })
    }
}

/// One observation bearing on a binary hypothesis.
#[derive(Debug, Clone, PartialEq)]
pub struct Evidence {
    /// Category of the observation.
    pub kind: EvidenceKind,
    /// Probability of observing this signal if the hypothesis is TRUE.
    pub p_if_true: f64,
    /// Probability of observing this signal if the hypothesis is FALSE.
    pub p_if_false: f64,
    /// Reliability of the producer in \[0, 1\]; 0 makes the evidence vacuous.
    pub reliability: f64,
}

impl Evidence {
    /// Evidence from a bounded score in \[0, 1\], mapped so that 0.5 is neutral:
    /// `p_if_true = score`, `p_if_false = 1 - score` (clamped away from 0/1 to
    /// keep likelihood ratios finite).
    pub fn from_score(kind: EvidenceKind, score: f64) -> Evidence {
        let s = score.clamp(0.02, 0.98);
        Evidence {
            kind,
            p_if_true: s,
            p_if_false: 1.0 - s,
            reliability: 1.0,
        }
    }

    /// A positive/negative vote from a producer of the given reliability
    /// (e.g. a crowd worker with estimated accuracy `acc`): a correct producer
    /// votes with the truth with probability `acc`.
    pub fn vote(kind: EvidenceKind, positive: bool, acc: f64) -> Evidence {
        let a = acc.clamp(0.02, 0.98);
        if positive {
            Evidence {
                kind,
                p_if_true: a,
                p_if_false: 1.0 - a,
                reliability: 1.0,
            }
        } else {
            Evidence {
                kind,
                p_if_true: 1.0 - a,
                p_if_false: a,
                reliability: 1.0,
            }
        }
    }

    /// Discount this evidence by an (additional) reliability factor.
    pub fn discounted(mut self, reliability: f64) -> Evidence {
        self.reliability = (self.reliability * reliability).clamp(0.0, 1.0);
        self
    }

    /// The reliability-discounted log likelihood ratio this evidence
    /// contributes. Discounting interpolates the likelihoods towards the
    /// uninformative 0.5/0.5 point before taking the ratio, so reliability 0
    /// contributes exactly 0 and reliability 1 the full ratio.
    pub fn log_likelihood_ratio(&self) -> f64 {
        let r = self.reliability.clamp(0.0, 1.0);
        let pt = 0.5 + (self.p_if_true.clamp(1e-6, 1.0 - 1e-6) - 0.5) * r;
        let pf = 0.5 + (self.p_if_false.clamp(1e-6, 1.0 - 1e-6) - 0.5) * r;
        (pt / pf).ln()
    }

    /// True if the evidence favours the hypothesis.
    pub fn is_positive(&self) -> bool {
        self.log_likelihood_ratio() > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_mapping_is_monotone_and_neutral_at_half() {
        let lo = Evidence::from_score(EvidenceKind::NameSimilarity, 0.2);
        let mid = Evidence::from_score(EvidenceKind::NameSimilarity, 0.5);
        let hi = Evidence::from_score(EvidenceKind::NameSimilarity, 0.9);
        assert!(lo.log_likelihood_ratio() < 0.0);
        assert!(mid.log_likelihood_ratio().abs() < 1e-12);
        assert!(hi.log_likelihood_ratio() > 0.0);
        assert!(hi.log_likelihood_ratio() > mid.log_likelihood_ratio());
    }

    #[test]
    fn votes_are_symmetric() {
        let yes = Evidence::vote(EvidenceKind::CrowdFeedback, true, 0.8);
        let no = Evidence::vote(EvidenceKind::CrowdFeedback, false, 0.8);
        assert!((yes.log_likelihood_ratio() + no.log_likelihood_ratio()).abs() < 1e-12);
    }

    #[test]
    fn zero_reliability_is_vacuous() {
        let e = Evidence::from_score(EvidenceKind::UserFeedback, 0.95).discounted(0.0);
        assert_eq!(e.log_likelihood_ratio(), 0.0);
    }

    #[test]
    fn discounting_shrinks_magnitude_monotonically() {
        let full = Evidence::from_score(EvidenceKind::UserFeedback, 0.9);
        let half = full.clone().discounted(0.5);
        let tenth = full.clone().discounted(0.1);
        assert!(full.log_likelihood_ratio() > half.log_likelihood_ratio());
        assert!(half.log_likelihood_ratio() > tenth.log_likelihood_ratio());
        assert!(tenth.log_likelihood_ratio() > 0.0);
    }

    #[test]
    fn extreme_scores_stay_finite() {
        let e = Evidence::from_score(EvidenceKind::MasterData, 1.0);
        assert!(e.log_likelihood_ratio().is_finite());
        let e = Evidence::from_score(EvidenceKind::MasterData, 0.0);
        assert!(e.log_likelihood_ratio().is_finite());
    }
}
