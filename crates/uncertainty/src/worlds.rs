//! Possible-worlds semantics over independent uncertain facts.
//!
//! §4.3 notes that "even in the classical settings data uncertainty often
//! leads to intractability of the most basic data processing tasks" (\[1\],
//! \[23\]). Exact query evaluation over possible worlds is #P-hard in general;
//! the tractable tool this module provides is *Monte-Carlo estimation*: sample
//! worlds, evaluate a boolean (or counting) query per world, aggregate.
//!
//! The sampler is a self-contained deterministic xorshift generator so the
//! crate stays dependency-free and experiments stay reproducible.

/// A set of independent Bernoulli facts (tuple-level uncertainty).
#[derive(Debug, Clone, Default)]
pub struct UncertainFacts {
    probs: Vec<f64>,
}

/// One sampled world: which facts hold.
pub type World = Vec<bool>;

impl UncertainFacts {
    /// Empty fact set.
    pub fn new() -> Self {
        UncertainFacts { probs: Vec::new() }
    }

    /// Add a fact with marginal probability `p`; returns its index.
    pub fn add(&mut self, p: f64) -> usize {
        self.probs.push(p.clamp(0.0, 1.0));
        self.probs.len() - 1
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True if no facts have been added.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Marginal probability of fact `i`.
    pub fn prob(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// Sample one world.
    pub fn sample(&self, rng: &mut XorShift64) -> World {
        self.probs.iter().map(|&p| rng.next_f64() < p).collect()
    }

    /// Monte-Carlo estimate of `P(query)` over `n` sampled worlds.
    pub fn estimate<F: FnMut(&World) -> bool>(&self, seed: u64, n: usize, mut query: F) -> f64 {
        assert!(n > 0, "need at least one sample");
        let mut rng = XorShift64::new(seed);
        let mut hits = 0usize;
        for _ in 0..n {
            let w = self.sample(&mut rng);
            if query(&w) {
                hits += 1;
            }
        }
        hits as f64 / n as f64
    }

    /// Monte-Carlo estimate of `E[f(world)]` for a numeric query.
    pub fn expectation<F: FnMut(&World) -> f64>(&self, seed: u64, n: usize, mut f: F) -> f64 {
        assert!(n > 0, "need at least one sample");
        let mut rng = XorShift64::new(seed);
        let mut sum = 0.0;
        for _ in 0..n {
            sum += f(&self.sample(&mut rng));
        }
        sum / n as f64
    }
}

/// Minimal deterministic xorshift64* generator (not cryptographic; used only
/// for reproducible world sampling).
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded generator; a zero seed is remapped (xorshift requires nonzero state).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in [0, bound).
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        (self.next_f64() * bound as f64) as usize % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginal_estimates_converge() {
        let mut facts = UncertainFacts::new();
        let i = facts.add(0.3);
        let est = facts.estimate(42, 20_000, |w| w[i]);
        assert!((est - 0.3).abs() < 0.02, "est={est}");
    }

    #[test]
    fn conjunction_of_independent_facts() {
        let mut facts = UncertainFacts::new();
        let a = facts.add(0.5);
        let b = facts.add(0.5);
        let est = facts.estimate(7, 20_000, |w| w[a] && w[b]);
        assert!((est - 0.25).abs() < 0.02, "est={est}");
    }

    #[test]
    fn certain_facts_are_certain() {
        let mut facts = UncertainFacts::new();
        let t = facts.add(1.0);
        let f = facts.add(0.0);
        assert_eq!(facts.estimate(1, 100, |w| w[t]), 1.0);
        assert_eq!(facts.estimate(1, 100, |w| w[f]), 0.0);
    }

    #[test]
    fn expectation_of_count() {
        let mut facts = UncertainFacts::new();
        for _ in 0..10 {
            facts.add(0.2);
        }
        let mean = facts.expectation(99, 20_000, |w| w.iter().filter(|&&b| b).count() as f64);
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut facts = UncertainFacts::new();
        facts.add(0.5);
        let a = facts.estimate(123, 1000, |w| w[0]);
        let b = facts.estimate(123, 1000, |w| w[0]);
        assert_eq!(a, b);
    }

    #[test]
    fn xorshift_zero_seed_ok_and_in_range() {
        let mut rng = XorShift64::new(0);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            let k = rng.next_below(7);
            assert!(k < 7);
        }
    }
}
