//! Bernoulli beliefs with an evidence ledger.

use crate::evidence::{Evidence, EvidenceKind};

/// A degree of belief in a binary hypothesis, maintained in log-odds space so
/// evidence integration is an addition, together with the ledger of evidence
/// kinds that produced it (provenance for the Working Data store).
#[derive(Debug, Clone, PartialEq)]
pub struct Belief {
    /// Log-odds of the hypothesis.
    log_odds: f64,
    /// Log-odds of the prior this belief started from.
    prior_log_odds: f64,
    /// Count of evidence items integrated, per kind (order-independent).
    ledger: Vec<(EvidenceKind, u32)>,
}

impl Belief {
    /// Belief from a prior probability (clamped to keep log-odds finite).
    pub fn from_prior(p: f64) -> Belief {
        let p = p.clamp(1e-6, 1.0 - 1e-6);
        let lo = (p / (1.0 - p)).ln();
        Belief {
            log_odds: lo,
            prior_log_odds: lo,
            ledger: Vec::new(),
        }
    }

    /// The maximally uninformed belief (p = 0.5).
    pub fn uninformed() -> Belief {
        Belief::from_prior(0.5)
    }

    /// Current probability.
    pub fn probability(&self) -> f64 {
        1.0 / (1.0 + (-self.log_odds).exp())
    }

    /// Current log-odds.
    pub fn log_odds(&self) -> f64 {
        self.log_odds
    }

    /// Integrate one evidence item (naive-Bayes update).
    pub fn update(&mut self, e: &Evidence) {
        self.log_odds += e.log_likelihood_ratio();
        match self.ledger.iter_mut().find(|(k, _)| *k == e.kind) {
            Some((_, n)) => *n += 1,
            None => self.ledger.push((e.kind, 1)),
        }
    }

    /// Integrate many evidence items.
    pub fn update_all<'a>(&mut self, evidence: impl IntoIterator<Item = &'a Evidence>) {
        for e in evidence {
            self.update(e);
        }
    }

    /// Functional form of [`update`](Self::update).
    pub fn with(mut self, e: &Evidence) -> Belief {
        self.update(e);
        self
    }

    /// Number of evidence items of the given kind that were integrated.
    pub fn evidence_count(&self, kind: EvidenceKind) -> u32 {
        self.ledger
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, n)| *n)
    }

    /// Total evidence items integrated.
    pub fn total_evidence(&self) -> u32 {
        self.ledger.iter().map(|(_, n)| n).sum()
    }

    /// Number of distinct evidence kinds — a diversity measure (§2.3: work to
    /// date "tends to be focused on small numbers of types of evidence").
    pub fn evidence_diversity(&self) -> usize {
        self.ledger.len()
    }

    /// Forget all evidence and return to the prior.
    pub fn reset(&mut self) {
        self.log_odds = self.prior_log_odds;
        self.ledger.clear();
    }

    /// A hard decision at the given probability threshold.
    pub fn accept_at(&self, threshold: f64) -> bool {
        self.probability() >= threshold
    }

    /// Decompose into `(log_odds, prior_log_odds, ledger)` for durable
    /// serialization (the checkpoint store persists beliefs bit-exactly via
    /// `f64::to_bits` of the two log-odds).
    pub fn to_parts(&self) -> (f64, f64, &[(EvidenceKind, u32)]) {
        (self.log_odds, self.prior_log_odds, &self.ledger)
    }

    /// Rebuild from parts produced by [`to_parts`](Self::to_parts). The
    /// inverse is exact: no clamping or re-derivation, so a serialized
    /// belief round-trips to the same bits.
    pub fn from_parts(
        log_odds: f64,
        prior_log_odds: f64,
        ledger: Vec<(EvidenceKind, u32)>,
    ) -> Belief {
        Belief {
            log_odds,
            prior_log_odds,
            ledger,
        }
    }
}

impl Default for Belief {
    fn default() -> Self {
        Belief::uninformed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_roundtrip() {
        for p in [0.1, 0.5, 0.9] {
            let b = Belief::from_prior(p);
            assert!((b.probability() - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn update_is_commutative() {
        let e1 = Evidence::from_score(EvidenceKind::NameSimilarity, 0.8);
        let e2 = Evidence::from_score(EvidenceKind::InstanceSimilarity, 0.3);
        let a = Belief::uninformed().with(&e1).with(&e2);
        let b = Belief::uninformed().with(&e2).with(&e1);
        assert!((a.probability() - b.probability()).abs() < 1e-12);
    }

    #[test]
    fn positive_evidence_raises_negative_lowers() {
        let b = Belief::uninformed();
        let up = b
            .clone()
            .with(&Evidence::from_score(EvidenceKind::Ontology, 0.9));
        let down = b
            .clone()
            .with(&Evidence::from_score(EvidenceKind::Ontology, 0.1));
        assert!(up.probability() > 0.5);
        assert!(down.probability() < 0.5);
    }

    #[test]
    fn opposing_equal_evidence_cancels() {
        let b = Belief::from_prior(0.3)
            .with(&Evidence::from_score(EvidenceKind::Quality, 0.8))
            .with(&Evidence::from_score(EvidenceKind::Quality, 0.2));
        assert!((b.probability() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn ledger_tracks_counts_and_diversity() {
        let mut b = Belief::uninformed();
        b.update(&Evidence::from_score(EvidenceKind::NameSimilarity, 0.7));
        b.update(&Evidence::from_score(EvidenceKind::NameSimilarity, 0.6));
        b.update(&Evidence::from_score(EvidenceKind::UserFeedback, 0.9));
        assert_eq!(b.evidence_count(EvidenceKind::NameSimilarity), 2);
        assert_eq!(b.evidence_count(EvidenceKind::UserFeedback), 1);
        assert_eq!(b.evidence_count(EvidenceKind::Ontology), 0);
        assert_eq!(b.total_evidence(), 3);
        assert_eq!(b.evidence_diversity(), 2);
    }

    #[test]
    fn reset_returns_to_prior() {
        let mut b = Belief::from_prior(0.2);
        b.update(&Evidence::from_score(EvidenceKind::MasterData, 0.95));
        assert!(b.probability() > 0.2);
        b.reset();
        assert!((b.probability() - 0.2).abs() < 1e-9);
        assert_eq!(b.total_evidence(), 0);
    }

    #[test]
    fn accept_threshold() {
        let b = Belief::from_prior(0.7);
        assert!(b.accept_at(0.7));
        assert!(!b.accept_at(0.71));
    }

    #[test]
    fn probability_stays_in_unit_interval_under_many_updates() {
        let mut b = Belief::uninformed();
        let e = Evidence::from_score(EvidenceKind::Redundancy, 0.98);
        for _ in 0..1000 {
            b.update(&e);
        }
        assert!(b.probability() <= 1.0 && b.probability() > 0.99);
    }
}
