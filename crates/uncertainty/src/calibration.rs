//! Calibration measurement: are the system's probabilities honest?
//!
//! §4.2 requires that "uncertainty is represented explicitly and reasoned
//! with systematically, so that well informed decisions can build on a sound
//! understanding of the available evidence". A probability is only a sound
//! basis for decisions if it is *calibrated*; experiment E10 measures this
//! with the Brier score and expected calibration error computed here.

/// One (predicted probability, actual outcome) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted probability of the positive outcome, in \[0, 1\].
    pub p: f64,
    /// Whether the positive outcome occurred.
    pub outcome: bool,
}

/// Mean squared error between predicted probabilities and outcomes
/// (0 is perfect, 0.25 is the score of always answering 0.5).
pub fn brier_score(preds: &[Prediction]) -> f64 {
    if preds.is_empty() {
        return 0.0;
    }
    let sum: f64 = preds
        .iter()
        .map(|pr| {
            let y = if pr.outcome { 1.0 } else { 0.0 };
            (pr.p - y).powi(2)
        })
        .sum();
    sum / preds.len() as f64
}

/// One bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationBin {
    /// Inclusive lower edge of the bin.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub hi: f64,
    /// Number of predictions in the bin.
    pub count: usize,
    /// Mean predicted probability in the bin.
    pub mean_predicted: f64,
    /// Empirical frequency of positive outcomes in the bin.
    pub observed: f64,
}

/// Bucket predictions into `bins` equal-width bins over \[0, 1\].
pub fn reliability_diagram(preds: &[Prediction], bins: usize) -> Vec<CalibrationBin> {
    assert!(bins > 0, "at least one bin required");
    let mut sums = vec![(0usize, 0.0f64, 0usize); bins]; // (count, sum_p, positives)
    for pr in preds {
        let idx = ((pr.p * bins as f64) as usize).min(bins - 1);
        let (c, sp, pos) = &mut sums[idx];
        *c += 1;
        *sp += pr.p;
        *pos += usize::from(pr.outcome);
    }
    sums.iter()
        .enumerate()
        .map(|(i, (c, sp, pos))| CalibrationBin {
            lo: i as f64 / bins as f64,
            hi: (i + 1) as f64 / bins as f64,
            count: *c,
            mean_predicted: if *c == 0 { 0.0 } else { sp / *c as f64 },
            observed: if *c == 0 {
                0.0
            } else {
                *pos as f64 / *c as f64
            },
        })
        .collect()
}

/// Expected calibration error: bin-count-weighted |mean predicted − observed|.
pub fn expected_calibration_error(preds: &[Prediction], bins: usize) -> f64 {
    if preds.is_empty() {
        return 0.0;
    }
    let diagram = reliability_diagram(preds, bins);
    let n = preds.len() as f64;
    diagram
        .iter()
        .map(|b| (b.count as f64 / n) * (b.mean_predicted - b.observed).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(p: f64, outcome: bool) -> Prediction {
        Prediction { p, outcome }
    }

    #[test]
    fn brier_perfect_and_worst() {
        assert_eq!(brier_score(&[pred(1.0, true), pred(0.0, false)]), 0.0);
        assert_eq!(brier_score(&[pred(1.0, false)]), 1.0);
        assert!((brier_score(&[pred(0.5, true), pred(0.5, false)]) - 0.25).abs() < 1e-12);
        assert_eq!(brier_score(&[]), 0.0);
    }

    #[test]
    fn perfectly_calibrated_has_zero_ece() {
        // 10 predictions at 0.7 with 7 positives.
        let mut preds = Vec::new();
        for i in 0..10 {
            preds.push(pred(0.7, i < 7));
        }
        let ece = expected_calibration_error(&preds, 10);
        assert!(ece < 1e-9, "ece={ece}");
    }

    #[test]
    fn overconfident_predictions_have_high_ece() {
        // Predicts 0.95 but only half are positive.
        let preds: Vec<_> = (0..20).map(|i| pred(0.95, i % 2 == 0)).collect();
        let ece = expected_calibration_error(&preds, 10);
        assert!(ece > 0.4, "ece={ece}");
    }

    #[test]
    fn diagram_bins_cover_unit_interval_and_count_all() {
        let preds: Vec<_> = (0..100)
            .map(|i| pred(i as f64 / 99.0, i % 3 == 0))
            .collect();
        let d = reliability_diagram(&preds, 10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.iter().map(|b| b.count).sum::<usize>(), 100);
        assert!((d[0].lo, d[9].hi) == (0.0, 1.0));
        // p = 1.0 lands in the last bin, not out of range.
        let d = reliability_diagram(&[pred(1.0, true)], 4);
        assert_eq!(d[3].count, 1);
    }
}
