//! Property tests for the uncertainty substrate.

use proptest::prelude::*;
use wrangler_uncertainty::calibration::{brier_score, reliability_diagram, Prediction};
use wrangler_uncertainty::{Belief, Evidence, EvidenceKind};

fn arb_kind() -> impl Strategy<Value = EvidenceKind> {
    prop_oneof![
        Just(EvidenceKind::NameSimilarity),
        Just(EvidenceKind::InstanceSimilarity),
        Just(EvidenceKind::Ontology),
        Just(EvidenceKind::MasterData),
        Just(EvidenceKind::UserFeedback),
        Just(EvidenceKind::CrowdFeedback),
        Just(EvidenceKind::Redundancy),
    ]
}

fn arb_evidence() -> impl Strategy<Value = Evidence> {
    (arb_kind(), 0.0f64..=1.0, 0.0f64..=1.0)
        .prop_map(|(k, score, rel)| Evidence::from_score(k, score).discounted(rel))
}

proptest! {
    #[test]
    fn probability_always_in_unit_interval(
        prior in 0.0f64..=1.0,
        evidence in prop::collection::vec(arb_evidence(), 0..30),
    ) {
        let mut b = Belief::from_prior(prior);
        b.update_all(&evidence);
        let p = b.probability();
        prop_assert!((0.0..=1.0).contains(&p), "p={p}");
        prop_assert!(p.is_finite());
    }

    #[test]
    fn update_order_is_irrelevant(
        prior in 0.05f64..=0.95,
        mut evidence in prop::collection::vec(arb_evidence(), 2..10),
    ) {
        let mut a = Belief::from_prior(prior);
        a.update_all(&evidence);
        evidence.reverse();
        let mut b = Belief::from_prior(prior);
        b.update_all(&evidence);
        prop_assert!((a.probability() - b.probability()).abs() < 1e-9);
        prop_assert_eq!(a.total_evidence(), b.total_evidence());
    }

    #[test]
    fn llr_is_monotone_in_score(k in arb_kind(), s1 in 0.0f64..=1.0, s2 in 0.0f64..=1.0) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let e_lo = Evidence::from_score(k, lo);
        let e_hi = Evidence::from_score(k, hi);
        prop_assert!(e_lo.log_likelihood_ratio() <= e_hi.log_likelihood_ratio() + 1e-12);
    }

    #[test]
    fn discounting_shrinks_magnitude(e in arb_evidence(), rel in 0.0f64..=1.0) {
        let d = e.clone().discounted(rel);
        prop_assert!(d.log_likelihood_ratio().abs() <= e.log_likelihood_ratio().abs() + 1e-12);
        // Sign is preserved (or becomes zero).
        if d.log_likelihood_ratio() != 0.0 {
            prop_assert_eq!(
                d.log_likelihood_ratio().signum(),
                e.log_likelihood_ratio().signum()
            );
        }
    }

    #[test]
    fn reset_restores_prior(prior in 0.05f64..=0.95, evidence in prop::collection::vec(arb_evidence(), 1..10)) {
        let mut b = Belief::from_prior(prior);
        b.update_all(&evidence);
        b.reset();
        prop_assert!((b.probability() - prior).abs() < 1e-9);
        prop_assert_eq!(b.total_evidence(), 0);
    }

    #[test]
    fn diagram_conserves_predictions(
        preds in prop::collection::vec((0.0f64..=1.0, any::<bool>()), 0..200),
        bins in 1usize..20,
    ) {
        let preds: Vec<Prediction> =
            preds.into_iter().map(|(p, outcome)| Prediction { p, outcome }).collect();
        let d = reliability_diagram(&preds, bins);
        prop_assert_eq!(d.len(), bins);
        prop_assert_eq!(d.iter().map(|b| b.count).sum::<usize>(), preds.len());
        let brier = brier_score(&preds);
        prop_assert!((0.0..=1.0).contains(&brier));
    }
}
