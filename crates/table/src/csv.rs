//! CSV codec with RFC-4180-style quoting and type inference.
//!
//! This is the wrapper for file-shaped sources: [`read_csv`] parses a header
//! row and data rows from a string, infers column types, and produces a typed
//! [`Table`]; [`write_csv`] serializes a table back. Round-tripping a table
//! through the codec preserves its values (property-tested below).

use crate::infer::{infer_column, parse_column};
use crate::schema::{DataType, Field, Schema};
use crate::table::Table;
use crate::value::Value;
use crate::{Result, TableError};

/// Options for the CSV reader.
#[derive(Debug, Clone, Copy)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first record is a header (default true). Without a header,
    /// columns are named `c0`, `c1`, ...
    pub has_header: bool,
    /// Whether to run type inference (default true); otherwise all columns
    /// are `Str` and cells are kept verbatim (null markers still map to Null).
    pub infer_types: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: true,
            infer_types: true,
        }
    }
}

/// Parse CSV text into a table with default options.
pub fn read_csv(text: &str) -> Result<Table> {
    read_csv_opts(text, CsvOptions::default())
}

/// Parse CSV text into a table.
pub fn read_csv_opts(text: &str, opts: CsvOptions) -> Result<Table> {
    let records = parse_records(text, opts.delimiter)?;
    let mut iter = records.into_iter();
    let (names, width) = if opts.has_header {
        // Skip leading blank lines before the header.
        match iter.by_ref().find(|r| !is_blank(r)) {
            Some(h) => {
                let w = h.len();
                (h, w)
            }
            None => return Ok(Table::empty(Schema::empty())),
        }
    } else {
        // Peek width from the first non-blank record.
        let all: Vec<Vec<String>> = iter.collect();
        let w = all.iter().find(|r| !is_blank(r)).map_or(0, |r| r.len());
        // A blank line is a record separator except in width-1 tables, where
        // it is a legitimate null row.
        let rows: Vec<Vec<String>> = all.into_iter().filter(|r| w == 1 || !is_blank(r)).collect();
        let names: Vec<String> = (0..w).map(|i| format!("c{i}")).collect();
        return build_table(names, rows, opts);
    };
    let rows: Vec<Vec<String>> = iter.filter(|r| width == 1 || !is_blank(r)).collect();
    for (i, r) in rows.iter().enumerate() {
        if r.len() != width {
            return Err(TableError::Csv {
                line: i + 2,
                message: format!("expected {width} fields, found {}", r.len()),
            });
        }
    }
    build_table(names, rows, opts)
}

/// A record that came from a blank line: one empty, unquoted field.
fn is_blank(r: &[String]) -> bool {
    r.len() == 1 && r[0].is_empty()
}

fn build_table(names: Vec<String>, rows: Vec<Vec<String>>, opts: CsvOptions) -> Result<Table> {
    let width = names.len();
    let mut raw_cols: Vec<Vec<String>> = vec![Vec::with_capacity(rows.len()); width];
    for r in rows {
        if r.len() != width {
            return Err(TableError::Csv {
                line: 0,
                message: format!("ragged record: expected {width}, found {}", r.len()),
            });
        }
        for (c, cell) in r.into_iter().enumerate() {
            raw_cols[c].push(cell);
        }
    }
    let mut fields = Vec::with_capacity(width);
    let mut columns = Vec::with_capacity(width);
    for (name, raw) in names.into_iter().zip(raw_cols) {
        let dtype = if opts.infer_types {
            infer_column(&raw)
        } else {
            DataType::Str
        };
        let values = if opts.infer_types {
            parse_column(&raw, dtype)
        } else {
            raw.into_iter()
                .map(|s| {
                    if s.is_empty() {
                        Value::Null
                    } else {
                        Value::Str(s)
                    }
                })
                .collect()
        };
        let nullable = values.iter().any(Value::is_null);
        fields.push(Field {
            name,
            dtype,
            nullable,
        });
        columns.push(values);
    }
    Table::from_columns(Schema::new(fields)?, columns)
}

/// Split CSV text into records of unquoted field strings.
fn parse_records(text: &str, delim: char) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut after_quoted = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                        after_quoted = true;
                    }
                }
                '\n' => {
                    field.push('\n');
                    line += 1;
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' if field.is_empty() && !after_quoted => in_quotes = true,
            '"' => {
                return Err(TableError::Csv {
                    line,
                    message: "stray quote in field".into(),
                });
            }
            '\r' => { /* tolerate CRLF */ }
            '\n' => {
                record.push(std::mem::take(&mut field));
                after_quoted = false;
                records.push(std::mem::take(&mut record));
                line += 1;
            }
            c if c == delim => {
                record.push(std::mem::take(&mut field));
                after_quoted = false;
            }
            other => field.push(other),
        }
    }
    if in_quotes {
        return Err(TableError::Csv {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Serialize a table to CSV (always with a header row). `Null` renders as the
/// empty field; fields containing the delimiter, quotes or newlines are quoted.
pub fn write_csv(table: &Table) -> String {
    write_csv_delim(table, ',')
}

/// Serialize with an explicit delimiter.
pub fn write_csv_delim(table: &Table, delim: char) -> String {
    let mut out = String::new();
    let names = table.schema().names();
    for (i, n) in names.iter().enumerate() {
        if i > 0 {
            out.push(delim);
        }
        out.push_str(&escape(n, delim));
    }
    out.push('\n');
    for r in 0..table.num_rows() {
        for c in 0..table.num_columns() {
            if c > 0 {
                out.push(delim);
            }
            let v = table.get(r, c).expect("in bounds"); // lint-allow: r, c iterate this table's own dimensions
            if !v.is_null() {
                out.push_str(&escape(&v.render(), delim));
            }
        }
        out.push('\n');
    }
    out
}

fn escape(s: &str, delim: char) -> String {
    if s.contains(delim) || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parse_with_inference() {
        let t = read_csv("sku,price,stock\na1,9.99,5\nb2,,12\n").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().field(1).unwrap().dtype, DataType::Float);
        assert_eq!(t.schema().field(2).unwrap().dtype, DataType::Int);
        assert!(t.get_named(1, "price").unwrap().is_null());
    }

    #[test]
    fn quoted_fields_with_commas_and_newlines() {
        let t = read_csv("name,desc\nwidget,\"small, round\"\ngadget,\"line1\nline2\"\n").unwrap();
        assert_eq!(
            t.get_named(0, "desc").unwrap().as_str(),
            Some("small, round")
        );
        assert_eq!(
            t.get_named(1, "desc").unwrap().as_str(),
            Some("line1\nline2")
        );
    }

    #[test]
    fn escaped_quotes() {
        let t = read_csv("a\n\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.get_named(0, "a").unwrap().as_str(), Some("say \"hi\""));
    }

    #[test]
    fn crlf_and_trailing_newline_tolerated() {
        let t = read_csv("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.get(0, 1).unwrap(), &Value::Int(2));
        let t2 = read_csv("a,b\n1,2").unwrap(); // no trailing newline
        assert_eq!(t2.num_rows(), 1);
    }

    #[test]
    fn ragged_row_is_error_with_line_number() {
        let err = read_csv("a,b\n1\n").unwrap_err();
        match err {
            TableError::Csv { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(read_csv("a\n\"oops\n").is_err());
    }

    #[test]
    fn headerless_mode_names_columns() {
        let t = read_csv_opts(
            "1,2\n3,4\n",
            CsvOptions {
                has_header: false,
                ..CsvOptions::default()
            },
        )
        .unwrap();
        assert_eq!(t.schema().names(), vec!["c0", "c1"]);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn no_inference_keeps_strings() {
        let t = read_csv_opts(
            "a\n42\n",
            CsvOptions {
                infer_types: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(t.get(0, 0).unwrap(), &Value::Str("42".into()));
    }

    #[test]
    fn empty_input() {
        let t = read_csv("").unwrap();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_columns(), 0);
    }

    #[test]
    fn roundtrip_simple() {
        let t = Table::literal(
            &["a", "b"],
            vec![
                vec![Value::Int(1), "x,y".into()],
                vec![Value::Null, "he said \"hi\"".into()],
                vec![Value::Float(2.5), "line\nbreak".into()],
            ],
        )
        .unwrap();
        let text = write_csv(&t);
        let back = read_csv(&text).unwrap();
        assert_eq!(back.num_rows(), 3);
        assert_eq!(back.get(0, 0).unwrap(), &Value::Int(1));
        assert!(back.get(1, 0).unwrap().is_null());
        assert_eq!(back.get(1, 1).unwrap().as_str(), Some("he said \"hi\""));
        assert_eq!(back.get(2, 1).unwrap().as_str(), Some("line\nbreak"));
    }

    #[test]
    fn semicolon_delimiter() {
        let t = read_csv_opts(
            "a;b\n1;x\n",
            CsvOptions {
                delimiter: ';',
                ..CsvOptions::default()
            },
        )
        .unwrap();
        assert_eq!(t.get(0, 1).unwrap().as_str(), Some("x"));
        let text = write_csv_delim(&t, ';');
        assert!(text.starts_with("a;b\n"));
    }
}
