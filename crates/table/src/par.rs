//! The deterministic blocked worker pool shared by the compute kernels.
//!
//! Three places in the pipeline fan CPU-bound, per-item work across threads:
//! schema-matching generation, ER pair scoring and slot fusion. All three
//! need the same three guarantees, so they share this module:
//!
//! 1. **Determinism.** Work is split into *contiguous blocked chunks* —
//!    worker `w` takes `items[start_w .. start_w + len_w]` — and results are
//!    reassembled in chunk order, so output is a pure function of the input
//!    for any worker count and any scheduling.
//! 2. **Locality.** Blocked chunks keep each worker walking adjacent items.
//!    The strided pickup this module replaced (worker `w` takes items
//!    `w, w+workers, …`) interleaved every worker through the whole range,
//!    so precompiled per-row cells were evicted and refetched across
//!    workers; BENCH_e14 measured the result as *negative* scaling (8
//!    workers 42% slower than 1 at 40 sources). Chunks are balanced to
//!    within one item (the first `len % workers` chunks take one extra), so
//!    no worker idles while another holds two chunks' worth.
//! 3. **Sized to the work.** [`effective_workers`] refuses counterproductive
//!    pool widths: never more threads than addressable cores (oversubscribed
//!    CPU-bound threads only add scheduling overhead) and never fewer than
//!    `min_items_per_worker` items per thread (a tiny batch must not pay a
//!    thread spawn per fraction of a millisecond of work).
//!
//! The module also hosts [`catch_quiet`], the panic-to-message adapter the
//! containment layer and the kernels use for per-item isolation — here
//! because the kernels in leaf crates (`wrangler-resolve`,
//! `wrangler-fusion`) need it and must not depend on `wrangler-core`.

use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;
use std::time::Instant;

/// Per-worker accounting of one parallel pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// Items this worker processed.
    pub items: u64,
    /// Wall-clock the worker spent busy, in nanoseconds (honest timing —
    /// nondeterministic, feed it only to the timing half of telemetry).
    pub busy_nanos: u128,
}

/// Number of hardware threads the process may use (cgroup/affinity aware),
/// with a serial fallback when the platform cannot say.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split `0..len` into at most `workers` contiguous, non-empty, in-order
/// ranges balanced to within one item: the first `len % workers` ranges are
/// one longer. `len == 0` yields no ranges; `workers` above `len` is capped,
/// so a spawned worker always has work.
pub fn blocked_ranges(len: usize, workers: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, len);
    let base = len / workers;
    let extra = len % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let chunk = base + usize::from(w < extra);
        out.push(start..start + chunk);
        start += chunk;
    }
    out
}

/// Resolve a requested pool width into the width actually worth spawning:
/// at most one thread per addressable core (an oversubscribed CPU-bound
/// pool cannot go faster than the cores it has — it only adds scheduling
/// overhead, the flat-to-negative half of the old E14 curve), and at least
/// `min_items_per_worker` items per thread (below that, spawn latency
/// outweighs the work). Always at least 1. Output of a kernel never depends
/// on this value — it is a pure wall-clock policy.
pub fn effective_workers(requested: usize, items: usize, min_items_per_worker: usize) -> usize {
    let by_load = items / min_items_per_worker.max(1);
    requested
        .max(1)
        .min(available_parallelism())
        .min(by_load.max(1))
        .min(items.max(1))
}

/// Run `chunk_fn` over contiguous blocked chunks of `items` on exactly
/// `min(workers, items.len())` scoped threads and return the per-chunk
/// results **in chunk order** (= item order) plus per-worker stats.
///
/// `chunk_fn(start, chunk)` receives the chunk's offset into `items` and the
/// chunk itself. Reassembly is by chunk index, so the output is identical
/// for any worker count. A panicking worker surfaces as `Err(message)` —
/// callers that need per-item isolation catch inside `chunk_fn` (see
/// [`catch_quiet`]) so one poisonous item cannot take down its chunk.
pub fn run_blocked<T, C>(
    items: &[T],
    workers: usize,
    chunk_fn: impl Fn(usize, &[T]) -> C + Sync,
) -> Result<(Vec<C>, Vec<WorkerStat>), String>
where
    T: Sync,
    C: Send,
{
    let ranges = blocked_ranges(items.len(), workers);
    if ranges.len() <= 1 {
        // Serial fast path: no spawn, same arithmetic, same output.
        let started = Instant::now();
        let out = ranges
            .into_iter()
            .map(|r| chunk_fn(r.start, &items[r]))
            .collect::<Vec<C>>();
        let stats = vec![WorkerStat {
            items: items.len() as u64,
            busy_nanos: started.elapsed().as_nanos(),
        }];
        return Ok((out, if items.is_empty() { Vec::new() } else { stats }));
    }
    let chunk_fn = &chunk_fn;
    // Join EVERY handle before reporting the first failure: leaving a second
    // panicked handle unjoined would make the scope itself panic on exit.
    let joined: Vec<Result<(C, u64, u128), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                scope.spawn(move || {
                    let started = Instant::now();
                    let out = chunk_fn(r.start, &items[r.clone()]);
                    (out, r.len() as u64, started.elapsed().as_nanos())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(|payload| panic_message(&*payload)))
            .collect()
    });
    let mut out = Vec::with_capacity(joined.len());
    let mut stats = Vec::with_capacity(joined.len());
    for j in joined {
        let (chunk, items, busy_nanos) = j?;
        out.push(chunk);
        stats.push(WorkerStat { items, busy_nanos });
    }
    Ok((out, stats))
}

thread_local! {
    static MUTE_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static HOOK_INIT: Once = Once::new();

/// Install (once) a panic hook that suppresses output for panics caught by
/// [`catch_quiet`], delegating everything else to the previous hook. The
/// mute flag is thread-local, so concurrent workers catching their own
/// panics never silence an unrelated thread's.
fn install_quiet_hook() {
    HOOK_INIT.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !MUTE_PANICS.with(std::cell::Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Run `f`, catching any panic and returning its message as `Err`. The
/// default hook is muted for the duration so caught panics do not spray
/// backtraces over experiment output.
pub fn catch_quiet<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_quiet_hook();
    MUTE_PANICS.with(|m| m.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    MUTE_PANICS.with(|m| m.set(false));
    result.map_err(|payload| panic_message(&*payload))
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_ranges_cover_in_order_balanced() {
        for len in 0..40usize {
            for workers in 1..10usize {
                let ranges = blocked_ranges(len, workers);
                if len == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert_eq!(ranges.len(), workers.min(len), "len={len} w={workers}");
                // Contiguous, in order, covering 0..len, no empty chunk.
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, len);
                // Balanced to within one item.
                let min = ranges.iter().map(|r| r.len()).min().unwrap();
                let max = ranges.iter().map(|r| r.len()).max().unwrap();
                assert!(max - min <= 1, "len={len} w={workers} min={min} max={max}");
            }
        }
    }

    #[test]
    fn blocked_ranges_never_idle_a_worker() {
        // The ceil-chunking bug this replaces: 5 items / 4 workers must give
        // every worker something (2,1,1,1), not chunks of 2 with one idle.
        let ranges = blocked_ranges(5, 4);
        assert_eq!(ranges.len(), 4);
        assert!(ranges.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn effective_workers_is_clamped_and_thresholded() {
        let cores = available_parallelism();
        // Never above cores, never above items, never zero.
        assert_eq!(effective_workers(8, 0, 1), 1);
        assert!(effective_workers(8, 3, 1) <= 3);
        assert!(effective_workers(64, 10_000, 1) <= cores);
        assert_eq!(effective_workers(0, 100, 1), 1);
        // The minimum-items threshold keeps tiny batches serial.
        assert_eq!(effective_workers(8, 100, 512), 1);
        assert!(effective_workers(8, 1024, 512) <= 2);
        assert!(effective_workers(8, 1 << 20, 512) >= 1);
    }

    #[test]
    fn run_blocked_preserves_item_order_and_counts() {
        let items: Vec<usize> = (0..37).collect();
        for workers in 1..9 {
            let (chunks, stats) = run_blocked(&items, workers, |start, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(k, &x)| {
                        assert_eq!(x, start + k, "chunk offset lines up with items");
                        x * 2
                    })
                    .collect::<Vec<usize>>()
            })
            .unwrap();
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            let expect: Vec<usize> = items.iter().map(|&x| x * 2).collect();
            assert_eq!(flat, expect, "workers={workers}");
            assert_eq!(
                stats.iter().map(|s| s.items).sum::<u64>(),
                items.len() as u64
            );
            assert!(stats.iter().all(|s| s.items > 0), "idle worker");
        }
    }

    #[test]
    fn run_blocked_empty_input_spawns_nothing() {
        let (chunks, stats) = run_blocked(&[] as &[u8], 4, |_, _| 0u8).unwrap();
        assert!(chunks.is_empty() && stats.is_empty());
    }

    #[test]
    fn run_blocked_worker_panic_is_a_message() {
        // Mute the hook on the panicking worker so the test log stays clean
        // (the mute flag is thread-local, exactly like catch_quiet's).
        install_quiet_hook();
        let items = [1, 2, 3, 4];
        let err = run_blocked(&items, 2, |start, _| {
            if start > 0 {
                MUTE_PANICS.with(|m| m.set(true));
                panic!("boom at {start}");
            }
            0
        })
        .unwrap_err();
        assert!(err.contains("boom"), "{err}");
    }

    #[test]
    fn catch_quiet_returns_value_or_message() {
        assert_eq!(catch_quiet(|| 42), Ok(42));
        let err = catch_quiet(|| -> i32 { panic!("boom {}", 7) }).unwrap_err();
        assert!(err.contains("boom 7"));
        // The hook survives and later successes are unaffected.
        assert_eq!(catch_quiet(|| "fine"), Ok("fine"));
    }
}
