//! Relational operators over [`Table`].
//!
//! These are the building blocks the mapping executor and the integration
//! pipeline compose: selection, projection (with computed columns), renaming,
//! sorting, distinct, union, equi-join (hash join), and group-by with
//! aggregates. All operators are pure: they return new tables.

use std::collections::HashMap; // hash-ok: maps below are probes/dedup sets; output order always follows row order

use crate::expr::{BoundExpr, Expr};
use crate::schema::{DataType, Field, Schema};
use crate::table::Table;
use crate::value::Value;
use crate::{Result, TableError};

/// Aggregate functions for [`group_by`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Count of non-null values in the column (use with any column for row counts
    /// via a non-nullable key, or see `CountAll`).
    Count,
    /// Count of all rows in the group.
    CountAll,
    Sum,
    Min,
    Max,
    Mean,
    /// First value encountered in table order.
    First,
}

impl Agg {
    fn name(self) -> &'static str {
        match self {
            Agg::Count => "count",
            Agg::CountAll => "count_all",
            Agg::Sum => "sum",
            Agg::Min => "min",
            Agg::Max => "max",
            Agg::Mean => "mean",
            Agg::First => "first",
        }
    }
}

/// `SELECT * WHERE predicate`.
pub fn filter(table: &Table, predicate: &Expr) -> Result<Table> {
    let bound = predicate.bind(table.schema())?;
    let mut keep = Vec::with_capacity(table.num_rows());
    for i in 0..table.num_rows() {
        let row = table.row(i);
        keep.push(bound.eval_predicate(&row)?);
    }
    Ok(table.retain_rows(|i| keep[i]))
}

/// Project to the named columns, in order.
pub fn project(table: &Table, names: &[&str]) -> Result<Table> {
    let indices: Vec<usize> = names
        .iter()
        .map(|n| table.schema().index_of(n))
        .collect::<Result<_>>()?;
    let schema = table.schema().project(&indices)?;
    let columns: Vec<Vec<Value>> = indices
        .iter()
        .map(|&i| table.column(i).map(<[Value]>::to_vec))
        .collect::<Result<_>>()?;
    Table::from_columns(schema, columns)
}

/// Project to computed columns: each output column is `(name, expression)`.
pub fn project_exprs(table: &Table, cols: &[(String, Expr)]) -> Result<Table> {
    let bound: Vec<(String, BoundExpr)> = cols
        .iter()
        .map(|(n, e)| Ok((n.clone(), e.bind(table.schema())?)))
        .collect::<Result<_>>()?;
    let mut columns: Vec<Vec<Value>> = vec![Vec::with_capacity(table.num_rows()); cols.len()];
    for i in 0..table.num_rows() {
        let row = table.row(i);
        for (c, (_, e)) in bound.iter().enumerate() {
            columns[c].push(e.eval(&row)?);
        }
    }
    let fields = bound
        .iter()
        .map(|(n, _)| Field::new(n.clone(), DataType::Null))
        .collect();
    let mut t = Table::from_columns(Schema::new(fields)?, columns)?;
    t.reinfer_types();
    Ok(t)
}

/// Rename a column.
pub fn rename(table: &Table, old: &str, new: &str) -> Result<Table> {
    let schema = table.schema().rename(old, new)?;
    let columns: Vec<Vec<Value>> = (0..table.num_columns())
        .map(|i| table.column(i).map(<[Value]>::to_vec))
        .collect::<Result<_>>()?;
    Table::from_columns(schema, columns)
}

/// Stable sort by the named columns ascending (nulls first, per the value
/// total order).
pub fn sort_by(table: &Table, names: &[&str]) -> Result<Table> {
    let idx: Vec<usize> = names
        .iter()
        .map(|n| table.schema().index_of(n))
        .collect::<Result<_>>()?;
    let mut order: Vec<usize> = (0..table.num_rows()).collect();
    order.sort_by(|&a, &b| {
        for &c in &idx {
            let col = table.column(c).expect("validated"); // lint-allow: columns validated at function entry
            let ord = col[a].cmp(&col[b]);
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    table.take(&order)
}

/// Remove duplicate rows, keeping first occurrence (order preserved).
pub fn distinct(table: &Table) -> Table {
    // hash-ok: membership test; kept rows follow input row order
    let mut seen: HashMap<Vec<Value>, ()> = HashMap::with_capacity(table.num_rows());
    let mut keep = Vec::with_capacity(table.num_rows());
    for i in 0..table.num_rows() {
        keep.push(seen.insert(table.row(i), ()).is_none());
    }
    table.retain_rows(|i| keep[i])
}

/// Union of two union-compatible tables (bag semantics; apply [`distinct`]
/// afterwards for set semantics).
pub fn union(a: &Table, b: &Table) -> Result<Table> {
    let schema = a.schema().union_compatible(b.schema())?;
    let mut out = Table::empty(schema);
    for r in a.iter_rows().chain(b.iter_rows()) {
        out.push_row(r)?;
    }
    Ok(out)
}

/// Hash equi-join on `left.on_left == right.on_right`. Output schema is the
/// left columns followed by the right columns; name clashes on the right are
/// disambiguated with a `_r` suffix (repeated until unique). Null keys never join.
pub fn join(left: &Table, right: &Table, on_left: &str, on_right: &str) -> Result<Table> {
    let li = left.schema().index_of(on_left)?;
    let ri = right.schema().index_of(on_right)?;
    // Build phase on the smaller side would be the classic optimization; for
    // clarity we always build on the right.
    let rcol = right.column(ri)?;
    // hash-ok: join probe index; output order follows left row order
    let mut index: HashMap<&Value, Vec<usize>> = HashMap::with_capacity(right.num_rows());
    for (i, v) in rcol.iter().enumerate() {
        if !v.is_null() {
            index.entry(v).or_default().push(i);
        }
    }
    let mut fields: Vec<Field> = left.schema().fields().to_vec();
    // hash-ok: collision membership test only
    let mut names: std::collections::HashSet<String> =
        fields.iter().map(|f| f.name.clone()).collect();
    for f in right.schema().fields() {
        let mut name = f.name.clone();
        while names.contains(&name) {
            name.push_str("_r");
        }
        names.insert(name.clone());
        fields.push(Field {
            name,
            dtype: f.dtype,
            nullable: f.nullable,
        });
    }
    let mut out = Table::empty(Schema::new(fields)?);
    let lcol = left.column(li)?;
    for (i, key) in lcol.iter().enumerate() {
        if key.is_null() {
            continue;
        }
        if let Some(matches) = index.get(key) {
            for &j in matches {
                let mut row = left.row(i);
                row.extend(right.row(j));
                out.push_row(row)?;
            }
        }
    }
    Ok(out)
}

/// Group by the named key columns and compute the given aggregates.
///
/// Output schema: key columns, then one column per aggregate named
/// `"{agg}_{column}"`. Groups appear in order of first occurrence.
pub fn group_by(table: &Table, keys: &[&str], aggs: &[(Agg, &str)]) -> Result<Table> {
    let key_idx: Vec<usize> = keys
        .iter()
        .map(|n| table.schema().index_of(n))
        .collect::<Result<_>>()?;
    let agg_idx: Vec<(Agg, usize)> = aggs
        .iter()
        .map(|(a, n)| Ok((*a, table.schema().index_of(n)?)))
        .collect::<Result<_>>()?;

    // hash-ok: key -> output slot; slots allocated in first-encounter row order
    let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut states: Vec<Vec<AggState>> = Vec::new();

    for i in 0..table.num_rows() {
        let key: Vec<Value> = key_idx
            .iter()
            .map(|&c| table.get(i, c).unwrap().clone()) // lint-allow: key columns validated at function entry
            .collect();
        let gi = *groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            states.push(agg_idx.iter().map(|(a, _)| AggState::new(*a)).collect());
            order.len() - 1
        });
        for (s, (_, c)) in states[gi].iter_mut().zip(&agg_idx) {
            s.update(table.get(i, *c).unwrap()); // lint-allow: agg columns validated at function entry
        }
    }

    let mut fields: Vec<Field> = key_idx
        .iter()
        .map(|&i| table.schema().field(i).unwrap().clone()) // lint-allow: key columns validated at function entry
        .collect();
    for (a, c) in &agg_idx {
        let base = &table.schema().field(*c).unwrap().name; // lint-allow: agg columns validated at function entry
        let mut name = format!("{}_{}", a.name(), base);
        while fields.iter().any(|f| f.name == name) {
            name.push('_');
        }
        fields.push(Field::new(name, DataType::Null));
    }
    let mut out = Table::empty(Schema::new(fields)?);
    for (key, st) in order.into_iter().zip(states) {
        let mut row = key;
        row.extend(st.into_iter().map(AggState::finish));
        out.push_row(row)?;
    }
    out.reinfer_types();
    Ok(out)
}

/// Incrementally maintained aggregate state.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    CountAll(i64),
    Sum(f64, bool),
    Min(Option<Value>),
    Max(Option<Value>),
    Mean(f64, i64),
    First(Option<Value>),
}

impl AggState {
    fn new(a: Agg) -> Self {
        match a {
            Agg::Count => AggState::Count(0),
            Agg::CountAll => AggState::CountAll(0),
            Agg::Sum => AggState::Sum(0.0, false),
            Agg::Min => AggState::Min(None),
            Agg::Max => AggState::Max(None),
            Agg::Mean => AggState::Mean(0.0, 0),
            Agg::First => AggState::First(None),
        }
    }

    fn update(&mut self, v: &Value) {
        match self {
            AggState::Count(n) => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            AggState::CountAll(n) => *n += 1,
            AggState::Sum(total, seen) => {
                if let Some(x) = v.as_f64() {
                    *total += x;
                    *seen = true;
                }
            }
            AggState::Min(cur) => {
                if !v.is_null() && cur.as_ref().is_none_or(|c| v < c) {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                if !v.is_null() && cur.as_ref().is_none_or(|c| v > c) {
                    *cur = Some(v.clone());
                }
            }
            AggState::Mean(total, n) => {
                if let Some(x) = v.as_f64() {
                    *total += x;
                    *n += 1;
                }
            }
            AggState::First(cur) => {
                if cur.is_none() && !v.is_null() {
                    *cur = Some(v.clone());
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) | AggState::CountAll(n) => Value::Int(n),
            AggState::Sum(total, seen) => {
                if seen {
                    Value::Float(total)
                } else {
                    Value::Null
                }
            }
            AggState::Min(v) | AggState::Max(v) | AggState::First(v) => v.unwrap_or(Value::Null),
            AggState::Mean(total, n) => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(total / n as f64)
                }
            }
        }
    }
}

/// Left-outer variant of [`join`]: unmatched left rows are padded with nulls.
pub fn left_join(left: &Table, right: &Table, on_left: &str, on_right: &str) -> Result<Table> {
    let inner = join(left, right, on_left, on_right)?;
    let li = left.schema().index_of(on_left)?;
    let ri = right.schema().index_of(on_right)?;
    // hash-ok: membership test; output follows row order
    let mut matched: std::collections::HashSet<&Value> = std::collections::HashSet::new();
    for v in right.column(ri)? {
        if !v.is_null() {
            matched.insert(v);
        }
    }
    let mut out = inner.clone();
    let lcol = left.column(li)?;
    for (i, key) in lcol.iter().enumerate() {
        if key.is_null() || !matched.contains(key) {
            let mut row = left.row(i);
            row.extend(std::iter::repeat_n(Value::Null, right.num_columns()));
            out.push_row(row)?;
        }
    }
    Ok(out)
}

/// Append a constant column to the table.
pub fn with_column(table: &Table, name: &str, value: Value) -> Result<Table> {
    if table.schema().contains(name) {
        return Err(TableError::DuplicateColumn(name.to_string()));
    }
    let mut fields = table.schema().fields().to_vec();
    fields.push(Field::new(name, value.dtype()));
    let mut columns: Vec<Vec<Value>> = (0..table.num_columns())
        .map(|i| table.column(i).map(<[Value]>::to_vec))
        .collect::<Result<_>>()?;
    columns.push(vec![value; table.num_rows()]);
    Table::from_columns(Schema::new(fields)?, columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn products() -> Table {
        Table::literal(
            &["sku", "vendor", "price"],
            vec![
                vec!["a1".into(), "acme".into(), Value::Float(10.0)],
                vec!["a2".into(), "acme".into(), Value::Float(20.0)],
                vec!["b1".into(), "bolt".into(), Value::Float(15.0)],
                vec!["b2".into(), "bolt".into(), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn filter_with_null_predicate_drops_row() {
        let t = filter(&products(), &Expr::col("price").gt(Expr::lit(12.0))).unwrap();
        // b2 has null price -> predicate Null -> dropped.
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn project_and_rename() {
        let t = project(&products(), &["price", "sku"]).unwrap();
        assert_eq!(t.schema().names(), vec!["price", "sku"]);
        let t = rename(&t, "sku", "id").unwrap();
        assert_eq!(t.schema().names(), vec!["price", "id"]);
        assert!(project(&products(), &["nope"]).is_err());
    }

    #[test]
    fn project_exprs_computes_and_infers() {
        let t = project_exprs(
            &products(),
            &[
                ("sku".into(), Expr::col("sku")),
                (
                    "price_cents".into(),
                    Expr::col("price").mul(Expr::lit(100.0)),
                ),
            ],
        )
        .unwrap();
        assert_eq!(
            t.get_named(0, "price_cents").unwrap(),
            &Value::Float(1000.0)
        );
        assert_eq!(t.schema().field(1).unwrap().dtype, DataType::Float);
        assert!(t.schema().field(1).unwrap().nullable); // b2 null propagates
    }

    #[test]
    fn sort_stable_nulls_first() {
        let t = sort_by(&products(), &["price"]).unwrap();
        assert!(t.get_named(0, "price").unwrap().is_null());
        assert_eq!(t.get_named(1, "price").unwrap(), &Value::Float(10.0));
        // Multi-key sort: vendor then price.
        let t2 = sort_by(&products(), &["vendor", "price"]).unwrap();
        assert_eq!(t2.get_named(0, "sku").unwrap().as_str(), Some("a1"));
    }

    #[test]
    fn distinct_keeps_first() {
        let t = Table::literal(
            &["x"],
            vec![
                vec![1.into()],
                vec![2.into()],
                vec![1.into()],
                vec![Value::Float(2.0)],
            ],
        )
        .unwrap();
        let d = distinct(&t);
        // Float(2.0) == Int(2) under value equality, so 2 distinct rows.
        assert_eq!(d.num_rows(), 2);
    }

    #[test]
    fn union_widens_types() {
        let a = Table::literal(&["p"], vec![vec![1.into()]]).unwrap();
        let b = Table::literal(&["p"], vec![vec![Value::Float(2.5)]]).unwrap();
        let u = union(&a, &b).unwrap();
        assert_eq!(u.num_rows(), 2);
        assert_eq!(u.schema().field(0).unwrap().dtype, DataType::Float);
        let c = Table::literal(&["q"], vec![vec![1.into()]]).unwrap();
        assert!(union(&a, &c).is_err());
    }

    #[test]
    fn hash_join_basics() {
        let catalog = Table::literal(
            &["sku", "name"],
            vec![
                vec!["a1".into(), "Widget".into()],
                vec!["zz".into(), "Ghost".into()],
            ],
        )
        .unwrap();
        let j = join(&products(), &catalog, "sku", "sku").unwrap();
        assert_eq!(j.num_rows(), 1);
        assert_eq!(
            j.schema().names(),
            vec!["sku", "vendor", "price", "sku_r", "name"]
        );
        assert_eq!(j.get_named(0, "name").unwrap().as_str(), Some("Widget"));
    }

    #[test]
    fn join_skips_null_keys() {
        let l = Table::literal(&["k"], vec![vec![Value::Null], vec![1.into()]]).unwrap();
        let r = Table::literal(&["k"], vec![vec![Value::Null], vec![1.into()]]).unwrap();
        let j = join(&l, &r, "k", "k").unwrap();
        assert_eq!(j.num_rows(), 1);
    }

    #[test]
    fn left_join_pads_nulls() {
        let catalog =
            Table::literal(&["sku", "name"], vec![vec!["a1".into(), "Widget".into()]]).unwrap();
        let j = left_join(&products(), &catalog, "sku", "sku").unwrap();
        assert_eq!(j.num_rows(), 4);
        let unmatched: Vec<_> = (0..4)
            .filter(|&i| j.get_named(i, "name").unwrap().is_null())
            .collect();
        assert_eq!(unmatched.len(), 3);
    }

    #[test]
    fn group_by_aggregates() {
        let g = group_by(
            &products(),
            &["vendor"],
            &[
                (Agg::CountAll, "price"),
                (Agg::Count, "price"),
                (Agg::Mean, "price"),
                (Agg::Min, "sku"),
            ],
        )
        .unwrap();
        assert_eq!(g.num_rows(), 2);
        // acme first (first occurrence order)
        assert_eq!(g.get_named(0, "vendor").unwrap().as_str(), Some("acme"));
        assert_eq!(g.get_named(0, "count_all_price").unwrap(), &Value::Int(2));
        assert_eq!(g.get_named(1, "count_price").unwrap(), &Value::Int(1)); // null excluded
        assert_eq!(g.get_named(0, "mean_price").unwrap(), &Value::Float(15.0));
        assert_eq!(g.get_named(1, "mean_price").unwrap(), &Value::Float(15.0));
        assert_eq!(g.get_named(0, "min_sku").unwrap().as_str(), Some("a1"));
    }

    #[test]
    fn group_by_empty_table() {
        let g = group_by(
            &Table::empty(Schema::of_strs(&["a"])),
            &["a"],
            &[(Agg::CountAll, "a")],
        )
        .unwrap();
        assert_eq!(g.num_rows(), 0);
    }

    #[test]
    fn with_column_appends_constant() {
        let t = with_column(&products(), "src", "s1".into()).unwrap();
        assert_eq!(t.get_named(3, "src").unwrap().as_str(), Some("s1"));
        assert!(with_column(&t, "src", "x".into()).is_err());
    }
}
