//! Per-column statistics.
//!
//! These summaries feed quality profiling (`wrangler-quality`) and
//! instance-based schema matching (`wrangler-match`): null ratios,
//! distinctness, numeric moments and value-length distribution are the
//! evidence both consume.

use std::collections::HashSet;

use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// Summary statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Total rows observed.
    pub count: usize,
    /// Number of null cells.
    pub null_count: usize,
    /// Number of distinct non-null values.
    pub distinct: usize,
    /// Minimum non-null value (table value order).
    pub min: Option<Value>,
    /// Maximum non-null value.
    pub max: Option<Value>,
    /// Mean of numeric values, if any.
    pub mean: Option<f64>,
    /// Population standard deviation of numeric values, if any.
    pub std_dev: Option<f64>,
    /// Mean rendered-string length of non-null values.
    pub mean_len: f64,
    /// Fraction of non-null values that parse as numeric.
    pub numeric_ratio: f64,
}

impl ColumnStats {
    /// Fraction of cells that are non-null; 1.0 for empty columns.
    pub fn completeness(&self) -> f64 {
        if self.count == 0 {
            1.0
        } else {
            (self.count - self.null_count) as f64 / self.count as f64
        }
    }

    /// Distinct values / non-null values; 0.0 when all nulls.
    pub fn distinctness(&self) -> f64 {
        let non_null = self.count - self.null_count;
        if non_null == 0 {
            0.0
        } else {
            self.distinct as f64 / non_null as f64
        }
    }

    /// True if every non-null value is unique — a key candidate.
    pub fn is_key_candidate(&self) -> bool {
        let non_null = self.count - self.null_count;
        non_null > 0 && self.distinct == non_null && self.null_count == 0
    }
}

/// Compute statistics for the values of one column.
pub fn column_stats(values: &[Value]) -> ColumnStats {
    let count = values.len();
    let mut null_count = 0usize;
    let mut seen: HashSet<&Value> = HashSet::new();
    let mut min: Option<&Value> = None;
    let mut max: Option<&Value> = None;
    let mut num_sum = 0.0f64;
    let mut num_sq = 0.0f64;
    let mut num_n = 0usize;
    let mut len_sum = 0usize;

    for v in values {
        if v.is_null() {
            null_count += 1;
            continue;
        }
        seen.insert(v);
        if min.is_none_or(|m| v < m) {
            min = Some(v);
        }
        if max.is_none_or(|m| v > m) {
            max = Some(v);
        }
        if let Some(x) = v.as_f64() {
            num_sum += x;
            num_sq += x * x;
            num_n += 1;
        }
        len_sum += v.render().chars().count();
    }
    let non_null = count - null_count;
    let mean = if num_n > 0 {
        Some(num_sum / num_n as f64)
    } else {
        None
    };
    let std_dev = mean.map(|m| {
        let var = (num_sq / num_n as f64 - m * m).max(0.0);
        var.sqrt()
    });
    ColumnStats {
        count,
        null_count,
        distinct: seen.len(),
        min: min.cloned(),
        max: max.cloned(),
        mean,
        std_dev,
        mean_len: if non_null == 0 {
            0.0
        } else {
            len_sum as f64 / non_null as f64
        },
        numeric_ratio: if non_null == 0 {
            0.0
        } else {
            num_n as f64 / non_null as f64
        },
    }
}

/// Statistics for every column of a table, in schema order.
pub fn table_stats(table: &Table) -> Result<Vec<ColumnStats>> {
    (0..table.num_columns())
        .map(|i| Ok(column_stats(table.column(i)?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_mixed_column() {
        let vals = vec![
            Value::Int(10),
            Value::Null,
            Value::Int(20),
            Value::Int(10),
            Value::Str("x".into()),
        ];
        let s = column_stats(&vals);
        assert_eq!(s.count, 5);
        assert_eq!(s.null_count, 1);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.min, Some(Value::Int(10)));
        assert_eq!(s.max, Some(Value::Str("x".into())));
        assert!((s.mean.unwrap() - 40.0 / 3.0).abs() < 1e-12);
        assert!((s.numeric_ratio - 0.75).abs() < 1e-12);
        assert!((s.completeness() - 0.8).abs() < 1e-12);
        assert!((s.distinctness() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_and_all_null_columns() {
        let s = column_stats(&[]);
        assert_eq!(s.completeness(), 1.0);
        assert_eq!(s.distinctness(), 0.0);
        let s = column_stats(&[Value::Null, Value::Null]);
        assert_eq!(s.completeness(), 0.0);
        assert_eq!(s.min, None);
        assert_eq!(s.mean, None);
    }

    #[test]
    fn key_candidate_detection() {
        let s = column_stats(&[Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert!(s.is_key_candidate());
        let s = column_stats(&[Value::Int(1), Value::Int(1)]);
        assert!(!s.is_key_candidate());
        let s = column_stats(&[Value::Int(1), Value::Null]);
        assert!(!s.is_key_candidate());
    }

    #[test]
    fn std_dev_computation() {
        let s = column_stats(&[Value::Float(2.0), Value::Float(4.0)]);
        assert!((s.std_dev.unwrap() - 1.0).abs() < 1e-12);
        let s = column_stats(&[Value::Float(5.0)]);
        assert!((s.std_dev.unwrap() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn table_stats_per_column() {
        let t = Table::literal(
            &["a", "b"],
            vec![vec![1.into(), "x".into()], vec![2.into(), Value::Null]],
        )
        .unwrap();
        let st = table_stats(&t).unwrap();
        assert_eq!(st.len(), 2);
        assert_eq!(st[0].null_count, 0);
        assert_eq!(st[1].null_count, 1);
    }
}
