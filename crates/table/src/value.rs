//! Dynamically typed cell values with a total order and canonical hashing.
//!
//! Sources in a wrangling pipeline disagree about representation: `"42"`,
//! `42` and `42.0` may all denote the same price. [`Value`] keeps the typed
//! representation but defines cross-type numeric comparison, so grouping,
//! joining and fusing values from heterogeneous sources behaves sensibly.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::schema::DataType;

/// A single cell value.
///
/// `Float` is ordered with a total order (NaN sorts last among floats) and
/// hashed canonically: a float with an exact integer value hashes identically
/// to the corresponding `Int`, so `42` and `42.0` land in the same group.
#[derive(Debug, Clone)]
pub enum Value {
    /// Missing / unknown.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// The dynamic type of this value.
    pub fn dtype(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
        }
    }

    /// True if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it is `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view, if it is `Int` or an integral `Float`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// String view, if it is `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view, if it is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render the value as a plain string (`Null` renders empty). This is the
    /// representation used by the CSV writer and by string-based matchers.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Str(s) => s.clone(),
        }
    }

    /// Attempt to coerce this value to `target`. `Null` coerces to anything.
    /// Numeric widening (`Int` → `Float`), narrowing of integral floats, and
    /// string parsing / rendering are supported; anything else is an error.
    pub fn coerce(&self, target: DataType) -> crate::Result<Value> {
        use crate::TableError::TypeError;
        if self.dtype() == target || target == DataType::Null {
            return Ok(self.clone());
        }
        if self.is_null() {
            return Ok(Value::Null);
        }
        match target {
            DataType::Float => self
                .as_f64()
                .map(Value::Float)
                .or_else(|| {
                    self.as_str()
                        .and_then(|s| s.trim().parse().ok())
                        .map(Value::Float)
                })
                .ok_or_else(|| TypeError(format!("cannot coerce {self:?} to Float"))),
            DataType::Int => self
                .as_i64()
                .or_else(|| self.as_str().and_then(|s| s.trim().parse().ok()))
                .map(Value::Int)
                .ok_or_else(|| TypeError(format!("cannot coerce {self:?} to Int"))),
            DataType::Str => Ok(Value::Str(self.render())),
            DataType::Bool => match self {
                Value::Str(s) => match s.trim().to_ascii_lowercase().as_str() {
                    "true" | "t" | "yes" | "1" => Ok(Value::Bool(true)),
                    "false" | "f" | "no" | "0" => Ok(Value::Bool(false)),
                    _ => Err(TypeError(format!("cannot coerce {s:?} to Bool"))),
                },
                Value::Int(i) => Ok(Value::Bool(*i != 0)),
                _ => Err(TypeError(format!("cannot coerce {self:?} to Bool"))),
            },
            // Handled by the early return above; kept total so a future
            // refactor of that guard can't reintroduce a panic path.
            DataType::Null => Ok(self.clone()),
        }
    }

    /// Rank of the type in the cross-type total order.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

/// Format a float the way the system renders it everywhere: integral floats
/// without a trailing `.0` would collide with Int rendering — keep `.0` off
/// so `42.0` renders as `42`, matching canonical hashing.
fn format_float(f: f64) -> String {
    if f.is_finite() && f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{}", f as i64)
    } else {
        format!("{f}")
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: Null < Bool < numerics (Int/Float compared numerically,
    /// NaN greatest) < Str.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => total_f64_cmp(*a, *b),
            (Value::Int(a), Value::Float(b)) => total_f64_cmp(*a as f64, *b),
            (Value::Float(a), Value::Int(b)) => total_f64_cmp(*a, *b as f64),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.partial_cmp(&b).expect("both finite-or-inf"), // lint-allow: NaN handled by the other match arms
    }
}

impl Hash for Value {
    /// Canonical hash consistent with `Eq`: `Int(42)` and `Float(42.0)` hash
    /// identically (both as the integer 42); non-integral floats hash by bits.
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Value::Int(i) => {
                state.write_u8(2);
                i.hash(state);
            }
            Value::Float(f) => {
                if let Some(i) = self.as_i64() {
                    state.write_u8(2);
                    i.hash(state);
                } else {
                    state.write_u8(3);
                    // Normalize NaN payloads so Eq-equal NaNs hash equal.
                    let bits = if f.is_nan() {
                        f64::NAN.to_bits()
                    } else {
                        f.to_bits()
                    };
                    bits.hash(state);
                }
            }
            Value::Str(s) => {
                state.write_u8(4);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            other => write!(f, "{}", other.render()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut hs = DefaultHasher::new();
        v.hash(&mut hs);
        hs.finish()
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::Int(42), Value::Float(42.0));
        assert_ne!(Value::Int(42), Value::Float(42.5));
        assert_eq!(h(&Value::Int(42)), h(&Value::Float(42.0)));
    }

    #[test]
    fn total_order_ranks_types() {
        let mut vals = vec![
            Value::Str("a".into()),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::Float(0.5),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(0.5));
        assert_eq!(vals[3], Value::Int(1));
        assert_eq!(vals[4], Value::Str("a".into()));
    }

    #[test]
    fn nan_is_equal_to_itself_and_sorts_last_among_numbers() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(h(&nan), h(&Value::Float(f64::NAN)));
        assert!(nan > Value::Float(f64::INFINITY));
        assert!(nan < Value::Str(String::new()));
    }

    #[test]
    fn render_roundtrips_integral_float_as_int() {
        assert_eq!(Value::Float(42.0).render(), "42");
        assert_eq!(Value::Float(42.5).render(), "42.5");
        assert_eq!(Value::Null.render(), "");
    }

    #[test]
    fn coercions() {
        assert_eq!(
            Value::Str("3.5".into()).coerce(DataType::Float).unwrap(),
            Value::Float(3.5)
        );
        assert_eq!(
            Value::Str(" 7 ".into()).coerce(DataType::Int).unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            Value::Int(1).coerce(DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::Str("yes".into()).coerce(DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::Float(2.0).coerce(DataType::Int).unwrap(),
            Value::Int(2)
        );
        assert!(Value::Str("abc".into()).coerce(DataType::Int).is_err());
        assert_eq!(Value::Null.coerce(DataType::Int).unwrap(), Value::Null);
        assert_eq!(
            Value::Int(5).coerce(DataType::Str).unwrap(),
            Value::Str("5".into())
        );
    }

    #[test]
    fn option_from_impl() {
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
    }

    #[test]
    fn as_i64_narrowing() {
        assert_eq!(Value::Float(3.0).as_i64(), Some(3));
        assert_eq!(Value::Float(3.5).as_i64(), None);
        assert_eq!(Value::Float(f64::NAN).as_i64(), None);
    }
}
