//! Error type shared by all table operations.

use std::fmt;

/// Errors raised by table construction, expression evaluation and the
/// relational operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A referenced column name does not exist in the schema.
    UnknownColumn(String),
    /// A column index is out of bounds.
    ColumnIndexOutOfBounds { index: usize, width: usize },
    /// A row has a different arity than the schema.
    ArityMismatch { expected: usize, actual: usize },
    /// Two schemas that must be union-compatible are not.
    SchemaMismatch(String),
    /// A value could not be coerced to the requested type.
    TypeError(String),
    /// Malformed CSV input.
    Csv { line: usize, message: String },
    /// A duplicate column name was supplied where names must be unique.
    DuplicateColumn(String),
    /// Any other invariant violation, with a description.
    Invalid(String),
    /// A required upstream resource (e.g. a data source) could not be
    /// acquired. Carries a human-readable account of what failed and why.
    Unavailable(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            TableError::ColumnIndexOutOfBounds { index, width } => {
                write!(f, "column index {index} out of bounds for width {width}")
            }
            TableError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "row arity {actual} does not match schema arity {expected}"
                )
            }
            TableError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            TableError::TypeError(msg) => write!(f, "type error: {msg}"),
            TableError::Csv { line, message } => write!(f, "csv error at line {line}: {message}"),
            TableError::DuplicateColumn(name) => write!(f, "duplicate column `{name}`"),
            TableError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
            TableError::Unavailable(msg) => write!(f, "unavailable: {msg}"),
        }
    }
}

impl std::error::Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TableError::UnknownColumn("price".into());
        assert!(e.to_string().contains("price"));
        let e = TableError::ArityMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
        let e = TableError::Csv {
            line: 7,
            message: "unterminated quote".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }
}
