//! `wrangler-table` — the tabular data substrate for the vada-wrangler system.
//!
//! Every component of the wrangling architecture (extraction, integration,
//! cleaning, fusion) consumes and produces [`Table`]s: schema-typed, columnar
//! collections of [`Value`]s. The crate provides:
//!
//! * a dynamically typed [`Value`] model with a total order and canonical
//!   hashing, so values can be compared, grouped and deduplicated across
//!   heterogeneous sources;
//! * [`Schema`] / [`Field`] metadata with type unification, used by schema
//!   matching and mapping;
//! * [`Table`], a columnar table with relational operators (filter, project,
//!   join, union, sort, group-by) in [`ops`];
//! * a small expression language ([`expr`]) compiled against a schema;
//! * a CSV codec ([`csv`]) with type inference ([`infer`]), the entry format
//!   for file-based sources;
//! * per-column statistics ([`stats`]) consumed by quality profiling;
//! * the deterministic blocked worker pool ([`par`]) shared by the compute
//!   kernels (ER scoring, slot fusion, schema-matching generation);
//! * a canonical binary wire format ([`wire`]) with `f64::to_bits`-exact
//!   value round-trips and a stable content hash, the payload encoding of
//!   the `wrangler-ckpt` checkpoint store.
//!
//! The design goal is a dependency-free, deterministic core: no I/O beyond
//! strings, no randomness, so all downstream experiments are reproducible.

pub mod csv;
pub mod error;
pub mod expr;
pub mod infer;
pub mod ops;
pub mod par;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;
pub mod wire;

pub use error::TableError;
pub use expr::Expr;
pub use schema::{CastSafety, DataType, Field, Schema};
pub use table::Table;
pub use value::Value;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TableError>;
